"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail.  This shim enables the
legacy ``pip install -e . --no-use-pep517 --no-build-isolation`` path, which
uses ``setup.py develop`` and needs no wheel.
"""

from setuptools import setup

setup()
