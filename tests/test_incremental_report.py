"""Tests for the incremental report engine and the report artifact DAG.

Campaign arms are seeded with *fake* (but correctly-identified) episode
records straight into the digest-keyed cache, so the DAG logic — staleness
resolution, placeholder emission, manifest reuse, failure isolation — is
exercised without running a single simulation.  The Fig. 5/6 tracers are
stubbed for the same reason.
"""

import json
import os
import tempfile
from types import SimpleNamespace
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.analysis.report as report_mod
from repro.analysis.incremental import (
    MANIFEST_FORMAT,
    IncrementalReportEngine,
    ReportError,
    load_manifest,
    manifest_path_for,
    save_manifest,
    status_document,
)
from repro.analysis.report import ReportConfig, generate_report
from repro.attacks.campaign import as_episode_list
from repro.core.cache import (
    campaign_digest,
    resume_file_for,
    write_digest_sidecar,
)
from repro.core.metrics import EpisodeResult, save_results


def fake_results(campaign, label):
    """Correctly-identified (digest/label-matching) fake episode records."""
    return [
        EpisodeResult(
            scenario_id=e.scenario_id,
            initial_gap=e.initial_gap,
            fault_type=e.fault_type.value,
            seed=e.seed,
            intervention=label,
        )
        for e in as_episode_list(campaign)
    ]


def _fake_fig5(seed=2025, **kwargs):
    return {"S1": SimpleNamespace(trace=SimpleNamespace(ego_speed=[21.7, 9.6]))}


def _fake_fig6(seed=2025, **kwargs):
    return SimpleNamespace(result=EpisodeResult())


@pytest.fixture
def mocked_figs(monkeypatch):
    """Stub the figure tracers (they run real episodes otherwise)."""
    monkeypatch.setattr(report_mod, "fig5_series", _fake_fig5)
    monkeypatch.setattr(report_mod, "fig6_series", _fake_fig6)


@pytest.fixture(autouse=True)
def _no_env_cache(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


def small_config(tmp, **kwargs):
    kwargs.setdefault("cache_dir", os.path.join(str(tmp), "cache"))
    kwargs.setdefault("repetitions", 1)
    kwargs.setdefault("seed", 5)
    kwargs.setdefault("reaction_times", (2.5,))
    return ReportConfig(**kwargs)


def engine_arms(engine):
    """Unique campaign arms of an engine's DAG, keyed by name."""
    arms = {}
    for artifact in engine.artifacts:
        for arm in artifact.arms:
            arms[arm.name] = arm
    return arms


def seed_arm(cache, arm):
    cache.put(
        campaign_digest(arm.campaign, arm.interventions, ml_token=arm.ml_token),
        fake_results(arm.campaign, arm.interventions.label()),
    )


class TestManifest:
    def test_manifest_path_for(self):
        assert manifest_path_for("report.md") == "report.manifest.json"
        assert manifest_path_for("out/rep.markdown") == "out/rep.manifest.json"
        assert manifest_path_for("report") == "report.manifest.json"

    def test_load_missing_and_none(self, tmp_path):
        assert load_manifest(None) == {}
        assert load_manifest(tmp_path / "absent.json") == {}

    def test_load_corrupt_and_wrong_format(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{not json")
        assert load_manifest(path) == {}
        path.write_text(json.dumps({"format": MANIFEST_FORMAT + 1, "artifacts": {}}))
        assert load_manifest(path) == {}
        path.write_text(json.dumps({"format": MANIFEST_FORMAT, "artifacts": []}))
        assert load_manifest(path) == {}

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "m.json"
        entries = {"table4": {"inputs": ["ab" * 32], "body": "x"}}
        save_manifest(path, entries)
        assert load_manifest(path) == entries
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]


class TestIncrementalRun:
    def test_empty_cache_renders_only_figures(self, tmp_path, mocked_figs):
        engine = IncrementalReportEngine(small_config(tmp_path))
        outcome = engine.run(incremental=True)
        assert set(outcome.rendered_ids) == {"fig5", "fig6"}
        assert set(outcome.pending_ids) == {
            "table4", "table5", "table6", "table7", "table8",
        }
        assert not outcome.complete
        # Placeholders carry per-arm episode counts for the missing work.
        assert "— pending" in outcome.text
        fault_free_lines = [
            line for line in outcome.text.splitlines() if "fault-free" in line
        ]
        assert fault_free_lines, outcome.text
        for line in fault_free_lines:
            assert "missing" in line and "0/12 episodes" in line

    def test_partial_cache_renders_complete_artifacts_only(
        self, tmp_path, mocked_figs, monkeypatch
    ):
        config = small_config(tmp_path)
        engine = IncrementalReportEngine(config)
        seed_arm(config.cache(), engine_arms(engine)["fault-free"])

        # Nothing may execute: every rendered artifact is cache-served.
        import repro.core.scheduler as scheduler

        def boom(*args, **kwargs):
            raise AssertionError("incremental render executed episodes")

        monkeypatch.setattr(scheduler, "make_executor", boom)
        outcome = engine.run(incremental=True)
        assert set(outcome.rendered_ids) == {"table4", "table5", "fig5", "fig6"}
        assert set(outcome.pending_ids) == {"table6", "table7", "table8"}
        assert "Table IV: Driving performance without attacks" in outcome.text

    def test_resumable_partial_status(self, tmp_path):
        config = small_config(
            tmp_path, resume_dir=os.path.join(str(tmp_path), "resume")
        )
        engine = IncrementalReportEngine(config)
        arm = engine_arms(engine)["fault-free"]
        digest = campaign_digest(arm.campaign, arm.interventions)
        path = resume_file_for(config.resume_dir, digest)
        save_results(fake_results(arm.campaign, "none")[:5], path)
        write_digest_sidecar(path, digest)
        status = engine.arm_status(arm)
        assert status.state == "resumable-partial"
        assert (status.done, status.total) == (5, 12)
        assert not status.complete

    def test_corrupt_cache_entry_falls_back_to_pending(
        self, tmp_path, mocked_figs, monkeypatch
    ):
        """A cache entry whose line count looks complete but whose records
        are garbage must become a pending placeholder — an incremental run
        must never fall through into executing the grid."""
        config = small_config(tmp_path)
        engine = IncrementalReportEngine(config)
        arm = engine_arms(engine)["fault-free"]
        digest = campaign_digest(arm.campaign, arm.interventions)
        cache = config.cache()
        entry = cache.path(digest)
        with open(entry, "w") as handle:
            handle.write('{"not": "an episode"}\n' * 12)  # plausible count
        assert engine.arm_status(arm).state == "cached"  # cheap probe fooled

        import repro.core.scheduler as scheduler

        def boom(*args, **kwargs):
            raise AssertionError("incremental render executed episodes")

        monkeypatch.setattr(scheduler, "make_executor", boom)
        with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
            outcome = engine.run(incremental=True)
        assert "table4" in outcome.pending_ids
        assert "table5" in outcome.pending_ids
        assert outcome.failed_ids == []
        assert not os.path.exists(entry)  # authoritative load discarded it

    def test_status_probe_creates_no_directories(self, tmp_path):
        """`report-status` is documented as executing nothing — that
        includes not materialising the resume/cache directories."""
        config = ReportConfig(
            repetitions=1,
            seed=5,
            reaction_times=(2.5,),
            cache_dir=os.path.join(str(tmp_path), "cache"),
            resume_dir=os.path.join(str(tmp_path), "resume"),
        )
        engine = IncrementalReportEngine(config)
        engine.status()
        assert not os.path.exists(config.resume_dir)
        assert not os.path.exists(config.cache_dir)

    def test_colliding_arm_names_are_rejected(self, tmp_path):
        """Two sweep points formatting to the same arm label would
        silently alias every name-keyed memo; the engine refuses the DAG
        instead."""
        config = small_config(
            tmp_path, reaction_times=(1.0000001, 1.0000002)
        )  # both format as rt=1 under %g
        with pytest.raises(ValueError, match="must be unique"):
            IncrementalReportEngine(config)

    def test_shared_arm_across_artifacts_is_not_a_collision(self, tmp_path):
        """Tables IV and V legitimately share the identical fault-free
        arm; only *different* arms under one name are rejected."""
        engine = IncrementalReportEngine(small_config(tmp_path))
        names = [a.name for art in engine.artifacts for a in art.arms]
        assert names.count("fault-free") == 2  # the DAG aspect, intact

    def test_foreign_sidecar_contributes_nothing(self, tmp_path):
        config = small_config(
            tmp_path, resume_dir=os.path.join(str(tmp_path), "resume")
        )
        engine = IncrementalReportEngine(config)
        arm = engine_arms(engine)["fault-free"]
        digest = campaign_digest(arm.campaign, arm.interventions)
        path = resume_file_for(config.resume_dir, digest)
        save_results(fake_results(arm.campaign, "none"), path)
        write_digest_sidecar(path, "f" * 64)  # written under different inputs
        assert engine.arm_status(arm).state == "missing"

    def test_fully_cached_incremental_matches_blocking_bytes(
        self, tmp_path, mocked_figs
    ):
        config = small_config(tmp_path)
        engine = IncrementalReportEngine(config)
        cache = config.cache()
        for arm in engine_arms(engine).values():
            seed_arm(cache, arm)
        incremental = engine.run(incremental=True)
        assert incremental.complete
        assert incremental.text == generate_report(config)

    def test_manifest_skips_unchanged_artifacts(self, tmp_path, mocked_figs):
        config = small_config(tmp_path)
        manifest = os.path.join(str(tmp_path), "report.manifest.json")
        engine = IncrementalReportEngine(config, manifest_path=manifest)
        cache = config.cache()
        for arm in engine_arms(engine).values():
            seed_arm(cache, arm)
        first = engine.run(incremental=True)
        assert set(first.rendered_ids) == {
            "table4", "table5", "fig5", "fig6", "table6", "table7", "table8",
        }
        second = IncrementalReportEngine(config, manifest_path=manifest).run(
            incremental=True
        )
        assert second.rendered_ids == []
        assert set(second.reused_ids) == set(first.rendered_ids)
        assert second.text == first.text

    def test_changed_inputs_invalidate_manifest(self, tmp_path, mocked_figs):
        manifest = os.path.join(str(tmp_path), "report.manifest.json")
        config = small_config(tmp_path)
        engine = IncrementalReportEngine(config, manifest_path=manifest)
        for arm in engine_arms(engine).values():
            seed_arm(config.cache(), arm)
        engine.run(incremental=True)
        # A different seed changes every digest: nothing may be reused.
        other = small_config(tmp_path, seed=6)
        engine2 = IncrementalReportEngine(other, manifest_path=manifest)
        outcome = engine2.run(incremental=True)
        assert outcome.reused_ids == []
        statuses = {
            s.artifact_id: s
            for s in IncrementalReportEngine(
                small_config(tmp_path, seed=6), manifest_path=manifest
            ).status()
        }
        # fig bodies were re-rendered (and re-recorded) for the new seed
        assert statuses["fig5"].state == "fresh"
        # table arms for seed 6 are not cached: stale manifest, no inputs
        assert statuses["table4"].state == "missing"

    def test_status_document_json_round_trips(self, tmp_path):
        config = small_config(tmp_path)
        engine = IncrementalReportEngine(config)
        seed_arm(config.cache(), engine_arms(engine)["fault-free"])
        doc = status_document(engine.status(), engine.manifest_path)
        assert json.loads(json.dumps(doc)) == doc
        states = {a["id"]: a["state"] for a in doc["artifacts"]}
        assert states["table4"] == "ready"
        assert states["table6"] == "missing"
        arm = doc["artifacts"][0]["arms"][0]
        assert set(arm) == {
            "name", "digest", "state", "episodes_done", "episodes_total",
        }


class TestReportErrorHandling:
    def _poison_fault_free(self, config, engine):
        """A resume file that *looks* complete but fails resume validation
        (its records carry a different intervention label)."""
        arm = engine_arms(engine)["fault-free"]
        digest = campaign_digest(arm.campaign, arm.interventions)
        path = resume_file_for(config.resume_dir, digest)
        save_results(fake_results(arm.campaign, "driver"), path)
        write_digest_sidecar(path, digest)
        return digest

    def test_blocking_failure_raises_report_error_naming_digest(
        self, tmp_path, mocked_figs
    ):
        config = ReportConfig(
            repetitions=1,
            seed=5,
            reaction_times=(2.5,),
            resume_dir=os.path.join(str(tmp_path), "resume"),
        )
        engine = IncrementalReportEngine(config)
        digest = self._poison_fault_free(config, engine)
        with pytest.raises(ReportError) as err:
            generate_report(config)
        assert digest[:16] in str(err.value)
        assert err.value.arm == "fault-free"
        assert err.value.digest == digest
        assert err.value.artifact_id == "table4"

    def test_incremental_failure_isolates_artifact(self, tmp_path, mocked_figs):
        config = small_config(
            tmp_path, resume_dir=os.path.join(str(tmp_path), "resume")
        )
        manifest = os.path.join(str(tmp_path), "report.manifest.json")
        engine = IncrementalReportEngine(config, manifest_path=manifest)
        arms = engine_arms(engine)
        cache = config.cache()
        for name, arm in arms.items():
            if name != "fault-free":
                seed_arm(cache, arm)
        self._poison_fault_free(config, engine)
        outcome = engine.run(incremental=True)
        # The poisoned arm fails both artifacts that consume it — and
        # nothing else: every other artifact still renders.
        assert set(outcome.failed_ids) == {"table4", "table5"}
        assert set(outcome.rendered_ids) == {
            "fig5", "fig6", "table6", "table7", "table8",
        }
        assert "— failed" in outcome.text
        entries = load_manifest(manifest)
        assert "table4" not in entries
        assert "table6" in entries


# One engine build just to enumerate the DAG's arm names for sampling.
_ALL_ARM_NAMES = sorted(
    engine_arms(
        IncrementalReportEngine(
            ReportConfig(repetitions=1, seed=5, reaction_times=(2.5,))
        )
    )
)


class TestArtifactDagProperties:
    @settings(max_examples=10, deadline=None)
    @given(chosen=st.sets(st.sampled_from(_ALL_ARM_NAMES)))
    def test_renders_exactly_the_fully_cached_artifacts(self, chosen):
        with tempfile.TemporaryDirectory() as tmp, mock.patch.object(
            report_mod, "fig5_series", _fake_fig5
        ), mock.patch.object(report_mod, "fig6_series", _fake_fig6):
            config = small_config(tmp)
            manifest = os.path.join(tmp, "report.manifest.json")
            engine = IncrementalReportEngine(config, manifest_path=manifest)
            arms = engine_arms(engine)
            cache = config.cache()
            for name in chosen:
                seed_arm(cache, arms[name])
            outcome = engine.run(incremental=True)
            # Exactly the artifacts whose *full* digest set is cached
            # render; zero-arm artifacts (the figures) always can.
            expected = {
                a.artifact_id
                for a in engine.artifacts
                if all(arm.name in chosen for arm in a.arms)
            }
            everything = {a.artifact_id for a in engine.artifacts}
            assert set(outcome.rendered_ids) == expected
            assert set(outcome.pending_ids) == everything - expected
            # A second run against the manifest re-renders none of them.
            again = IncrementalReportEngine(config, manifest_path=manifest).run(
                incremental=True
            )
            assert again.rendered_ids == []
            assert set(again.reused_ids) == expected
            assert set(again.pending_ids) == everything - expected
            assert again.text == outcome.text


class TestCli:
    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    def test_report_incremental_cli(self, tmp_path, mocked_figs, capsys):
        out = tmp_path / "report.md"
        rc = self.run_cli(
            [
                "report", "--incremental", "--reps", "1", "--seed", "5",
                "--reaction-times", "2.5",
                "--cache-dir", str(tmp_path / "cache"),
                "--output", str(out),
            ]
        )
        assert rc == 0
        text = out.read_text()
        assert "# Reproduction report" in text
        assert "— pending" in text
        assert (tmp_path / "report.manifest.json").exists()
        assert "awaiting:" in capsys.readouterr().out

    def test_report_status_json_round_trips(self, tmp_path, capsys):
        config = small_config(tmp_path)
        engine = IncrementalReportEngine(config)
        seed_arm(config.cache(), engine_arms(engine)["fault-free"])
        rc = self.run_cli(
            [
                "report-status", "--reps", "1", "--seed", "5",
                "--reaction-times", "2.5",
                "--cache-dir", config.cache_dir,
                "--output", str(tmp_path / "report.md"),
                "--json",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        states = {a["id"]: a["state"] for a in doc["artifacts"]}
        assert states["table4"] == "ready"
        assert states["table5"] == "ready"
        assert states["table6"] == "missing"
        assert states["fig5"] == "ready"

    def test_report_status_human_readable(self, tmp_path, capsys):
        config = small_config(tmp_path)
        engine = IncrementalReportEngine(config)
        seed_arm(config.cache(), engine_arms(engine)["fault-free"])
        rc = self.run_cli(
            [
                "report-status", "--reps", "1", "--seed", "5",
                "--reaction-times", "2.5",
                "--cache-dir", config.cache_dir,
                "--output", str(tmp_path / "report.md"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "table4" in out and "ready" in out
        assert "cached" in out and "12/12 episodes" in out
        assert "missing" in out

    def test_reaction_times_flag_rejects_garbage(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--reaction-times", "abc"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--reaction-times", ","])
