"""Unit tests for repro.sim.agents, repro.sim.world and repro.sim.sensors."""

import pytest

from repro.sim.agents import (
    AgentBinding,
    CruiseBehavior,
    CutInBehavior,
    LaneChangeAwayBehavior,
    SpeedChangeBehavior,
    SuddenStopBehavior,
    bumper_gap,
)
from repro.sim.sensors import GroundTruthSensor
from repro.sim.track import build_straight_map
from repro.sim.vehicle import EgoVehicle, KinematicActor
from repro.sim.weather import FrictionCondition
from repro.sim.world import World

DT = 0.01


def make_world(ego_speed=20.0, lead_gap=None, lead_speed=13.0, lead_lane_d=0.0):
    road = build_straight_map()
    ego = EgoVehicle(road, s=50.0, d=0.0, speed=ego_speed)
    world = World(road, ego)
    if lead_gap is not None:
        lead_s = ego.front_s + lead_gap + 2.35
        lead = KinematicActor(road, s=lead_s, d=lead_lane_d, speed=lead_speed, name="LV")
        world.add_agent(AgentBinding(lead, CruiseBehavior(lead_speed)))
    return world


class TestBehaviors:
    def test_cruise_holds_speed(self):
        world = make_world(lead_gap=40.0, lead_speed=13.0)
        for _ in range(500):
            world.ego.apply_controls(0.0, 0.0)
            world.step(DT)
        assert world.actors[0].speed == pytest.approx(13.0, abs=0.2)

    def test_speed_change_triggers_on_gap(self):
        behavior = SpeedChangeBehavior(13.0, 18.0, trigger_gap=30.0, rate=1.0)
        world = make_world(ego_speed=20.0, lead_gap=50.0)
        world.agents[0].behavior = behavior
        for _ in range(3000):
            world.ego.apply_controls(0.0, 0.0)
            world.step(DT)
            if behavior.triggered:
                break
        assert behavior.triggered
        assert bumper_gap(world.actors[0], world.ego) < 31.0

    def test_sudden_stop_reaches_standstill(self):
        behavior = SuddenStopBehavior(13.0, trigger_gap=45.0, decel=8.0)
        world = make_world(ego_speed=20.0, lead_gap=50.0)
        world.agents[0].behavior = behavior
        for _ in range(4000):
            world.ego.apply_controls(-3.0, 0.0)  # ego brakes too
            world.step(DT)
        assert behavior.triggered
        assert world.actors[0].speed == 0.0

    def test_sudden_stop_validates_decel(self):
        with pytest.raises(ValueError):
            SuddenStopBehavior(13.0, trigger_gap=30.0, decel=0.0)

    def test_cut_in_moves_to_target_lane(self):
        road = build_straight_map()
        ego = EgoVehicle(road, s=50.0, d=0.0, speed=20.0)
        world = World(road, ego)
        cut = KinematicActor(road, s=80.0, d=3.7, speed=13.0, name="CutIn")
        world.add_agent(AgentBinding(cut, CutInBehavior(13.0, trigger_gap=30.0)))
        for _ in range(4000):
            world.ego.apply_controls(0.0, 0.0)
            world.step(DT)
            if world.collision:
                break
        assert cut.d_target == 0.0

    def test_lane_change_away_departs(self):
        road = build_straight_map()
        ego = EgoVehicle(road, s=50.0, d=0.0, speed=20.0)
        world = World(road, ego)
        lv = KinematicActor(road, s=90.0, d=0.0, speed=13.0, name="LV-near")
        world.add_agent(
            AgentBinding(lv, LaneChangeAwayBehavior(13.0, trigger_gap=35.0, target_d=3.7))
        )
        for _ in range(6000):
            world.ego.apply_controls(0.0, 0.0)
            world.step(DT)
            if lv.d > 3.0:
                break
        assert lv.d > 3.0


class TestWorldDetection:
    def test_forward_collision_detected(self):
        world = make_world(ego_speed=25.0, lead_gap=10.0, lead_speed=0.0)
        world.agents[0].behavior = None
        for _ in range(500):
            world.ego.apply_controls(0.0, 0.0)
            world.step(DT)
            if world.collision:
                break
        assert world.collision is not None
        assert not world.collision.lateral
        assert world.collision.relative_speed > 0.0

    def test_no_collision_when_following(self):
        world = make_world(ego_speed=13.0, lead_gap=30.0, lead_speed=13.0)
        for _ in range(2000):
            world.ego.apply_controls(0.0, 0.0)
            world.step(DT)
        assert world.collision is None

    def test_lateral_collision_classified(self):
        # A car halfway between lanes brushing the ego is a side impact.
        world = make_world(ego_speed=25.0, lead_gap=8.0, lead_speed=13.0, lead_lane_d=1.6)
        world.agents[0].behavior = None
        for _ in range(1000):
            world.ego.apply_controls(0.0, 0.0)
            world.step(DT)
            if world.collision:
                break
        assert world.collision is not None
        assert world.collision.lateral

    def test_off_road_right(self):
        world = make_world()
        world.ego.d = -3.0
        world.step(DT)
        assert world.off_road

    def test_adjacent_lane_is_not_off_road(self):
        world = make_world()
        world.ego.d = 3.7  # centred in the adjacent lane
        world.step(DT)
        assert not world.off_road
        assert world.off_lane

    def test_beyond_adjacent_lane_is_off_road(self):
        world = make_world()
        world.ego.d = 6.8
        world.step(DT)
        assert world.off_road

    def test_lane_line_distances_centered(self):
        world = make_world()
        right, left = world.lane_line_distances()
        expected = (3.7 - world.ego.params.width) / 2
        assert right == pytest.approx(expected, abs=1e-6)
        assert left == pytest.approx(expected, abs=1e-6)

    def test_lane_line_distances_follow_nearest_lane(self):
        world = make_world()
        world.ego.d = 3.7  # adjacent lane centre
        right, left = world.lane_line_distances()
        expected = (3.7 - world.ego.params.width) / 2
        assert right == pytest.approx(expected, abs=1e-6)

    def test_lead_selection_nearest(self):
        world = make_world(ego_speed=20.0, lead_gap=40.0)
        road = world.road
        far = KinematicActor(road, s=world.ego.s + 120.0, d=0.0, speed=13.0, name="far")
        world.add_agent(AgentBinding(far, None))
        assert world.lead_actor().name == "LV"

    def test_lead_ignores_adjacent_lane(self):
        world = make_world(ego_speed=20.0, lead_gap=40.0, lead_lane_d=3.7)
        assert world.lead_actor() is None

    def test_lead_corridor_parameter(self):
        world = make_world(ego_speed=20.0, lead_gap=40.0, lead_lane_d=3.0)
        assert world.lead_actor() is None
        assert world.lead_actor(corridor=3.5) is not None


class TestSensors:
    def test_lead_measurement_values(self):
        world = make_world(ego_speed=20.0, lead_gap=40.0, lead_speed=13.0)
        sensor = GroundTruthSensor(world)
        lead = sensor.lead()
        assert lead is not None
        assert lead.gap == pytest.approx(40.0, abs=0.1)
        assert lead.relative_speed == pytest.approx(7.0, abs=0.01)

    def test_lead_cache_per_timestamp(self):
        world = make_world(ego_speed=20.0, lead_gap=40.0)
        sensor = GroundTruthSensor(world)
        assert sensor.lead() is sensor.lead()  # cached object identity

    def test_radar_lead_wider_than_camera(self):
        world = make_world(ego_speed=20.0, lead_gap=40.0, lead_lane_d=2.8)
        sensor = GroundTruthSensor(world)
        assert sensor.lead() is None
        assert sensor.radar_lead() is not None

    def test_human_lead_corridor(self):
        world = make_world(ego_speed=20.0, lead_gap=40.0, lead_lane_d=2.5)
        sensor = GroundTruthSensor(world)
        assert sensor.lead() is None
        assert sensor.lead_human() is not None

    def test_cut_in_observation(self):
        road = build_straight_map()
        ego = EgoVehicle(road, s=50.0, d=0.0, speed=20.0)
        world = World(road, ego)
        cut = KinematicActor(road, s=80.0, d=3.7, speed=13.0, name="CutIn")
        cut.d_target = 0.0  # actively merging
        world.add_agent(AgentBinding(cut, None))
        sensor = GroundTruthSensor(world)
        obs = sensor.cut_in()
        assert obs is not None
        assert obs.gap > 0.0

    def test_no_cut_in_when_lane_keeping(self):
        road = build_straight_map()
        ego = EgoVehicle(road, s=50.0, d=0.0, speed=20.0)
        world = World(road, ego)
        cruise = KinematicActor(road, s=80.0, d=3.7, speed=13.0, name="neighbour")
        world.add_agent(AgentBinding(cruise, None))
        sensor = GroundTruthSensor(world)
        assert sensor.cut_in() is None


class TestFriction:
    def test_condition_validation(self):
        with pytest.raises(ValueError):
            FrictionCondition("bad", 0.0)

    def test_max_deceleration(self):
        cond = FrictionCondition("wet", 0.5)
        assert cond.max_deceleration == pytest.approx(4.9)


class TestBehaviorRegistry:
    def test_behavior_kind_exact_type_only(self):
        from repro.sim.agents import behavior_kind

        assert behavior_kind(CruiseBehavior(13.0)) == "cruise"
        assert behavior_kind(SuddenStopBehavior(13.0, 40.0, 8.0)) == "sudden_stop"

        class TunedCruise(CruiseBehavior):
            def update(self, actor, ego, t):  # changed semantics
                actor.accel_cmd = 0.0

        # A subclass may override update, so it must NOT match the fast
        # path of its base class.
        assert behavior_kind(TunedCruise(13.0)) is None
        assert behavior_kind(object()) is None
        assert behavior_kind(None) is None

    def test_spec_round_trip(self):
        from repro.sim.agents import behavior_spec, build_behavior

        source = SpeedChangeBehavior(13.0, 18.0, trigger_gap=30.0, rate=1.5)
        spec = behavior_spec(source)
        assert spec.kind == "speed_change"
        rebuilt = build_behavior(spec)
        assert isinstance(rebuilt, SpeedChangeBehavior)
        assert rebuilt.initial_speed == source.initial_speed
        assert rebuilt.final_speed == source.final_speed
        assert rebuilt.trigger_gap == source.trigger_gap
        assert rebuilt.rate == source.rate
        assert rebuilt.triggered is False  # state is not part of the spec

    def test_registry_covers_builtin_set(self):
        from repro.sim.agents import BEHAVIOR_REGISTRY

        assert set(BEHAVIOR_REGISTRY) == {
            "cruise",
            "speed_change",
            "sudden_stop",
            "cut_in",
            "lane_change_away",
        }
        for cls, names in BEHAVIOR_REGISTRY.values():
            probe = cls.__new__(cls)
            for name in names:
                assert name in cls.__init__.__code__.co_varnames, (cls, name)

    def test_unknown_spec_returns_none(self):
        from repro.sim.agents import behavior_spec

        assert behavior_spec(object()) is None


class TestBehaviorBatchFallback:
    def _mixed_worlds(self):
        """Two identical world pairs: one lane all-builtin, one lane
        carrying a third-party behaviour (forces the scalar fallback)."""

        class Oscillator:
            """Third-party behaviour: not in the registry."""

            def __init__(self):
                self.sign = 1.0

            def update(self, actor, ego, t):
                self.sign = -self.sign
                actor.accel_cmd = 0.4 * self.sign

        worlds = []
        for _ in range(2):
            road = build_straight_map()
            ego = EgoVehicle(road, s=50.0, d=0.0, speed=20.0)
            world = World(road, ego)
            lead = KinematicActor(road, s=90.0, d=0.0, speed=13.0, name="LV")
            world.add_agent(AgentBinding(lead, SuddenStopBehavior(13.0, 35.0, 8.0)))
            side = KinematicActor(road, s=70.0, d=3.7, speed=14.0, name="3P")
            world.add_agent(AgentBinding(side, Oscillator()))
            worlds.append(world)
        road = build_straight_map()
        ego = EgoVehicle(road, s=50.0, d=0.0, speed=20.0)
        pure = World(road, ego)
        lead = KinematicActor(road, s=90.0, d=0.0, speed=13.0, name="LV")
        pure.add_agent(AgentBinding(lead, CutInBehavior(13.0, 45.0, target_d=0.0)))
        worlds.insert(1, pure)
        # serial twins, built identically
        twins = []
        for w in worlds:
            road = build_straight_map()
            ego = EgoVehicle(road, s=50.0, d=0.0, speed=20.0)
            t = World(road, ego)
            for binding in w.agents:
                actor = KinematicActor(
                    road,
                    s=binding.actor.s,
                    d=binding.actor.d,
                    speed=binding.actor.speed,
                    name=binding.actor.name,
                )
                beh = binding.behavior
                if isinstance(beh, SuddenStopBehavior):
                    twin_beh = SuddenStopBehavior(13.0, 35.0, 8.0)
                elif isinstance(beh, CutInBehavior):
                    twin_beh = CutInBehavior(13.0, 45.0, target_d=0.0)
                else:
                    twin_beh = type(beh)()
                t.add_agent(AgentBinding(actor, twin_beh))
            twins.append(t)
        return worlds, twins

    def test_unknown_behaviour_lane_falls_back_bit_identical(self):
        from repro.sim.batch_state import BatchDynamics

        worlds, twins = self._mixed_worlds()
        dynamics = BatchDynamics(worlds)
        lanes = list(range(len(worlds)))
        dynamics.prime(lanes)
        for _ in range(400):
            for w in worlds + twins:
                w.ego.apply_controls(0.0, 0.0)
            dynamics.step(lanes, DT)
            for t in twins:
                t.step(DT)
        for world, twin in zip(worlds, twins):
            assert world.ego.s == twin.ego.s
            assert world.ego.speed == twin.ego.speed
            for wb, tb in zip(world.agents, twin.agents):
                assert wb.actor.s == tb.actor.s
                assert wb.actor.d == tb.actor.d
                assert wb.actor.speed == tb.actor.speed
                assert wb.actor.accel_cmd == tb.actor.accel_cmd
                assert wb.actor.d_target == tb.actor.d_target
                trig_w = getattr(wb.behavior, "triggered", None)
                trig_t = getattr(tb.behavior, "triggered", None)
                assert trig_w == trig_t
