"""Engine, registry, baseline and reporter tests for ``repro lint``.

Ends with the self-check the CI gate rests on: the shipped ``src/repro``
tree is clean under every built-in rule (intentional exceptions carry
inline pragmas, not baseline entries), so any new hazard fails CI.
"""

import json
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    LintRule,
    UnknownRuleError,
    apply_baseline,
    finding_fingerprint,
    get_rule,
    iter_python_files,
    lint_file,
    lint_paths,
    load_baseline,
    register_rule,
    registered_rules,
    render_json,
    render_text,
    select_rules,
    write_baseline,
)
from repro.lint.rules import unregister_rule

REPO_ROOT = Path(__file__).resolve().parents[1]


def dedent(source):
    return textwrap.dedent(source)


class TestRegistry:
    def test_unknown_rule_names_the_catalog(self):
        with pytest.raises(UnknownRuleError) as err:
            get_rule("no-such-rule")
        message = str(err.value)
        assert "no-such-rule" in message
        for rule_id in registered_rules():
            assert rule_id in message
        assert "repro lint --list" in message

    def test_unknown_rule_is_a_value_error(self):
        # The CLI umbrella turns ValueError into exit 2; the registry
        # error must ride that path like the family/backend registries.
        assert issubclass(UnknownRuleError, ValueError)

    def test_register_duplicate_rejected_and_replace_allowed(self):
        class Custom(LintRule):
            rule_id = "test-custom-rule"
            title = "test rule"

            def check(self, context):
                return []

        try:
            register_rule(Custom())
            with pytest.raises(ValueError, match="already registered"):
                register_rule(Custom())
            register_rule(Custom(), replace=True)
            assert get_rule("test-custom-rule").title == "test rule"
        finally:
            unregister_rule("test-custom-rule")
        with pytest.raises(UnknownRuleError):
            get_rule("test-custom-rule")

    def test_register_rejects_malformed_ids(self):
        class Nameless(LintRule):
            rule_id = ""

            def check(self, context):
                return []

        with pytest.raises(ValueError, match="rule_id"):
            register_rule(Nameless())

    def test_custom_rule_runs_through_the_engine(self):
        # The README's worked example: flag TODO comments left in source.
        class TodoRule(LintRule):
            rule_id = "no-todo"
            title = "TODO comment left in source"
            severity = "warning"

            def check(self, context):
                found = []
                for lineno, text in enumerate(context.lines, start=1):
                    if "TODO" in text:
                        found.append(
                            Finding(
                                path=context.path,
                                line=lineno,
                                col=text.index("TODO"),
                                rule_id=self.rule_id,
                                severity=self.severity,
                                message="unresolved TODO",
                                snippet=text.strip(),
                            )
                        )
                return found

        try:
            register_rule(TodoRule())
            findings = lint_file(
                "fixture.py",
                rules=select_rules(enable=["no-todo"]),
                source="x = 1  # TODO: tighten\n",
            )
            assert [f.rule_id for f in findings] == ["no-todo"]
            assert findings[0].severity == "warning"
        finally:
            unregister_rule("no-todo")


class TestSelectRules:
    def test_default_is_every_registered_rule(self):
        assert [r.rule_id for r in select_rules()] == list(registered_rules())

    def test_enable_and_disable(self):
        rules = select_rules(enable=["set-ordering", "unseeded-rng"])
        assert [r.rule_id for r in rules] == ["set-ordering", "unseeded-rng"]
        rules = select_rules(disable=["set-ordering"])
        assert "set-ordering" not in [r.rule_id for r in rules]

    def test_unknown_selector_raises(self):
        with pytest.raises(UnknownRuleError):
            select_rules(enable=["typo-rule"])
        with pytest.raises(UnknownRuleError):
            select_rules(disable=["typo-rule"])

    def test_empty_selection_raises(self):
        with pytest.raises(ValueError, match="empty"):
            select_rules(enable=["unseeded-rng"], disable=["unseeded-rng"])


class TestDiscovery:
    def test_sorted_recursive_discovery_with_skip_dirs(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "c.py").write_text("x = 1\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        files = iter_python_files([tmp_path])
        names = [Path(f).name for f in files]
        assert names == ["a.py", "b.py", "c.py"]

    def test_explicit_file_kept_regardless_of_suffix(self, tmp_path):
        fixture = tmp_path / "fixture.txt"
        fixture.write_text("x = 1\n")
        assert iter_python_files([fixture]) == [str(fixture).replace("\\", "/")]

    def test_duplicate_arguments_deduplicated(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        assert len(iter_python_files([target, tmp_path])) == 1

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no-such"):
            iter_python_files([tmp_path / "no-such.py"])


class TestPragmas:
    SOURCE = dedent(
        """\
        import random
        a = random.random()
        b = random.random()
        """
    )

    def test_line_pragma_suppresses_only_its_line(self):
        source = self.SOURCE.replace(
            "a = random.random()",
            "a = random.random()  # repro-lint: disable=unseeded-rng",
        )
        findings = lint_file("fixture.py", source=source)
        assert [f.line for f in findings] == [3]

    def test_disable_all_on_line(self):
        source = self.SOURCE.replace(
            "a = random.random()",
            "a = random.random()  # repro-lint: disable=all",
        )
        findings = lint_file("fixture.py", source=source)
        assert [f.line for f in findings] == [3]

    def test_file_pragma_suppresses_whole_file(self):
        source = "# repro-lint: disable-file=unseeded-rng\n" + self.SOURCE
        assert lint_file("fixture.py", source=source) == []

    def test_syntax_error_becomes_a_finding(self):
        findings = lint_file("fixture.py", source="def broken(:\n")
        assert [f.rule_id for f in findings] == ["syntax-error"]
        assert findings[0].severity == "error"


class TestBaseline:
    def make_findings(self, source):
        return lint_file("pkg/mod.py", source=source)

    def test_round_trip_absorbs_recorded_findings(self, tmp_path):
        findings = self.make_findings(
            "import random\nvalue = random.random()\n"
        )
        assert len(findings) == 1
        target = tmp_path / "baseline.json"
        write_baseline(target, findings)
        new, grandfathered = apply_baseline(findings, load_baseline(target))
        assert new == []
        assert grandfathered == findings

    def test_line_drift_survives_but_duplication_does_not(self, tmp_path):
        original = self.make_findings(
            "import random\nvalue = random.random()\n"
        )
        target = tmp_path / "baseline.json"
        write_baseline(target, original)
        baseline = load_baseline(target)

        # Same hazard shifted down the file: still grandfathered.
        drifted = self.make_findings(
            "import random\n\n\nvalue = random.random()\n"
        )
        new, grandfathered = apply_baseline(drifted, baseline)
        assert new == [] and len(grandfathered) == 1

        # A second copy of the hazard: the multiset absorbs only one.
        doubled = self.make_findings(
            "import random\nvalue = random.random()\nvalue = random.random()\n"
        )
        new, grandfathered = apply_baseline(doubled, baseline)
        assert len(new) == 1 and len(grandfathered) == 1

    def test_fingerprint_is_line_free_and_snippet_sensitive(self):
        base = dict(
            path="a.py",
            col=0,
            rule_id="unseeded-rng",
            severity="error",
            message="m",
            snippet="x = random.random()",
        )
        first = Finding(line=2, **base)
        moved = Finding(line=40, **base)
        assert finding_fingerprint(first) == finding_fingerprint(moved)
        other = Finding(line=2, **{**base, "snippet": "y = random.random()"})
        assert finding_fingerprint(first) != finding_fingerprint(other)

    def test_stale_or_malformed_baselines_fail_loudly(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text('{"format": 99, "findings": []}\n')
        with pytest.raises(ValueError, match="format"):
            load_baseline(target)
        target.write_text("not json at all\n")
        with pytest.raises(ValueError, match="not a baseline"):
            load_baseline(target)
        target.write_text('{"no": "findings"}\n')
        with pytest.raises(ValueError, match="findings"):
            load_baseline(target)

    def test_empty_baseline_absorbs_nothing(self):
        findings = self.make_findings(
            "import random\nvalue = random.random()\n"
        )
        new, grandfathered = apply_baseline(findings, Counter())
        assert new == findings and grandfathered == []


class TestReporters:
    def findings(self):
        return lint_file(
            "pkg/mod.py", source="import random\nvalue = random.random()\n"
        )

    def test_text_report_uses_compiler_convention(self):
        findings = self.findings()
        text = render_text(findings, ["pkg/mod.py"])
        assert text.startswith("pkg/mod.py:2:8: unseeded-rng error:")
        assert "value = random.random()" in text
        assert text.endswith("1 finding in 1 file")

    def test_text_report_counts_grandfathered(self):
        findings = self.findings()
        text = render_text([], ["pkg/mod.py"], grandfathered=findings)
        assert "0 findings in 1 file (1 grandfathered by the baseline)" in text

    def test_json_report_is_self_describing_and_deterministic(self):
        findings = self.findings()
        first = render_json(findings, ["pkg/mod.py"], rules=["unseeded-rng"])
        second = render_json(findings, ["pkg/mod.py"], rules=["unseeded-rng"])
        assert first == second
        document = json.loads(first)
        assert document["format"] == 1
        assert document["rules"] == ["unseeded-rng"]
        assert document["findings"][0]["rule"] == "unseeded-rng"
        assert document["findings"][0]["line"] == 2


class TestFindingModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="severity"):
            Finding(
                path="a.py", line=1, col=0, rule_id="r",
                severity="fatal", message="m",
            )
        with pytest.raises(ValueError, match="line"):
            Finding(
                path="a.py", line=0, col=0, rule_id="r",
                severity="error", message="m",
            )

    def test_sorting_is_by_location_then_rule(self):
        make = lambda line, col, rule: Finding(  # noqa: E731
            path="a.py", line=line, col=col, rule_id=rule,
            severity="error", message="m",
        )
        shuffled = [make(2, 0, "b"), make(1, 4, "a"), make(1, 4, "A")]
        ordered = sorted(shuffled, key=Finding.sort_key)
        assert [(f.line, f.col, f.rule_id) for f in ordered] == [
            (1, 4, "A"), (1, 4, "a"), (2, 0, "b"),
        ]


class TestShippedTreeSelfCheck:
    """The CI gate's contract: the shipped tree is clean, not baselined."""

    def test_src_repro_is_clean_under_every_rule(self):
        report = lint_paths([REPO_ROOT / "src" / "repro"])
        assert report.rules == registered_rules()
        assert len(report.files) > 50
        assert report.clean, "\n" + render_text(
            report.findings, report.files
        )

    def test_committed_baseline_is_empty(self):
        # The tree ships clean: intentional exceptions carry inline
        # pragmas with justifications, so the baseline stays empty and
        # the ratchet starts fully tightened.
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        assert sum(baseline.values()) == 0
