"""BatchMitigation unit tests: lockstep Algorithm 1 vs the scalar controller.

The executor-level gate lives in ``tests/test_batch_executor.py``; these
tests pin the stage contract directly — per-step command/recovery output
and post-retire controller state must be bit-identical to driving the
scalar :class:`MitigationController` with the same feature stream,
including warm-up, activation, exit and the sliding window.
"""

import numpy as np
import pytest

from repro.adas.controlsd import AdasCommand
from repro.ml.dataset import WINDOW
from repro.ml.lstm import LstmNetwork
from repro.ml.mitigation import (
    MitigationController,
    MitigationFactory,
    MitigationParams,
)
from repro.ml.trainer import TrainedBaseline
from repro.sim.batch_ml import BatchMitigation


def synthetic_baseline(seed=7, hidden=(8, 6)):
    """An untrained (but deterministic) baseline: predictions are
    arbitrary, which is exactly what the bit-identity contract needs —
    the CUSUM sees large deltas and exercises the recovery path."""
    return TrainedBaseline(
        network=LstmNetwork(
            input_size=6, hidden_sizes=hidden, output_size=2, seed=seed
        ),
        feature_mean=np.array([20.0, 60.0, 0.9, 0.9, 0.0, 0.0]),
        feature_std=np.array([5.0, 30.0, 0.5, 0.5, 1.0, 0.1]),
        target_mean=np.array([0.1, 0.0]),
        target_std=np.array([1.5, 0.05]),
    )


class _FakePlatform:
    def __init__(self, controller):
        self.ml_controller = controller


def _feature_stream(rng, steps):
    return [
        [
            float(15.0 + 10.0 * rng.random()),
            float(120.0 * rng.random()),
            float(rng.random()),
            float(rng.random()),
            float(rng.normal(0.0, 1.0)),
            float(rng.normal(0.0, 0.05)),
        ]
        for _ in range(steps)
    ]


class TestBatchMitigationEquivalence:
    def drive_pair(self, n_lanes, steps, baselines=None, params=None, seed=0):
        """Drive scalar controllers and a BatchMitigation on one stream."""
        params = params or MitigationParams(tau=0.5, bias=0.2)
        baselines = baselines or [synthetic_baseline()] * n_lanes
        scalar = [MitigationController(b, params) for b in baselines]
        batch_ctl = [MitigationController(b, params) for b in baselines]
        for lhs, rhs in zip(scalar, batch_ctl):
            assert lhs.baseline is rhs.baseline
        platforms = [_FakePlatform(c) for c in batch_ctl]
        batch = BatchMitigation(platforms, range(n_lanes))

        rng = np.random.default_rng(seed)
        streams = [_feature_stream(rng, steps) for _ in range(n_lanes)]
        y_ops = [
            [AdasCommand(float(rng.normal()), float(rng.normal(0.0, 0.1)))
             for _ in range(steps)]
            for _ in range(n_lanes)
        ]
        for t in range(steps):
            features = np.array([streams[i][t] for i in range(n_lanes)])
            y_a = np.array([y_ops[i][t].accel for i in range(n_lanes)])
            y_s = np.array([y_ops[i][t].steer for i in range(n_lanes)])
            rec, mla, mls = batch.step(tuple(range(n_lanes)), features, y_a, y_s)
            for i in range(n_lanes):
                cmd, r = scalar[i].step(streams[i][t], y_ops[i][t], 0.01)
                assert r == bool(rec[i]), (t, i)
                assert cmd.accel == mla[i], (t, i)
                assert cmd.steer == mls[i], (t, i)
        for lane in range(n_lanes):
            batch.retire(lane)
        for lhs, rhs in zip(scalar, batch_ctl):
            assert rhs._window == lhs._window
            assert rhs._s == lhs._s
            assert rhs.recovery == lhs.recovery
            assert rhs.activations == lhs.activations
        return scalar

    def test_single_lane_is_bit_identical(self):
        self.drive_pair(1, WINDOW + 40)

    def test_many_lanes_bit_identical_including_recovery(self):
        scalar = self.drive_pair(7, WINDOW + 120, seed=3)
        # The stream must actually exercise Algorithm 1's activation path,
        # or the equality above proves nothing about the CUSUM math.
        assert any(c.activations > 0 for c in scalar)

    def test_warm_up_shorter_than_window(self):
        self.drive_pair(3, WINDOW - 5)

    def test_mixed_baselines_group_per_network(self):
        baselines = [
            synthetic_baseline(seed=1),
            synthetic_baseline(seed=2),
            synthetic_baseline(seed=1, hidden=(16, 8)),
            synthetic_baseline(seed=2),
        ]
        self.drive_pair(4, WINDOW + 60, baselines=baselines, seed=11)

    def test_tie_breaking_params_bit_identical(self):
        # Thresholds sitting exactly on the comparison boundary: the
        # strict S > tau and inclusive delta <= bias branches must agree.
        params = MitigationParams(tau=0.0, bias=0.0)
        self.drive_pair(4, WINDOW + 30, params=params, seed=5)


class TestBatchMitigationInternals:
    def make(self, n=3, params=None):
        baseline = synthetic_baseline()
        params = params or MitigationParams()
        platforms = [
            _FakePlatform(MitigationController(baseline, params))
            for _ in range(n)
        ]
        return BatchMitigation(platforms, range(n)), platforms

    def test_rejects_non_stock_controller(self):
        class Custom(MitigationController):
            pass

        platform = _FakePlatform(Custom(synthetic_baseline()))
        with pytest.raises(ValueError, match="stock MitigationController"):
            BatchMitigation([platform], [0])

    def test_forward_verification_memoizes_per_batch_size(self):
        batch, _ = self.make(n=3)
        net = synthetic_baseline().network
        x = np.random.default_rng(0).normal(size=(3, WINDOW, 6))
        batch._forward_rows(net, x)
        assert (id(net), 3) in batch._batched_ok
        # Batch of one is the scalar call itself — never probed.
        batch._forward_rows(net, x[:1])
        assert (id(net), 1) not in batch._batched_ok

    def test_forward_rows_match_predict_one_slices(self):
        # Whatever mode the probe picks, the output must equal per-lane
        # batch=1 forwards (the scalar predict_one arithmetic).
        batch, _ = self.make(n=4)
        net = synthetic_baseline().network
        x = np.random.default_rng(1).normal(size=(4, WINDOW, 6))
        rows = batch._forward_rows(net, x)
        expected = np.concatenate(
            [net.forward(x[i : i + 1]) for i in range(4)], axis=0
        )
        assert rows.tobytes() == expected.tobytes()
        # Second call takes the memoized path; result must not change.
        assert batch._forward_rows(net, x).tobytes() == expected.tobytes()

    def test_failed_probe_stops_probing_new_sizes(self):
        class _LyingNetwork:
            """forward() whose batched rows disagree with batch=1 rows."""

            def __init__(self):
                self.calls = []

            def forward(self, x):
                self.calls.append(x.shape[0])
                out = np.full((x.shape[0], 2), float(x.shape[0]))
                return out

        batch, _ = self.make(n=2)
        net = _LyingNetwork()
        x = np.zeros((3, WINDOW, 6))
        rows = batch._forward_rows(net, x)
        # Fallback output is built from batch=1 slices.
        assert np.all(rows == 1.0)
        assert batch._batched_ok[(id(net), 3)] is False
        calls_after_probe = len(net.calls)
        # A new size skips the batched probe entirely (per-lane only).
        rows = batch._forward_rows(net, np.zeros((2, WINDOW, 6)))
        assert np.all(rows == 1.0)
        assert net.calls[calls_after_probe:] == [1, 1]

    def test_retire_ignores_non_ml_lane(self):
        baseline = synthetic_baseline()
        platforms = [
            _FakePlatform(MitigationController(baseline)),
            _FakePlatform(None),
        ]
        batch = BatchMitigation(platforms, [0])
        batch.retire(1)  # must not raise
