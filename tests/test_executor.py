"""Tests for the campaign execution engine and result serialization.

Covers the executor determinism contract (serial == parallel, bit for
bit), EpisodeResult round-trips through to_dict/from_dict and JSONL,
the undefined-minima normalization in aggregate(), and the campaign /
benchmark input validation added alongside the engine.
"""

import json

import pytest

from repro.attacks.campaign import CampaignSpec, EpisodeSpec
from repro.attacks.fi import FaultType
from repro.core.executor import (
    BatchExecutor,
    EpisodeTask,
    ParallelExecutor,
    ProgressTracker,
    SerialExecutor,
    default_jobs,
    make_executor,
)
from repro.core.experiment import CampaignResult, run_campaign
from repro.core.hazards import AccidentType
from repro.core.metrics import (
    EpisodeResult,
    InterventionActivity,
    aggregate,
    load_results,
    save_results,
)
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig

#: Small-but-real campaign used across the determinism tests: 4 episodes
#: (2 scenarios x 2 repetitions) under a relative-distance attack.
SMALL_SPEC = CampaignSpec(
    fault_types=[FaultType.RELATIVE_DISTANCE],
    scenario_ids=("S1", "S4"),
    initial_gaps=(60.0,),
    repetitions=2,
    seed=99,
)
SMALL_CFG = InterventionConfig(driver=True, aeb=AebsConfig.COMPROMISED)


class TestExecutorDeterminism:
    def test_serial_and_parallel_results_identical(self):
        serial = run_campaign(
            SMALL_SPEC, SMALL_CFG, executor=SerialExecutor(), max_steps=1500
        )
        parallel = run_campaign(
            SMALL_SPEC, SMALL_CFG, executor=ParallelExecutor(jobs=2), max_steps=1500
        )
        assert serial.results == parallel.results
        assert serial.intervention == parallel.intervention

    def test_parallel_chunking_preserves_order(self):
        serial = run_campaign(
            SMALL_SPEC, SMALL_CFG, executor=SerialExecutor(), max_steps=1000
        )
        for chunk_size in (1, 3, 100):
            parallel = run_campaign(
                SMALL_SPEC,
                SMALL_CFG,
                executor=ParallelExecutor(jobs=2, chunk_size=chunk_size),
                max_steps=1000,
            )
            assert parallel.results == serial.results, chunk_size

    def test_jobs_kwarg_matches_serial_default(self):
        default = run_campaign(SMALL_SPEC, SMALL_CFG, max_steps=1000)
        explicit = run_campaign(SMALL_SPEC, SMALL_CFG, jobs=2, max_steps=1000)
        assert default.results == explicit.results

    def test_progress_is_monotonic_and_complete(self):
        calls = []
        run_campaign(
            SMALL_SPEC,
            SMALL_CFG,
            executor=ParallelExecutor(jobs=2, chunk_size=1),
            progress=lambda done, total: calls.append((done, total)),
            max_steps=500,
        )
        dones = [d for d, _ in calls]
        assert dones == sorted(dones)
        assert calls[-1] == (4, 4)
        assert all(t == 4 for _, t in calls)

    def test_unpicklable_payload_falls_back_to_serial(self):
        episodes = [
            EpisodeSpec(
                scenario_id="S1",
                initial_gap=60.0,
                fault_type=FaultType.NONE,
                repetition=rep,
                seed=7 + rep,
            )
            for rep in range(2)
        ]
        with pytest.warns(RuntimeWarning, match="not picklable"):
            campaign = run_campaign(
                episodes,
                InterventionConfig(ml=True),
                ml_factory=lambda: _DummyMl(),
                executor=ParallelExecutor(jobs=2),
                max_steps=200,
            )
        assert len(campaign.results) == 2

    def test_unpicklable_payload_in_later_position_falls_back(self):
        # Campaigns mix arms: probing only tasks[0] would green-light a
        # list whose lambda ml_factory sits further in and then explode
        # inside the process pool mid-campaign.  A non-first non-picklable
        # payload must fall back in-process just like a first one.
        specs = [
            EpisodeSpec(
                scenario_id="S1",
                initial_gap=60.0,
                fault_type=FaultType.NONE,
                repetition=rep,
                seed=7 + rep,
            )
            for rep in range(3)
        ]
        tasks = [
            EpisodeTask.make(spec, InterventionConfig(), max_steps=200)
            for spec in specs[:2]
        ] + [
            EpisodeTask.make(
                specs[2],
                InterventionConfig(ml=True),
                ml_factory=lambda: _DummyMl(),
                max_steps=200,
            )
        ]
        with pytest.warns(RuntimeWarning, match="not picklable"):
            pooled = ParallelExecutor(jobs=2).run(tasks)
        serial = SerialExecutor().run(tasks)
        assert pooled == serial

    def test_single_task_short_circuits_to_serial(self):
        episodes = [
            EpisodeSpec(
                scenario_id="S1",
                initial_gap=60.0,
                fault_type=FaultType.NONE,
                repetition=0,
                seed=7,
            )
        ]
        serial = run_campaign(
            episodes, InterventionConfig(), executor=SerialExecutor(), max_steps=200
        )
        pooled = run_campaign(
            episodes,
            InterventionConfig(),
            executor=ParallelExecutor(jobs=4),
            max_steps=200,
        )
        assert pooled.results == serial.results

    def test_empty_episode_list(self):
        campaign = run_campaign(
            [], InterventionConfig(), executor=ParallelExecutor(jobs=2)
        )
        assert campaign.results == []


class _DummyMl:
    """Minimal MlController used to exercise the ml_factory path."""

    def reset(self):
        pass

    def step(self, features, y_op, dt):
        return y_op, False


class TestExecutorConstruction:
    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ValueError):
            make_executor(jobs=-1)

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=2, chunk_size=0)

    def test_make_executor_backend_selection(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(3), ParallelExecutor)

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert default_jobs() == 5

    def test_default_jobs_rejects_malformed_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()

    def test_cli_reports_malformed_repro_jobs_cleanly(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_JOBS", "fast")
        assert main(["episode", "--seed", "3"]) == 2
        err = capsys.readouterr().err
        assert "REPRO_JOBS must be a positive integer" in err
        # Commands without a --jobs flag never read the env var.
        assert main(["fig5"]) == 0

    def test_progress_tracker_counts(self):
        calls = []
        tracker = ProgressTracker(5, lambda d, t: calls.append((d, t)))
        tracker.advance(2)
        tracker.advance(3)
        assert calls == [(2, 5), (5, 5)]

    def test_progress_tracker_rejects_negative_total(self):
        with pytest.raises(ValueError, match="total"):
            ProgressTracker(-1, None)

    def test_progress_tracker_rejects_nonpositive_advance(self):
        calls = []
        tracker = ProgressTracker(3, lambda d, t: calls.append((d, t)))
        with pytest.raises(ValueError, match="count"):
            tracker.advance(0)
        with pytest.raises(ValueError, match="count"):
            tracker.advance(-2)
        # A rejected advance must not move the counter or notify.
        assert tracker.done == 0
        assert calls == []

    def test_progress_completes_under_chunked_batch_dispatch(self):
        # 5 episodes through lanes=2 dispatch as chunks of 2/2/1; the
        # (done, total) contract — monotonic, constant total, final call
        # exactly (total, total) — must survive the uneven final chunk.
        specs = [
            EpisodeSpec(
                scenario_id="S1",
                initial_gap=60.0,
                fault_type=FaultType.NONE,
                repetition=rep,
                seed=11 + rep,
            )
            for rep in range(5)
        ]
        tasks = [
            EpisodeTask.make(spec, InterventionConfig(), max_steps=50)
            for spec in specs
        ]
        calls = []
        BatchExecutor(lanes=2).run(
            tasks, progress=lambda d, t: calls.append((d, t))
        )
        dones = [d for d, _ in calls]
        assert dones == sorted(dones)
        assert all(t == 5 for _, t in calls)
        assert calls[-1] == (5, 5)


def _attacked_result() -> EpisodeResult:
    """A fully-populated result, as a real attack episode produces."""
    result = EpisodeResult(
        scenario_id="S4",
        initial_gap=60.0,
        fault_type="relative_distance",
        seed=123456789,
        intervention="driver+check",
        accident=AccidentType.A1,
        accident_time=12.34,
        h1=True,
        h2=False,
        steps=1234,
        duration=12.34,
        min_ttc=0.82,
        min_tfcw=3.1,
        following_distance=27.5,
        hardest_brake_fraction=0.93,
        min_lane_distance=0.41,
        max_speed=22.3,
        attack_first_activation=6.0,
        attack_activated=True,
    )
    result.aeb.record(True, 7.0, 0.01)
    result.driver_brake.record(True, 8.0, 0.01)
    result.driver_brake.record(False, 8.01, 0.01)
    return result


class TestEpisodeResultSerialization:
    def test_round_trip_populated(self):
        result = _attacked_result()
        clone = EpisodeResult.from_dict(result.to_dict())
        assert clone == result

    def test_round_trip_defaults_with_inf_sentinels(self):
        result = EpisodeResult()
        data = result.to_dict()
        # The sentinels must serialize as None (inf is invalid JSON) ...
        assert data["min_ttc"] is None
        assert data["min_tfcw"] is None
        assert data["min_lane_distance"] is None
        json.dumps(data, allow_nan=False)  # must not raise
        # ... and deserialize back to the exact in-memory sentinel.
        clone = EpisodeResult.from_dict(data)
        assert clone == result
        assert clone.min_ttc == float("inf")

    def test_channels_round_trip(self):
        result = _attacked_result()
        clone = EpisodeResult.from_dict(result.to_dict())
        assert clone.aeb == result.aeb
        assert clone.driver_brake.activation_count == 1
        assert clone.driver_brake._prev_active is False

    def test_activity_round_trip(self):
        activity = InterventionActivity()
        activity.record(True, 1.0, 0.01)
        activity.record(True, 1.01, 0.01)
        clone = InterventionActivity.from_dict(activity.to_dict())
        assert clone == activity

    def test_accident_enum_round_trip(self):
        for accident in (None, AccidentType.A1, AccidentType.A2):
            result = EpisodeResult(accident=accident)
            assert EpisodeResult.from_dict(result.to_dict()).accident is accident


class TestJsonlPersistence:
    def test_save_load_round_trip(self, tmp_path):
        results = [_attacked_result(), EpisodeResult(scenario_id="S1")]
        path = tmp_path / "campaign.jsonl"
        assert save_results(results, path) == 2
        assert load_results(path) == results

    def test_lines_are_plain_json(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        save_results([EpisodeResult()], path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["min_ttc"] is None
        assert "Infinity" not in lines[0]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        save_results([EpisodeResult(seed=1), EpisodeResult(seed=2)], path)
        path.write_text(path.read_text().replace("\n", "\n\n"))
        assert [r.seed for r in load_results(path)] == [1, 2]

    def test_malformed_interior_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        save_results([EpisodeResult(seed=9)], path)
        path.write_text('{"not": "an episode"}\n' + path.read_text())
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_results(path)

    def test_truncated_final_line_loads_prefix(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        save_results([EpisodeResult(seed=1), EpisodeResult(seed=2)], path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2 + len(text) // 4])  # cut line 2
        with pytest.warns(RuntimeWarning, match="malformed final record"):
            prefix = load_results(path)
        assert [r.seed for r in prefix] == [1]

    def test_corrupt_interior_record_reports_location(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        save_results([EpisodeResult(seed=1), EpisodeResult(seed=2)], path)
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"accident": null', '"accident": "bogus"')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt.jsonl:1"):
            load_results(path)

    def test_campaign_result_save_load(self, tmp_path):
        campaign = CampaignResult(
            intervention="driver+check", results=[_attacked_result()]
        )
        path = tmp_path / "campaign.jsonl"
        campaign.save(path)
        reloaded = CampaignResult.load(path)
        assert reloaded.intervention == "driver+check"
        assert reloaded.results == campaign.results

    def test_campaign_result_load_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        reloaded = CampaignResult.load(path)
        assert reloaded.intervention == "none"
        assert reloaded.results == []

    def test_campaign_result_load_rejects_mixed_interventions(self, tmp_path):
        path = tmp_path / "merged.jsonl"
        save_results(
            [
                EpisodeResult(seed=1, intervention="none"),
                EpisodeResult(seed=2, intervention="driver"),
            ],
            path,
        )
        with pytest.raises(ValueError, match="mixed intervention labels"):
            CampaignResult.load(path)
        # load_results stays available for explicit mixed-file handling.
        assert len(load_results(path)) == 2


class TestUndefinedMinimaAggregation:
    def test_aggregate_normalizes_inf_to_none(self):
        stats = aggregate([EpisodeResult(), EpisodeResult()])
        assert stats.min_ttc is None
        assert stats.min_tfcw is None
        assert stats.min_lane_distance is None

    def test_aggregate_keeps_defined_minima(self):
        defined = EpisodeResult(min_ttc=1.5, min_tfcw=2.0, min_lane_distance=0.3)
        stats = aggregate([defined, EpisodeResult()])
        assert stats.min_ttc == 1.5
        assert stats.min_tfcw == 2.0
        assert stats.min_lane_distance == 0.3

    def test_tables_render_undefined_minima_as_dash(self):
        from repro.analysis.tables import (
            Table4Row,
            render_table4,
            render_table5,
        )

        row = Table4Row(
            scenario_id="S1",
            hazard_count=0,
            accident_count=0,
            episodes=1,
            following_distance=None,
            hardest_brake_pct=0.0,
            min_ttc=None,
            min_tfcw=None,
        )
        text = render_table4([row])
        assert "inf" not in text
        assert " - " in text
        text5 = render_table5({"S1": None})
        assert "inf" not in text5
        assert "-" in text5.splitlines()[-1]

    def test_render_fmt_handles_nonfinite_floats(self):
        from repro.analysis.render import _fmt

        assert _fmt(float("inf")) == "-"
        assert _fmt(float("nan")) == "-"
        assert _fmt(1.234) == "1.23"


class TestCampaignSpecValidation:
    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError, match="fault_types"):
            CampaignSpec(fault_types=[])
        with pytest.raises(ValueError, match="scenario_ids"):
            CampaignSpec(scenario_ids=())
        with pytest.raises(ValueError, match="initial_gaps"):
            CampaignSpec(initial_gaps=())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate fault_types"):
            CampaignSpec(fault_types=[FaultType.NONE, FaultType.NONE])
        with pytest.raises(ValueError, match="duplicate scenario_ids"):
            CampaignSpec(scenario_ids=("S1", "S1"))
        with pytest.raises(ValueError, match="duplicate initial_gaps"):
            CampaignSpec(initial_gaps=(60.0, 60.0))

    def test_rejects_nonpositive_gaps(self):
        with pytest.raises(ValueError, match="initial_gaps"):
            CampaignSpec(initial_gaps=(60.0, 0.0))
        with pytest.raises(ValueError, match="initial_gaps"):
            CampaignSpec(initial_gaps=(-5.0,))

    def test_accepts_paper_grid(self):
        spec = CampaignSpec()
        assert spec.repetitions == 10


class TestBenchRepetitionsValidation:
    def _repetitions(self):
        import importlib.util
        import pathlib

        path = (
            pathlib.Path(__file__).resolve().parents[1]
            / "benchmarks"
            / "_bench_utils.py"
        )
        spec = importlib.util.spec_from_file_location("_bench_utils", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.repetitions

    def test_default_and_override(self, monkeypatch):
        repetitions = self._repetitions()
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.delenv("REPRO_REPS", raising=False)
        assert repetitions(3) == 3
        monkeypatch.setenv("REPRO_REPS", "7")
        assert repetitions(3) == 7
        monkeypatch.setenv("REPRO_FULL", "1")
        assert repetitions(3) == 10

    def test_malformed_reps_actionable_error(self, monkeypatch):
        repetitions = self._repetitions()
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.setenv("REPRO_REPS", "a lot")
        with pytest.raises(ValueError, match="REPRO_REPS must be a positive"):
            repetitions()

    def test_nonpositive_reps_rejected(self, monkeypatch):
        repetitions = self._repetitions()
        monkeypatch.delenv("REPRO_FULL", raising=False)
        for bad in ("0", "-3"):
            monkeypatch.setenv("REPRO_REPS", bad)
            with pytest.raises(ValueError, match="REPRO_REPS"):
                repetitions()


class TestEpisodeTask:
    def test_make_normalizes_kwargs(self):
        spec = EpisodeSpec(
            scenario_id="S1",
            initial_gap=60.0,
            fault_type=FaultType.NONE,
            repetition=0,
            seed=1,
        )
        task = EpisodeTask.make(spec, InterventionConfig(), max_steps=100, dt=0.01)
        assert task.platform_kwargs == (("dt", 0.01), ("max_steps", 100))

    def test_task_is_picklable(self):
        import pickle

        spec = EpisodeSpec(
            scenario_id="S1",
            initial_gap=60.0,
            fault_type=FaultType.NONE,
            repetition=0,
            seed=1,
        )
        task = EpisodeTask.make(spec, InterventionConfig(), max_steps=100)
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
