"""Unit tests for the NumPy LSTM, Adam, dataset and Algorithm 1."""

import numpy as np
import pytest

from repro.adas.controlsd import AdasCommand
from repro.ml.dataset import FEATURE_NAMES, WINDOW, Trace, TraceDataset
from repro.ml.lstm import LstmNetwork
from repro.ml.mitigation import (
    MitigationController,
    MitigationFactory,
    MitigationParams,
)
from repro.ml.optim import Adam
from repro.ml.trainer import EXPLORED_CONFIGS, TrainedBaseline


def tiny_net(seed=0):
    return LstmNetwork(input_size=3, hidden_sizes=(8, 6), output_size=2, seed=seed)


class TestLstmForward:
    def test_output_shape(self):
        net = tiny_net()
        y = net.forward(np.zeros((4, 10, 3)))
        assert y.shape == (4, 2)

    def test_rejects_bad_shape(self):
        net = tiny_net()
        with pytest.raises(ValueError):
            net.forward(np.zeros((4, 10, 5)))

    def test_deterministic_init(self):
        a = tiny_net(seed=1).forward(np.ones((1, 5, 3)))
        b = tiny_net(seed=1).forward(np.ones((1, 5, 3)))
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = tiny_net(seed=1).forward(np.ones((1, 5, 3)))
        b = tiny_net(seed=2).forward(np.ones((1, 5, 3)))
        assert not np.allclose(a, b)

    def test_predict_one(self):
        net = tiny_net()
        y = net.predict_one(np.zeros((10, 3)))
        assert y.shape == (2,)


class TestGradients:
    def test_numerical_gradient_check(self):
        # Finite-difference check on a few random weights.
        rng = np.random.default_rng(0)
        net = LstmNetwork(input_size=2, hidden_sizes=(4,), output_size=1, seed=3)
        x = rng.normal(size=(3, 6, 2))
        t = rng.normal(size=(3, 1))
        _, grads = net.loss_and_grads(x, t)
        eps = 1e-6
        for p_idx in (0, 1, 2, 3):  # w_x, w_h, b, w_out
            param = net.params()[p_idx]
            flat_index = 1 % param.size
            idx = np.unravel_index(flat_index, param.shape)
            orig = param[idx]
            param[idx] = orig + eps
            loss_plus, _ = net.loss_and_grads(x, t)
            param[idx] = orig - eps
            loss_minus, _ = net.loss_and_grads(x, t)
            param[idx] = orig
            numeric = (loss_plus - loss_minus) / (2 * eps)
            analytic = grads[p_idx][idx]
            assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        net = tiny_net()
        optim = Adam(net.params(), lr=5e-3)
        x = rng.normal(size=(32, 10, 3))
        t = x[:, -1, :2] * 0.5  # learnable mapping
        first, _ = net.loss_and_grads(x, t)
        for _ in range(60):
            loss, grads = net.loss_and_grads(x, t)
            optim.step(grads)
        assert loss < 0.5 * first


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        net = tiny_net()
        x = np.random.default_rng(1).normal(size=(2, 5, 3))
        before = net.forward(x)
        path = str(tmp_path / "net.npz")
        net.save(path)
        loaded = LstmNetwork.load(path)
        assert np.allclose(loaded.forward(x), before)

    def test_baseline_save_load(self, tmp_path):
        net = tiny_net()
        baseline = TrainedBaseline(
            network=net,
            feature_mean=np.zeros(3),
            feature_std=np.ones(3),
            target_mean=np.zeros(2),
            target_std=np.ones(2),
            final_loss=0.1,
        )
        path = str(tmp_path / "baseline")
        baseline.save(path)
        loaded = TrainedBaseline.load(path)
        x = np.random.default_rng(1).normal(size=(5, 3))
        assert np.allclose(loaded.predict(x), baseline.predict(x))
        assert loaded.final_loss == pytest.approx(0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        w = np.array([5.0])
        optim = Adam([w], lr=0.1)
        for _ in range(300):
            optim.step([2.0 * w])  # d/dw of w^2
        assert abs(w[0]) < 0.1

    def test_gradient_clipping(self):
        w = np.array([0.0])
        optim = Adam([w], lr=0.1, clip=1.0)
        optim.step([np.array([1e9])])
        assert abs(w[0]) <= 0.2

    def test_length_mismatch(self):
        optim = Adam([np.zeros(2)])
        with pytest.raises(ValueError):
            optim.step([])

    def test_lr_validation(self):
        with pytest.raises(ValueError):
            Adam([np.zeros(1)], lr=0.0)


class TestDataset:
    def make_traces(self, steps=200):
        rng = np.random.default_rng(0)
        return [
            Trace(
                features=rng.normal(size=(steps, len(FEATURE_NAMES))),
                targets=rng.normal(size=(steps, 2)),
            )
        ]

    def test_window_extraction(self):
        ds = TraceDataset(self.make_traces(), window=20, stride=10)
        assert ds.x.shape[1] == 20
        assert ds.x.shape[2] == len(FEATURE_NAMES)
        assert len(ds) == ds.y.shape[0]

    def test_normalisation_round_trip(self):
        ds = TraceDataset(self.make_traces())
        y = np.array([[1.0, -0.5]])
        assert np.allclose(ds.denormalise_y(ds.normalise_y(y)), y)

    def test_normalised_features_standardised(self):
        ds = TraceDataset(self.make_traces(steps=2000), stride=1)
        x = ds.normalise_x(ds.x)
        flat = x.reshape(-1, x.shape[-1])
        assert np.allclose(flat.mean(axis=0), 0.0, atol=0.05)
        assert np.allclose(flat.std(axis=0), 1.0, atol=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceDataset(self.make_traces(), window=1)
        with pytest.raises(ValueError):
            TraceDataset(self.make_traces(), stride=0)
        with pytest.raises(ValueError):
            TraceDataset(self.make_traces(steps=5), window=20)

    def test_paper_window_constant(self):
        assert WINDOW == 20  # 0.2 s at 100 Hz

    def test_explored_configs_match_paper(self):
        assert (128, 64) in EXPLORED_CONFIGS  # the paper's best
        assert len(EXPLORED_CONFIGS) == 6


class _ConstantBaseline:
    """Predicts a fixed output regardless of input (test double)."""

    def __init__(self, accel, steer):
        self._y = np.array([accel, steer])

    def predict(self, window):
        return self._y.copy()


class TestAlgorithm1:
    def make(self, accel=-2.0, steer=0.0, **kwargs):
        params = MitigationParams(**kwargs) if kwargs else MitigationParams()
        return MitigationController(_ConstantBaseline(accel, steer), params)

    def feed(self, controller, y_op, steps):
        features = [20.0, 50.0, 0.9, 0.9, 0.0, 0.0]
        out = (AdasCommand(0.0, 0.0), False)
        for _ in range(steps):
            out = controller.step(features, y_op, 0.01)
        return out

    def test_no_detection_before_window_filled(self):
        ctl = self.make()
        cmd, recovery = self.feed(ctl, AdasCommand(2.0, 0.0), WINDOW - 1)
        assert not recovery
        assert ctl.cusum == 0.0

    def test_cusum_accumulates_under_divergence(self):
        ctl = self.make(accel=-2.0, tau=3.0, bias=0.35)
        self.feed(ctl, AdasCommand(2.0, 0.0), WINDOW + 1)
        assert ctl.cusum > 0.0

    def test_recovery_activates_above_tau(self):
        ctl = self.make(accel=-2.0, tau=3.0)
        cmd, recovery = self.feed(ctl, AdasCommand(2.0, 0.0), WINDOW + 5)
        assert recovery
        assert cmd.accel == pytest.approx(-2.0)
        assert ctl.activations == 1

    def test_no_accumulation_when_agreeing(self):
        ctl = self.make(accel=1.0)
        _, recovery = self.feed(ctl, AdasCommand(1.0, 0.0), WINDOW + 50)
        assert not recovery
        assert ctl.cusum == 0.0  # bias drains residual noise (line 2)

    def test_recovery_exits_on_reconvergence_and_resets(self):
        ctl = self.make(accel=-2.0, tau=3.0)
        self.feed(ctl, AdasCommand(2.0, 0.0), WINDOW + 5)
        assert ctl.recovery
        _, recovery = self.feed(ctl, AdasCommand(-2.0, 0.0), 2)
        assert not recovery
        assert ctl.cusum == 0.0  # Algorithm 1 line 16

    def test_output_clamped_to_envelope(self):
        ctl = self.make(accel=-50.0, tau=0.1)
        cmd, recovery = self.feed(ctl, AdasCommand(2.0, 0.0), WINDOW + 5)
        assert recovery
        assert cmd.accel == ctl.params.min_accel

    def test_feature_length_validation(self):
        ctl = self.make()
        with pytest.raises(ValueError):
            ctl.step([1.0, 2.0], AdasCommand(0.0, 0.0), 0.01)

    def test_reset(self):
        ctl = self.make(accel=-2.0, tau=3.0)
        self.feed(ctl, AdasCommand(2.0, 0.0), WINDOW + 5)
        ctl.reset()
        assert ctl.cusum == 0.0
        assert not ctl.recovery


class TestAlgorithm1EdgeSemantics:
    """Pins the exact step semantics the batch path must replicate.

    These contracts (warm-up mirroring, the strict ``S > tau`` crossing,
    reset-on-exit, per-episode factory isolation) are what
    :class:`repro.sim.batch_ml.BatchMitigation` vectorizes — any drift
    here breaks the batch/serial bit-identity gate.
    """

    FEATURES = [20.0, 50.0, 0.9, 0.9, 0.0, 0.0]

    def make(self, accel=-2.0, steer=0.0, **kwargs):
        params = MitigationParams(**kwargs) if kwargs else MitigationParams()
        return MitigationController(_ConstantBaseline(accel, steer), params)

    def test_warm_up_mirrors_y_op_verbatim(self):
        # With fewer than WINDOW samples the controller must return the
        # exact OP command object, never a prediction.
        ctl = self.make(accel=-50.0)
        y_op = AdasCommand(1.25, -0.03)
        for step in range(WINDOW - 1):
            cmd, recovery = ctl.step(self.FEATURES, y_op, 0.01)
            assert cmd is y_op
            assert recovery is False
            assert ctl.cusum == 0.0
            assert len(ctl._window) == step + 1
        # Step WINDOW is the first one that predicts.
        cmd, _ = ctl.step(self.FEATURES, y_op, 0.01)
        assert cmd is not y_op
        assert len(ctl._window) == WINDOW

    def test_window_slides_and_keeps_latest_samples(self):
        ctl = self.make()
        for i in range(WINDOW + 7):
            features = [float(i)] * len(FEATURE_NAMES)
            ctl.step(features, AdasCommand(0.0, 0.0), 0.01)
        assert len(ctl._window) == WINDOW
        assert ctl._window[0][0] == 7.0  # oldest surviving sample
        assert ctl._window[-1][0] == float(WINDOW + 6)

    def test_threshold_crossing_is_strict(self):
        # delta = |1.0 - 0.0| = 1.0 per step, bias 0.5 -> S grows by
        # exactly 0.5/step (representable); tau = 1.0.  S reaches tau
        # exactly on the second post-warm-up step and must NOT trigger
        # (Algorithm 1 line 10 is strict); the third step crosses.
        ctl = self.make(accel=1.0, tau=1.0, bias=0.5)
        y_op = AdasCommand(0.0, 0.0)
        for _ in range(WINDOW - 1):
            ctl.step(self.FEATURES, y_op, 0.01)
        _, rec = ctl.step(self.FEATURES, y_op, 0.01)
        assert ctl.cusum == 0.5 and not rec
        _, rec = ctl.step(self.FEATURES, y_op, 0.01)
        assert ctl.cusum == 1.0 and not rec  # S == tau: no activation
        _, rec = ctl.step(self.FEATURES, y_op, 0.01)
        assert ctl.cusum == 1.5 and rec
        assert ctl.activations == 1

    def test_exit_boundary_is_inclusive_and_resets_s(self):
        # Recovery exits when delta <= bias (inclusive); S resets to 0.
        ctl = self.make(accel=1.0, tau=1.0, bias=0.5)
        y_op_diverged = AdasCommand(0.0, 0.0)
        for _ in range(WINDOW + 2):
            ctl.step(self.FEATURES, y_op_diverged, 0.01)
        assert ctl.recovery
        # delta = |1.0 - 0.5| = 0.5 == bias: must exit and reset.
        _, rec = ctl.step(self.FEATURES, AdasCommand(0.5, 0.0), 0.01)
        assert not rec
        assert ctl.cusum == 0.0

    def test_activation_and_exit_never_share_a_step(self):
        # The scalar `elif` evaluates exit against the *pre-step* recovery
        # flag: a step that activates cannot also exit, even if its delta
        # would satisfy the exit test.
        ctl = self.make(accel=1.0, tau=0.1, bias=2.0)
        ctl._s = 5.0
        ctl._window = [list(self.FEATURES)] * WINDOW
        # delta = 1.0 <= bias, but recovery was False: activation wins.
        _, rec = ctl.step(self.FEATURES, AdasCommand(0.0, 0.0), 0.01)
        assert rec
        assert ctl.activations == 1

    def test_cusum_floors_at_zero(self):
        # bias > delta drains S but max(0, .) floors it at exactly +0.0.
        ctl = self.make(accel=1.0, bias=5.0)
        for _ in range(WINDOW + 10):
            _, rec = ctl.step(self.FEATURES, AdasCommand(0.0, 0.0), 0.01)
        assert ctl.cusum == 0.0
        assert not rec

    def test_factory_controllers_are_isolated_between_episodes(self):
        factory = MitigationFactory(
            _ConstantBaseline(-2.0, 0.0),
            MitigationParams(tau=1.0, bias=0.5),
            digest_token="test:constant",
        )
        first = factory()
        for _ in range(WINDOW + 5):
            first.step(self.FEATURES, AdasCommand(2.0, 0.0), 0.01)
        assert first.recovery and first.activations == 1
        second = factory()
        # Fresh CUSUM/window state; shared (read-only) baseline + params.
        assert second is not first
        assert second.cusum == 0.0
        assert not second.recovery
        assert second.activations == 0
        assert second._window == []
        assert second.baseline is first.baseline
        assert second.params is first.params
        # Driving the new controller must not disturb the old one's state.
        second.step(self.FEATURES, AdasCommand(2.0, 0.0), 0.01)
        assert first.recovery and len(first._window) == WINDOW
