"""Unit tests for the NumPy LSTM, Adam, dataset and Algorithm 1."""

import numpy as np
import pytest

from repro.adas.controlsd import AdasCommand
from repro.ml.dataset import FEATURE_NAMES, WINDOW, Trace, TraceDataset
from repro.ml.lstm import LstmNetwork
from repro.ml.mitigation import MitigationController, MitigationParams
from repro.ml.optim import Adam
from repro.ml.trainer import EXPLORED_CONFIGS, TrainedBaseline


def tiny_net(seed=0):
    return LstmNetwork(input_size=3, hidden_sizes=(8, 6), output_size=2, seed=seed)


class TestLstmForward:
    def test_output_shape(self):
        net = tiny_net()
        y = net.forward(np.zeros((4, 10, 3)))
        assert y.shape == (4, 2)

    def test_rejects_bad_shape(self):
        net = tiny_net()
        with pytest.raises(ValueError):
            net.forward(np.zeros((4, 10, 5)))

    def test_deterministic_init(self):
        a = tiny_net(seed=1).forward(np.ones((1, 5, 3)))
        b = tiny_net(seed=1).forward(np.ones((1, 5, 3)))
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = tiny_net(seed=1).forward(np.ones((1, 5, 3)))
        b = tiny_net(seed=2).forward(np.ones((1, 5, 3)))
        assert not np.allclose(a, b)

    def test_predict_one(self):
        net = tiny_net()
        y = net.predict_one(np.zeros((10, 3)))
        assert y.shape == (2,)


class TestGradients:
    def test_numerical_gradient_check(self):
        # Finite-difference check on a few random weights.
        rng = np.random.default_rng(0)
        net = LstmNetwork(input_size=2, hidden_sizes=(4,), output_size=1, seed=3)
        x = rng.normal(size=(3, 6, 2))
        t = rng.normal(size=(3, 1))
        _, grads = net.loss_and_grads(x, t)
        eps = 1e-6
        for p_idx in (0, 1, 2, 3):  # w_x, w_h, b, w_out
            param = net.params()[p_idx]
            flat_index = 1 % param.size
            idx = np.unravel_index(flat_index, param.shape)
            orig = param[idx]
            param[idx] = orig + eps
            loss_plus, _ = net.loss_and_grads(x, t)
            param[idx] = orig - eps
            loss_minus, _ = net.loss_and_grads(x, t)
            param[idx] = orig
            numeric = (loss_plus - loss_minus) / (2 * eps)
            analytic = grads[p_idx][idx]
            assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        net = tiny_net()
        optim = Adam(net.params(), lr=5e-3)
        x = rng.normal(size=(32, 10, 3))
        t = x[:, -1, :2] * 0.5  # learnable mapping
        first, _ = net.loss_and_grads(x, t)
        for _ in range(60):
            loss, grads = net.loss_and_grads(x, t)
            optim.step(grads)
        assert loss < 0.5 * first


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        net = tiny_net()
        x = np.random.default_rng(1).normal(size=(2, 5, 3))
        before = net.forward(x)
        path = str(tmp_path / "net.npz")
        net.save(path)
        loaded = LstmNetwork.load(path)
        assert np.allclose(loaded.forward(x), before)

    def test_baseline_save_load(self, tmp_path):
        net = tiny_net()
        baseline = TrainedBaseline(
            network=net,
            feature_mean=np.zeros(3),
            feature_std=np.ones(3),
            target_mean=np.zeros(2),
            target_std=np.ones(2),
            final_loss=0.1,
        )
        path = str(tmp_path / "baseline")
        baseline.save(path)
        loaded = TrainedBaseline.load(path)
        x = np.random.default_rng(1).normal(size=(5, 3))
        assert np.allclose(loaded.predict(x), baseline.predict(x))
        assert loaded.final_loss == pytest.approx(0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        w = np.array([5.0])
        optim = Adam([w], lr=0.1)
        for _ in range(300):
            optim.step([2.0 * w])  # d/dw of w^2
        assert abs(w[0]) < 0.1

    def test_gradient_clipping(self):
        w = np.array([0.0])
        optim = Adam([w], lr=0.1, clip=1.0)
        optim.step([np.array([1e9])])
        assert abs(w[0]) <= 0.2

    def test_length_mismatch(self):
        optim = Adam([np.zeros(2)])
        with pytest.raises(ValueError):
            optim.step([])

    def test_lr_validation(self):
        with pytest.raises(ValueError):
            Adam([np.zeros(1)], lr=0.0)


class TestDataset:
    def make_traces(self, steps=200):
        rng = np.random.default_rng(0)
        return [
            Trace(
                features=rng.normal(size=(steps, len(FEATURE_NAMES))),
                targets=rng.normal(size=(steps, 2)),
            )
        ]

    def test_window_extraction(self):
        ds = TraceDataset(self.make_traces(), window=20, stride=10)
        assert ds.x.shape[1] == 20
        assert ds.x.shape[2] == len(FEATURE_NAMES)
        assert len(ds) == ds.y.shape[0]

    def test_normalisation_round_trip(self):
        ds = TraceDataset(self.make_traces())
        y = np.array([[1.0, -0.5]])
        assert np.allclose(ds.denormalise_y(ds.normalise_y(y)), y)

    def test_normalised_features_standardised(self):
        ds = TraceDataset(self.make_traces(steps=2000), stride=1)
        x = ds.normalise_x(ds.x)
        flat = x.reshape(-1, x.shape[-1])
        assert np.allclose(flat.mean(axis=0), 0.0, atol=0.05)
        assert np.allclose(flat.std(axis=0), 1.0, atol=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceDataset(self.make_traces(), window=1)
        with pytest.raises(ValueError):
            TraceDataset(self.make_traces(), stride=0)
        with pytest.raises(ValueError):
            TraceDataset(self.make_traces(steps=5), window=20)

    def test_paper_window_constant(self):
        assert WINDOW == 20  # 0.2 s at 100 Hz

    def test_explored_configs_match_paper(self):
        assert (128, 64) in EXPLORED_CONFIGS  # the paper's best
        assert len(EXPLORED_CONFIGS) == 6


class _ConstantBaseline:
    """Predicts a fixed output regardless of input (test double)."""

    def __init__(self, accel, steer):
        self._y = np.array([accel, steer])

    def predict(self, window):
        return self._y.copy()


class TestAlgorithm1:
    def make(self, accel=-2.0, steer=0.0, **kwargs):
        params = MitigationParams(**kwargs) if kwargs else MitigationParams()
        return MitigationController(_ConstantBaseline(accel, steer), params)

    def feed(self, controller, y_op, steps):
        features = [20.0, 50.0, 0.9, 0.9, 0.0, 0.0]
        out = (AdasCommand(0.0, 0.0), False)
        for _ in range(steps):
            out = controller.step(features, y_op, 0.01)
        return out

    def test_no_detection_before_window_filled(self):
        ctl = self.make()
        cmd, recovery = self.feed(ctl, AdasCommand(2.0, 0.0), WINDOW - 1)
        assert not recovery
        assert ctl.cusum == 0.0

    def test_cusum_accumulates_under_divergence(self):
        ctl = self.make(accel=-2.0, tau=3.0, bias=0.35)
        self.feed(ctl, AdasCommand(2.0, 0.0), WINDOW + 1)
        assert ctl.cusum > 0.0

    def test_recovery_activates_above_tau(self):
        ctl = self.make(accel=-2.0, tau=3.0)
        cmd, recovery = self.feed(ctl, AdasCommand(2.0, 0.0), WINDOW + 5)
        assert recovery
        assert cmd.accel == pytest.approx(-2.0)
        assert ctl.activations == 1

    def test_no_accumulation_when_agreeing(self):
        ctl = self.make(accel=1.0)
        _, recovery = self.feed(ctl, AdasCommand(1.0, 0.0), WINDOW + 50)
        assert not recovery
        assert ctl.cusum == 0.0  # bias drains residual noise (line 2)

    def test_recovery_exits_on_reconvergence_and_resets(self):
        ctl = self.make(accel=-2.0, tau=3.0)
        self.feed(ctl, AdasCommand(2.0, 0.0), WINDOW + 5)
        assert ctl.recovery
        _, recovery = self.feed(ctl, AdasCommand(-2.0, 0.0), 2)
        assert not recovery
        assert ctl.cusum == 0.0  # Algorithm 1 line 16

    def test_output_clamped_to_envelope(self):
        ctl = self.make(accel=-50.0, tau=0.1)
        cmd, recovery = self.feed(ctl, AdasCommand(2.0, 0.0), WINDOW + 5)
        assert recovery
        assert cmd.accel == ctl.params.min_accel

    def test_feature_length_validation(self):
        ctl = self.make()
        with pytest.raises(ValueError):
            ctl.step([1.0, 2.0], AdasCommand(0.0, 0.0), 0.01)

    def test_reset(self):
        ctl = self.make(accel=-2.0, tau=3.0)
        self.feed(ctl, AdasCommand(2.0, 0.0), WINDOW + 5)
        ctl.reset()
        assert ctl.cusum == 0.0
        assert not ctl.recovery
