"""Golden-file regression suite for every paper table and figure summary.

The fixtures under ``tests/golden/`` are small seeded campaigns produced
once by the real simulator and frozen; each test loads a fixture, renders
the corresponding paper artifact, and compares the result **byte for
byte** against the committed golden file.  A table-formatting refactor
that drifts from the paper's layout (column order, precision, separators,
undefined-value markers) fails here instead of silently corrupting every
future report.

To update the goldens after an intentional layout change::

    PYTHONPATH=src python tests/golden/regenerate.py

(see that script's docstring for what is and is not covered).
"""

import os

import pytest

from repro.analysis.figures import render_fig5_summary, render_fig6_summary
from repro.analysis.render import format_placeholder
from repro.analysis.tables import (
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
    table4_driving_performance,
    table5_lane_distance,
    table6_rows,
    table7_reaction_sweep,
    table8_friction_sweep,
)
from repro.core.experiment import CampaignResult

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def golden(name: str) -> str:
    """A committed golden file, without its single trailing newline."""
    path = os.path.join(GOLDEN_DIR, name)
    with open(path, "r", encoding="utf-8", newline="") as handle:
        text = handle.read()
    assert text.endswith("\n"), f"{name}: golden files end with one newline"
    assert not text.endswith("\n\n"), f"{name}: exactly one trailing newline"
    return text[:-1]


@pytest.fixture(scope="module")
def benign() -> CampaignResult:
    return CampaignResult.load(os.path.join(GOLDEN_DIR, "benign_campaign.jsonl"))


@pytest.fixture(scope="module")
def attack() -> CampaignResult:
    return CampaignResult.load(os.path.join(GOLDEN_DIR, "attack_campaign.jsonl"))


class TestFixtureIntegrity:
    def test_benign_fixture_shape(self, benign):
        assert len(benign.results) == 12  # 6 scenarios x 2 gaps x 1 rep
        assert benign.intervention == "none"
        assert {r.fault_type for r in benign.results} == {"none"}

    def test_attack_fixture_shape(self, attack):
        assert len(attack.results) == 12  # 3 faults x 2 gaps x 2 scenarios
        assert attack.intervention == "driver+check"
        assert {r.fault_type for r in attack.results} == {
            "relative_distance",
            "desired_curvature",
            "mixed",
        }


class TestTableGoldens:
    def test_table4(self, benign):
        rendered = render_table4(table4_driving_performance(benign))
        assert rendered == golden("table4.txt")

    def test_table5(self, benign):
        rendered = render_table5(table5_lane_distance(benign))
        assert rendered == golden("table5.txt")

    def test_table6(self, attack):
        rendered = render_table6(table6_rows([("driver+check", attack)]))
        assert rendered == golden("table6.txt")

    def test_table7(self, attack):
        rendered = render_table7(
            table7_reaction_sweep({1.0: attack, 2.5: attack})
        )
        assert rendered == golden("table7.txt")

    def test_table8(self, attack):
        rendered = render_table8(
            table8_friction_sweep(
                {
                    "default": attack,
                    "25% off": attack,
                    "50% off": attack,
                    "75% off": attack,
                }
            )
        )
        assert rendered == golden("table8.txt")


class TestFigureGoldens:
    def test_fig5_summary(self):
        drops = {
            "S1": 12.104,
            "S2": 9.95,
            "S3": 0.0,
            "S4": 14.5,
            "S5": 3.25,
            "S6": 7.0,
        }
        assert render_fig5_summary(drops) == golden("fig5_summary.txt")

    def test_fig6_summary(self, attack):
        assert render_fig6_summary(attack.results[0]) == golden("fig6_summary.txt")


class TestPlaceholderGolden:
    def test_placeholder_layout(self):
        rendered = format_placeholder(
            "Table VI: Fault injection with/without safety interventions",
            [
                "table6:none    cached              36/36 episodes",
                "table6:driver  resumable-partial   12/36 episodes",
                "table6:ml      missing             0/36 episodes",
            ],
        )
        assert rendered == golden("placeholder.txt")
