"""Unit tests for repro.analysis.stats."""

import pytest

from repro.analysis.stats import (
    bootstrap_mean,
    rate_difference_significant,
    wilson_interval,
)


class TestWilson:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(7, 10)
        assert lo < 0.7 < hi

    def test_bounds_in_unit_interval(self):
        for successes in (0, 5, 10):
            lo, hi = wilson_interval(successes, 10)
            assert 0.0 <= lo <= hi <= 1.0

    def test_zero_successes_lower_bound_zero(self):
        lo, hi = wilson_interval(0, 10)
        assert lo == 0.0
        assert hi > 0.0  # Wilson does not collapse at the extremes

    def test_all_successes_upper_bound_one(self):
        lo, hi = wilson_interval(10, 10)
        assert hi == 1.0
        assert lo < 1.0

    def test_narrower_with_more_trials(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(50, 100)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_higher_confidence_wider(self):
        lo1, hi1 = wilson_interval(5, 10, confidence=0.90)
        lo2, hi2 = wilson_interval(5, 10, confidence=0.99)
        assert (hi2 - lo2) > (hi1 - lo1)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.5)


class TestRateDifference:
    def test_clear_difference_significant(self):
        assert rate_difference_significant(95, 100, 10, 100)

    def test_identical_rates_not_significant(self):
        assert not rate_difference_significant(50, 100, 50, 100)

    def test_small_samples_not_significant(self):
        # 2/3 vs 1/3 is noise at n=3.
        assert not rate_difference_significant(2, 3, 1, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            rate_difference_significant(1, 0, 1, 2)


class TestBootstrap:
    def test_contains_sample_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo, hi = bootstrap_mean(values, seed=1)
        assert lo <= 3.0 <= hi

    def test_empty_returns_none(self):
        assert bootstrap_mean([]) is None

    def test_deterministic_with_seed(self):
        values = [1.0, 5.0, 2.0, 8.0]
        assert bootstrap_mean(values, seed=3) == bootstrap_mean(values, seed=3)

    def test_single_value_degenerate(self):
        lo, hi = bootstrap_mean([2.5])
        assert lo == hi == 2.5
