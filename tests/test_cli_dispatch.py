"""CLI tests for the scheduler commands and configuration fail-fast paths.

Covers ``repro dispatch`` (in-process backend end to end, byte-compared
against ``repro campaign``), ``repro worker`` driven through ``main()``
on a real spec file, ``repro cache list|verify|gc``, the ``--backend``
flag on ``campaign``/``report`` (routing plus flag-conflict errors), and
the environment fail-fast bugfixes: a malformed ``REPRO_CACHE_DIR`` or
``REPRO_JOBS`` and an out-of-range ``--shard`` must exit 2 with a
message naming the culprit — never a traceback.
"""

import json
import os

import pytest

from repro.analysis.report import ReportConfig, _run_report_campaign
from repro.attacks.campaign import CampaignSpec
from repro.attacks.fi import FaultType
from repro.cli import build_parser, main
from repro.core.cache import CampaignCache, read_digest_sidecar
from repro.core.scheduler import (
    CampaignPlan,
    SubprocessFleetBackend,
    write_job_spec,
)
from repro.safety.arbitration import InterventionConfig

#: Quick grid shared across the command tests: 2 episodes, 300 steps.
GRID = [
    "--fault", "relative_distance", "--scenario", "S1",
    "--scenario-param", "initial_gap=60",
    "--reps", "2", "--seed", "7", "--driver", "--max-steps", "300",
]


def grid_spec():
    return CampaignSpec(
        fault_types=[FaultType.RELATIVE_DISTANCE],
        scenario_ids=("S1",),
        initial_gaps=(60.0,),
        repetitions=2,
        seed=7,
    )


class TestBatchLanesFlag:
    def test_campaign_batch_lanes_matches_serial_bytes(self, tmp_path, capsys):
        serial = tmp_path / "serial.jsonl"
        assert main(["campaign", *GRID, "-o", str(serial)]) == 0
        batch = tmp_path / "batch.jsonl"
        rc = main(
            [
                "campaign", *GRID,
                "--executor", "batch", "--lanes", "1",
                "-o", str(batch),
            ]
        )
        assert rc == 0
        assert batch.read_bytes() == serial.read_bytes()
        capsys.readouterr()

    def test_malformed_repro_batch_lanes_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BATCH_LANES", "many")
        assert main(["campaign", *GRID]) == 2
        assert "REPRO_BATCH_LANES" in capsys.readouterr().err

    def test_nonpositive_repro_batch_lanes_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BATCH_LANES", "0")
        assert main(["campaign", *GRID]) == 2
        assert "REPRO_BATCH_LANES" in capsys.readouterr().err

    def test_worker_command_forwards_lanes(self):
        backend = SubprocessFleetBackend(workers=1, executor="batch", lanes=3)
        command = backend.worker_command("spec.json")
        assert "--lanes" in command
        assert command[command.index("--lanes") + 1] == "3"
        assert command[command.index("--executor") + 1] == "batch"


class TestDispatchCommand:
    def test_in_process_dispatch_matches_campaign_bytes(self, tmp_path, capsys):
        serial = tmp_path / "serial.jsonl"
        assert main(["campaign", *GRID, "-o", str(serial)]) == 0
        out = tmp_path / "dispatch.jsonl"
        rc = main(
            [
                "dispatch", *GRID,
                "--backend", "in-process",
                "--shards", "2",
                "--workdir", str(tmp_path / "wd"),
                "-o", str(out),
            ]
        )
        assert rc == 0
        assert out.read_bytes() == serial.read_bytes()
        # The merged file carries the full-campaign digest sidecar, and
        # the workdir holds one shard JSONL + sidecar per planned shard.
        assert read_digest_sidecar(str(out)) is not None
        shard_files = sorted(
            n for n in os.listdir(tmp_path / "wd") if n.endswith(".jsonl")
        )
        assert len(shard_files) == 2
        assert "wrote 2 episodes" in capsys.readouterr().out

    def test_campaign_backend_flag_routes_through_scheduler(
        self, tmp_path, capsys
    ):
        serial = tmp_path / "serial.jsonl"
        assert main(["campaign", *GRID, "-o", str(serial)]) == 0
        out = tmp_path / "scheduled.jsonl"
        rc = main(
            [
                "campaign", *GRID,
                "--backend", "in-process",
                "--workdir", str(tmp_path / "wd"),
                "-o", str(out),
            ]
        )
        assert rc == 0
        assert out.read_bytes() == serial.read_bytes()

    def test_unknown_backend_exits_2_naming_registered(self, capsys):
        assert main(["campaign", *GRID, "--backend", "slurm"]) == 2
        err = capsys.readouterr().err
        assert "unknown worker backend 'slurm'" in err
        assert "in-process" in err and "subprocess" in err

    def test_backend_conflicts_with_shard_and_resume(self, capsys):
        assert (
            main(
                ["campaign", *GRID, "--backend", "in-process", "--shard", "1/2"]
            )
            == 2
        )
        assert "--shard" in capsys.readouterr().err
        assert (
            main(["campaign", *GRID, "--backend", "in-process", "--resume"]) == 2
        )
        assert "--resume" in capsys.readouterr().err

    def test_ssh_command_requires_ssh_backend(self, capsys):
        rc = main(
            [
                "dispatch", *GRID,
                "--backend", "subprocess",
                "--ssh-command", "ssh host {command}",
            ]
        )
        assert rc == 2
        assert "--ssh-command" in capsys.readouterr().err


class TestWorkerCommand:
    def test_worker_executes_a_spec_file(self, tmp_path, capsys):
        plan = CampaignPlan.build(
            grid_spec(), InterventionConfig(driver=True), shards=2, max_steps=300
        )
        job = plan.jobs[0]
        spec_path = str(tmp_path / "job.spec.json")
        write_job_spec(job, spec_path, output=job.file_name())
        assert main(["worker", "--spec", spec_path]) == 0
        err = capsys.readouterr().err
        assert (
            f"worker: shard 1/2: 0 episodes already recorded; "
            f"executing {job.total} of {job.total}" in err
        )
        output = tmp_path / job.file_name()
        assert output.exists()
        assert read_digest_sidecar(str(output)) == job.digest()

        # A second invocation resumes the complete file: zero executed.
        assert main(["worker", "--spec", spec_path]) == 0
        err = capsys.readouterr().err
        assert (
            f"worker: shard 1/2: {job.total} episodes already recorded; "
            f"executing 0 of {job.total}" in err
        )

    def test_worker_ignores_environment_cache(
        self, tmp_path, monkeypatch, capsys
    ):
        # Cache policy is resolved by the scheduler at dispatch time: a
        # spec without a cache_dir means the plan runs uncached, and the
        # worker must not leak results into (or serve them from) its own
        # REPRO_CACHE_DIR environment.
        env_cache = tmp_path / "env-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(env_cache))
        plan = CampaignPlan.build(
            grid_spec(), InterventionConfig(driver=True), shards=1, max_steps=300
        )
        job = plan.jobs[0]
        spec_path = str(tmp_path / "job.spec.json")
        write_job_spec(job, spec_path, output=job.file_name())
        assert main(["worker", "--spec", spec_path]) == 0
        assert not env_cache.exists()

    def test_worker_refuses_tampered_spec(self, tmp_path, capsys):
        plan = CampaignPlan.build(
            grid_spec(), InterventionConfig(driver=True), shards=1, max_steps=300
        )
        job = plan.jobs[0]
        spec_path = tmp_path / "job.spec.json"
        write_job_spec(job, str(spec_path), output=job.file_name())
        spec_path.write_text(
            spec_path.read_text().replace(job.digest(), "0" * 64)
        )
        assert main(["worker", "--spec", str(spec_path)]) == 2
        assert "disagree on campaign identity" in capsys.readouterr().err


class TestCacheCommand:
    def seeded_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        rc = main(["campaign", *GRID, "--cache-dir", cache_dir,
                   "-o", str(tmp_path / "c.jsonl")])
        assert rc == 0
        return cache_dir

    def test_list_table_and_json(self, tmp_path, capsys):
        cache_dir = self.seeded_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "list", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out and "digest" in out
        assert main(["cache", "list", "--cache-dir", cache_dir, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["root"] == cache_dir
        assert len(doc["entries"]) == 1
        assert doc["entries"][0]["episodes"] == 2

    def test_verify_clean_and_corrupt(self, tmp_path, capsys):
        cache_dir = self.seeded_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", cache_dir]) == 0
        assert "1 ok, 0 corrupt" in capsys.readouterr().out
        cache = CampaignCache(cache_dir)
        entry = cache.path(cache.keys()[0])
        with open(entry, "a") as handle:
            handle.write("{broken\n")
        assert main(["cache", "verify", "--cache-dir", cache_dir]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out and "0 ok, 1 corrupt" in out
        assert os.path.exists(entry)  # verify never deletes

    def test_gc_honours_keep_days(self, tmp_path, capsys):
        cache_dir = self.seeded_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", cache_dir,
                     "--keep-days", "30"]) == 0
        assert "removed 0 entries" in capsys.readouterr().out
        assert main(["cache", "gc", "--cache-dir", cache_dir,
                     "--keep-days", "0"]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert CampaignCache(cache_dir, create=False).keys() == []

    def test_gc_requires_keep_days(self, tmp_path, capsys):
        cache_dir = self.seeded_cache(tmp_path)
        assert main(["cache", "gc", "--cache-dir", cache_dir]) == 2
        assert "--keep-days" in capsys.readouterr().err

    def test_requires_a_cache_directory(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "list"]) == 2
        assert "REPRO_CACHE_DIR" in capsys.readouterr().err

    def test_env_cache_dir_is_honoured(self, tmp_path, monkeypatch, capsys):
        cache_dir = self.seeded_cache(tmp_path)
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        capsys.readouterr()
        assert main(["cache", "list"]) == 0
        assert "1 entries" in capsys.readouterr().out


class TestEnvironmentFailFast:
    def test_bad_cache_dir_env_names_variable_from_grid_command(
        self, tmp_path, monkeypatch, capsys
    ):
        bogus = tmp_path / "a-file"
        bogus.write_text("not a directory")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(bogus))
        # table4 has no --cache-dir guard of its own: the env default is
        # consulted deep inside run_campaign, and must still surface as a
        # clean exit-2 message naming the variable, not a traceback.
        assert main(["table4", "--reps", "1"]) == 2
        err = capsys.readouterr().err
        assert "REPRO_CACHE_DIR" in err and str(bogus) in err

    def test_bad_cache_dir_env_fails_campaign_command(
        self, tmp_path, monkeypatch, capsys
    ):
        bogus = tmp_path / "a-file"
        bogus.write_text("not a directory")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(bogus))
        assert main(["campaign", *GRID]) == 2
        assert "REPRO_CACHE_DIR" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["abc", "0", "-3", "1.5"])
    def test_bad_jobs_env_names_variable(self, value, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", value)
        assert main(["campaign", *GRID]) == 2
        err = capsys.readouterr().err
        assert "REPRO_JOBS" in err and value in err

    @pytest.mark.parametrize("text", ["5/4", "0/4", "4/0"])
    def test_out_of_range_shard_is_a_clean_argparse_error(self, text, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["campaign", "--shard", text])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--shard" in err and "shard" in err
        assert "Traceback" not in err


class TestReportBackendRouting:
    def test_report_flags_reach_report_config(self):
        args = build_parser().parse_args(
            ["report", "--backend", "in-process", "--workers", "3",
             "--workdir", "wd"]
        )
        from repro.cli import _report_config_from_args

        config = _report_config_from_args(args)
        assert config.backend == "in-process"
        assert config.workers == 3
        assert config.workdir == "wd"

    def test_report_campaign_routes_through_dispatch(self, tmp_path, monkeypatch):
        calls = {}

        def fake_dispatch(campaign, interventions, **kwargs):
            calls["backend"] = kwargs["backend"]
            calls["workers"] = kwargs["workers"]
            from repro.core.experiment import CampaignResult

            return CampaignResult(intervention=interventions.label(), results=[])

        import repro.core.scheduler as scheduler

        monkeypatch.setattr(scheduler, "dispatch_campaign", fake_dispatch)
        config = ReportConfig(backend="subprocess", workers=2)
        result = _run_report_campaign(
            config, grid_spec(), InterventionConfig(driver=True)
        )
        assert result.results == []
        assert calls == {"backend": "subprocess", "workers": 2}

    def test_report_without_backend_keeps_direct_path(self, monkeypatch):
        import repro.core.scheduler as scheduler

        def boom(*a, **k):
            raise AssertionError("dispatch_campaign must not be called")

        monkeypatch.setattr(scheduler, "dispatch_campaign", boom)
        config = ReportConfig()
        result = _run_report_campaign(
            config,
            CampaignSpec(
                fault_types=[FaultType.NONE],
                scenario_ids=("S1",),
                initial_gaps=(60.0,),
                repetitions=1,
                seed=3,
            ),
            InterventionConfig(),
        )
        assert len(result.results) == 1
