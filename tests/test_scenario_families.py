"""Scenario-family registry tests.

Covers the registry itself (registration, lookup, schemas), the golden
campaign digests that pin cache compatibility with the pre-registry code,
parameter validation at every layer (ParamSpec, ScenarioConfig,
CampaignSpec, CLI), the three extra workload families, and the report
integration (family sweep artifacts, labelled placeholders).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.incremental import IncrementalReportEngine
from repro.analysis.report import ReportConfig, build_family_artifact
from repro.attacks.campaign import CampaignSpec, enumerate_campaign
from repro.attacks.fi import FaultType
from repro.cli import main
from repro.core.cache import CampaignCache, campaign_digest, canonical_episode
from repro.core.experiment import run_campaign
from repro.safety.arbitration import InterventionConfig
from repro.sim.families import (
    ParamSpec,
    ScenarioFamily,
    UnknownScenarioError,
    family_catalog,
    get_family,
    param_token,
    register_family,
    registered_families,
    unregister_family,
)
from repro.sim.scenarios import SCENARIO_IDS, ScenarioConfig, build_scenario
from repro.sim.weather import FRICTION_CONDITIONS, FrictionCondition
from repro.sim.workloads import WORKLOAD_FAMILIES
from tests.conftest import episode


# --------------------------------------------------------------------- #
# Golden digests: the paper grid must stay byte-compatible
# --------------------------------------------------------------------- #

#: Campaign digests computed *before* the family-registry refactor
#: (fault-free, 10 repetitions, seed 2025, default interventions).  These
#: values key every user's existing result cache: a refactor that changes
#: any of them silently invalidates all cached campaigns.  Regenerate
#: only for an *intentional* identity change (and bump DIGEST_FORMAT).
GOLDEN_CELL_DIGESTS = {
    ("S1", 60): "580a5f88d6239f0c58d9b4668f8a3cd4675c3305834c6ff3f02bc52e35d10b00",
    ("S1", 230): "37604fa3eb3805b22568fac56047e2d35981078d38ae2e96aa3d42c2afcb1bc2",
    ("S2", 60): "44c28c976a6ac9f01d8dbf6afb5c5b8a3a91a753b253bea5fa26b4e527e4aeb9",
    ("S2", 230): "359a3a3033c12155d9d8539fc9c26daf3194676c99f54fbc00c922cecdb732fb",
    ("S3", 60): "788e8b216e7da684564bba5621b933607514a09652b280721f2f00e326badcba",
    ("S3", 230): "d850ff6b5d9ddb2043dc42bd3f1f4b807d008acd5e5de52e92f5c36019294669",
    ("S4", 60): "810ee1fcce5e0d0477383d33ff67f88f052deca41bb7ec9a0f5e6acedac1f15c",
    ("S4", 230): "999e5c3dc5d12b3e5dbc5043d54fa1367ced76aa3ce24db84e61dfc9461062d3",
    ("S5", 60): "15212621f5330bbab302c380e87159252c4932ae7067526886b425d86db9a1e4",
    ("S5", 230): "416e785d5f1dcb6d40568e938b410961c4768a3ff354c16ae8636d0e9795a82d",
    ("S6", 60): "dffcce1371db853a403bad5dc2bec702dd9b194e39a767b4d2fd0a9465a8a44e",
    ("S6", 230): "9b5e5337e79d3d23b462ed2080ba8e3ac8adb0a184efa0c80617f8a80c3a8b2e",
}

#: The two canonical full grids (same provenance as above).
GOLDEN_ATTACK_GRID = (
    "bb68eec72beeb3ca7a0cd168a2363fc83e365dee313e64545c840785e2eab587"
)
GOLDEN_FAULT_FREE_GRID = (
    "26323945134472bdf4768697ad11feb3b937867a78aa9a1cee6b65dbd0c7400f"
)

#: First episode seed of the attack grid (seed derivation pin).
GOLDEN_FIRST_SEED = 12594071752222980532


class TestGoldenDigests:
    def test_per_cell_digests_unchanged(self):
        cfg = InterventionConfig()
        for (sid, gap), expected in GOLDEN_CELL_DIGESTS.items():
            spec = CampaignSpec(
                fault_types=[FaultType.NONE],
                scenario_ids=[sid],
                initial_gaps=[float(gap)],
                repetitions=10,
                seed=2025,
            )
            assert campaign_digest(spec, cfg) == expected, (sid, gap)

    def test_full_grid_digests_unchanged(self):
        cfg = InterventionConfig()
        attack = CampaignSpec(repetitions=10, seed=2025)
        assert campaign_digest(attack, cfg) == GOLDEN_ATTACK_GRID
        benign = CampaignSpec(
            fault_types=[FaultType.NONE], repetitions=10, seed=2025
        )
        assert campaign_digest(benign, cfg) == GOLDEN_FAULT_FREE_GRID

    def test_seed_derivation_unchanged(self):
        episodes = enumerate_campaign(CampaignSpec(repetitions=10, seed=2025))
        assert len(episodes) == 360
        assert episodes[0].seed == GOLDEN_FIRST_SEED

    def test_paper_episode_canonical_form_has_no_params_key(self):
        # Pre-registry cache payloads had exactly these six keys; a new
        # key on paper episodes would change every digest above.
        form = canonical_episode(episode())
        assert set(form) == {
            "scenario_id",
            "initial_gap",
            "fault_type",
            "repetition",
            "seed",
            "friction",
        }

    def test_paper_labels_unchanged(self):
        spec = enumerate_campaign(CampaignSpec(repetitions=1, seed=2025))[0]
        assert spec.label() == "S1/gap=60/relative_distance/rep=0"


# --------------------------------------------------------------------- #
# The registry
# --------------------------------------------------------------------- #


class TestRegistry:
    def test_paper_families_registered(self):
        assert set(SCENARIO_IDS) <= set(registered_families())

    def test_workload_families_registered(self):
        ids = registered_families()
        for family in WORKLOAD_FAMILIES:
            assert family.family_id in ids

    def test_unknown_family_error_names_registered(self):
        with pytest.raises(UnknownScenarioError) as excinfo:
            get_family("S99")
        message = str(excinfo.value)
        assert "S99" in message
        for fid in ("S1", "friction-sweep", "curved-road", "dense-traffic"):
            assert fid in message

    def test_unknown_scenario_error_is_value_error(self):
        with pytest.raises(ValueError):
            get_family("nope")

    def test_duplicate_registration_rejected(self):
        family = get_family("S1")
        with pytest.raises(ValueError, match="already registered"):
            register_family(family)

    def test_register_and_unregister_custom_family(self):
        class MiniFamily(ScenarioFamily):
            family_id = "mini-test"
            title = "registry round-trip probe"
            params = (ParamSpec("x", kind="float", default=1.0),)

            def build(self, config):  # pragma: no cover - never built
                raise AssertionError

        register_family(MiniFamily())
        try:
            assert get_family("mini-test").title == "registry round-trip probe"
            assert "mini-test" in registered_families()
        finally:
            unregister_family("mini-test")
        assert "mini-test" not in registered_families()

    def test_catalog_schema_round_trips_through_json(self):
        catalog = json.loads(json.dumps(family_catalog()))
        ids = [entry["id"] for entry in catalog]
        assert ids == list(registered_families())
        for entry in catalog:
            family = get_family(entry["id"])
            assert [p["name"] for p in entry["params"]] == [
                p.name for p in family.params
            ]

    def test_family_id_validation(self):
        with pytest.raises(ValueError, match="family_id"):
            ScenarioFamily(family_id="bad/id")
        with pytest.raises(ValueError, match="family_id"):
            ScenarioFamily(family_id="")


class TestParamSpec:
    def test_float_coerces_int(self):
        spec = ParamSpec("x", kind="float", default=1.0)
        assert spec.validate(2) == 2.0
        assert isinstance(spec.validate(2), float)

    def test_bounds_enforced(self):
        spec = ParamSpec("x", kind="float", default=0.5, minimum=0.1, maximum=1.0)
        with pytest.raises(ValueError, match=">= 0.1"):
            spec.validate(0.01)
        with pytest.raises(ValueError, match="<= 1.0"):
            spec.validate(1.5)

    def test_int_rejects_float_and_bool(self):
        spec = ParamSpec("n", kind="int", default=2)
        with pytest.raises(ValueError):
            spec.validate(2.5)
        with pytest.raises(ValueError):
            spec.validate(True)

    def test_choices_enforced(self):
        spec = ParamSpec("d", kind="str", default="left", choices=("left", "right"))
        assert spec.validate("right") == "right"
        with pytest.raises(ValueError, match="one of"):
            spec.validate("up")

    def test_parse_from_cli_text(self):
        assert ParamSpec("x", kind="float", default=1.0).parse("0.25") == 0.25
        assert ParamSpec("n", kind="int", default=1).parse("4") == 4
        with pytest.raises(ValueError):
            ParamSpec("n", kind="int", default=1).parse("4.5")

    def test_invalid_default_rejected(self):
        with pytest.raises(ValueError):
            ParamSpec("x", kind="float", default=5.0, maximum=1.0)

    def test_nan_and_inf_rejected_for_float_axes(self):
        spec = ParamSpec("x", kind="float", default=0.5, minimum=0.1, maximum=1.0)
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="finite"):
                spec.validate(bad)
        with pytest.raises(ValueError, match="finite"):
            spec.parse("nan")

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ParamSpec("x", kind="complex", default=1.0)


# --------------------------------------------------------------------- #
# ScenarioConfig validation (incl. the friction bugfix)
# --------------------------------------------------------------------- #


class TestScenarioConfigValidation:
    def test_friction_preset_accepted(self):
        cfg = ScenarioConfig(friction=FRICTION_CONDITIONS["75% off"])
        assert cfg.friction.mu == 0.25

    def test_arbitrary_friction_object_rejected(self):
        with pytest.raises(ValueError, match="FrictionCondition"):
            ScenarioConfig(friction=0.5)
        with pytest.raises(ValueError, match="FrictionCondition"):
            ScenarioConfig(friction={"name": "icy", "mu": 0.25})
        with pytest.raises(ValueError, match="FrictionCondition"):
            ScenarioConfig(friction="icy")

    def test_out_of_range_mu_rejected(self):
        # Bypass FrictionCondition's own validation the way a stale pickle
        # or a crafted subclass could.
        bad = FrictionCondition.__new__(FrictionCondition)
        object.__setattr__(bad, "name", "impossible")
        object.__setattr__(bad, "mu", 3.0)
        with pytest.raises(ValueError, match="mu"):
            ScenarioConfig(friction=bad)

    def test_unknown_scenario_rejected_with_families_named(self):
        with pytest.raises(UnknownScenarioError, match="registered scenario families"):
            ScenarioConfig(scenario_id="S7")

    def test_params_resolved_to_full_canonical_tuple(self):
        cfg = ScenarioConfig(scenario_id="friction-sweep", params={"mu": 0.25})
        assert cfg.params == (("mu", 0.25), ("lead_mph", 30.0))

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="declares no parameter"):
            ScenarioConfig(scenario_id="friction-sweep", params={"grip": 0.5})

    def test_params_rejected_for_parameter_free_family(self):
        with pytest.raises(ValueError, match="declares no parameter"):
            ScenarioConfig(scenario_id="S1", params={"mu": 0.5})

    def test_nan_initial_gap_rejected(self):
        with pytest.raises(ValueError, match="initial_gap"):
            ScenarioConfig(initial_gap=float("nan"))
        with pytest.raises(ValueError, match="initial_gaps"):
            CampaignSpec(initial_gaps=[float("nan")])


# --------------------------------------------------------------------- #
# Campaign enumeration with parameter sweeps
# --------------------------------------------------------------------- #


class TestCampaignSweeps:
    def _spec(self, **kwargs):
        defaults = dict(
            fault_types=[FaultType.RELATIVE_DISTANCE],
            scenario_ids=["friction-sweep"],
            initial_gaps=[60.0],
            repetitions=2,
            seed=7,
        )
        defaults.update(kwargs)
        return CampaignSpec(**defaults)

    def test_sweep_enumerates_cartesian_product(self):
        spec = self._spec(param_axes={"mu": (0.75, 0.25), "lead_mph": (30.0, 40.0)})
        episodes = enumerate_campaign(spec)
        assert len(episodes) == 2 * 2 * 2  # mu x lead_mph x reps
        points = {e.params for e in episodes}
        assert points == {
            (("mu", 0.75), ("lead_mph", 30.0)),
            (("mu", 0.75), ("lead_mph", 40.0)),
            (("mu", 0.25), ("lead_mph", 30.0)),
            (("mu", 0.25), ("lead_mph", 40.0)),
        }

    def test_sweep_seeds_distinct_per_point(self):
        episodes = enumerate_campaign(self._spec(param_axes={"mu": (0.75, 0.25)}))
        assert len({e.seed for e in episodes}) == len(episodes)

    def test_label_carries_sweep_point(self):
        spec = self._spec(param_axes={"mu": (0.25,)}, repetitions=1)
        (ep,) = enumerate_campaign(spec)
        assert ep.label() == (
            "friction-sweep/gap=60/mu=0.25,lead_mph=30.0/relative_distance/rep=0"
        )

    def test_default_params_materialised_without_axes(self):
        (ep,) = enumerate_campaign(self._spec(repetitions=1))
        assert ep.params == (("mu", 0.5), ("lead_mph", 30.0))

    def test_axis_order_normalised_to_declaration_order(self):
        a = self._spec(param_axes={"lead_mph": (30.0,), "mu": (0.25,)})
        b = self._spec(param_axes={"mu": (0.25,), "lead_mph": (30.0,)})
        assert a.param_axes == b.param_axes
        assert campaign_digest(a, InterventionConfig()) == campaign_digest(
            b, InterventionConfig()
        )

    def test_sweep_points_digest_distinctly(self):
        cfg = InterventionConfig()
        a = campaign_digest(self._spec(param_axes={"mu": (0.75,)}), cfg)
        b = campaign_digest(self._spec(param_axes={"mu": (0.5,)}), cfg)
        assert a != b

    def test_axes_require_single_family(self):
        with pytest.raises(ValueError, match="exactly one"):
            self._spec(
                scenario_ids=["friction-sweep", "S1"], param_axes={"mu": (0.5,)}
            )

    def test_undeclared_axis_rejected(self):
        with pytest.raises(ValueError, match="declares no parameter"):
            self._spec(param_axes={"grip": (0.5,)})

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            self._spec(param_axes={"mu": (0.5, 0.5)})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            self._spec(param_axes={"mu": ()})

    def test_unknown_scenario_in_campaign_names_families(self):
        with pytest.raises(UnknownScenarioError, match="registered scenario families"):
            CampaignSpec(scenario_ids=["S1", "bogus"])

    def test_sharding_covers_sweeps(self):
        from repro.attacks.campaign import ShardSpec

        spec = self._spec(param_axes={"mu": (0.75, 0.5, 0.25)})
        full = enumerate_campaign(spec)
        pieces = [
            enumerate_campaign(spec, shard=ShardSpec(i, 3)) for i in (1, 2, 3)
        ]
        assert [e for piece in pieces for e in piece] == full


# --------------------------------------------------------------------- #
# The workload families build correctly and deterministically
# --------------------------------------------------------------------- #


def world_fingerprint(world):
    """Everything construction determines: road, friction, actors."""
    return (
        world.road.length,
        tuple((s.length, s.curvature) for s in world.road.segments),
        world.friction.name,
        world.friction.mu,
        tuple(
            (
                b.actor.name,
                b.actor.s,
                b.actor.d,
                b.actor.speed,
                type(b.behavior).__name__,
            )
            for b in world.agents
        ),
    )


class TestWorkloadFamilies:
    def test_friction_sweep_applies_mu(self):
        world = build_scenario(
            ScenarioConfig(scenario_id="friction-sweep", seed=1, params={"mu": 0.25})
        )
        assert world.friction.mu == 0.25
        assert [a.name for a in world.actors] == ["LV"]

    def test_friction_sweep_campaign_friction_overrides_mu_param(self):
        world = build_scenario(
            ScenarioConfig(
                scenario_id="friction-sweep",
                seed=1,
                params={"mu": 0.25},
                friction=FRICTION_CONDITIONS["default"],
            )
        )
        assert world.friction.mu == 1.0

    def test_curved_road_geometry(self):
        world = build_scenario(
            ScenarioConfig(
                scenario_id="curved-road",
                seed=1,
                params={"curve_radius": 100.0, "direction": "right"},
            )
        )
        curvatures = [s.curvature for s in world.road.segments]
        assert curvatures[0] == 0.0
        assert curvatures[1] == pytest.approx(-1.0 / 100.0)
        # Long enough that a full episode never runs off the end.
        assert world.road.length > 3000.0

    def test_curved_road_left_is_positive_curvature(self):
        world = build_scenario(
            ScenarioConfig(scenario_id="curved-road", seed=1)
        )
        assert world.road.segments[1].curvature > 0.0

    def test_dense_traffic_actor_count(self):
        for n in (2, 5):
            world = build_scenario(
                ScenarioConfig(
                    scenario_id="dense-traffic", seed=1, params={"n_vehicles": n}
                )
            )
            in_lane = [a for a in world.actors if a.name.startswith("T")]
            assert len(in_lane) == n
            cut_ins = [a for a in world.actors if a.name == "CutIn"]
            assert len(cut_ins) == (1 if n >= 3 else 0)

    def test_dense_traffic_mixed_behaviors(self):
        world = build_scenario(
            ScenarioConfig(
                scenario_id="dense-traffic", seed=1, params={"n_vehicles": 4}
            )
        )
        behaviors = {type(b.behavior).__name__ for b in world.agents}
        assert {"SuddenStopBehavior", "SpeedChangeBehavior", "CruiseBehavior",
                "CutInBehavior"} <= behaviors

    def test_initial_gap_respected_without_jitter(self):
        for fid in ("friction-sweep", "curved-road", "dense-traffic"):
            world = build_scenario(
                ScenarioConfig(
                    scenario_id=fid, initial_gap=80.0, seed=1, jitter=False
                )
            )
            assert world.lead_gap() == pytest.approx(80.0, abs=0.5)

    def test_jitter_varies_and_is_seeded(self):
        for fid in ("friction-sweep", "curved-road", "dense-traffic"):
            gap = lambda seed: build_scenario(
                ScenarioConfig(scenario_id=fid, seed=seed)
            ).lead_gap()
            assert gap(1) != gap(2)
            assert gap(5) == gap(5)


def _family_params_strategy(family):
    """Draw a valid parameter assignment for ``family`` from its schema."""
    parts = {}
    for spec in family.params:
        if spec.choices is not None:
            parts[spec.name] = st.sampled_from(spec.choices)
        elif spec.kind == "float":
            parts[spec.name] = st.floats(
                min_value=spec.minimum,
                max_value=spec.maximum,
                allow_nan=False,
                allow_infinity=False,
            )
        elif spec.kind == "int":
            parts[spec.name] = st.integers(
                min_value=int(spec.minimum), max_value=int(spec.maximum)
            )
        else:  # pragma: no cover - no unconstrained str axes declared
            parts[spec.name] = st.text(max_size=8)
    return st.fixed_dictionaries(parts)


@st.composite
def _family_and_params(draw):
    fid = draw(st.sampled_from(sorted(registered_families())))
    family = get_family(fid)
    params = draw(_family_params_strategy(family))
    return fid, params


class TestBuildDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(_family_and_params(), st.integers(min_value=0, max_value=2**32 - 1))
    def test_any_registered_family_builds_deterministically(self, fam, seed):
        fid, params = fam
        config = ScenarioConfig(scenario_id=fid, seed=seed, params=params)
        assert world_fingerprint(build_scenario(config)) == world_fingerprint(
            build_scenario(config)
        )

    @settings(max_examples=15, deadline=None)
    @given(_family_and_params())
    def test_resolve_params_is_idempotent(self, fam):
        fid, params = fam
        family = get_family(fid)
        once = family.resolve_params(params)
        assert family.resolve_params(once) == once
        assert family.resolve_params(dict(once)) == once


# --------------------------------------------------------------------- #
# Execution-layer integration (cache, resume) for a workload family
# --------------------------------------------------------------------- #


class TestWorkloadExecution:
    def test_family_campaign_caches_and_resumes(self, tmp_path):
        spec = CampaignSpec(
            fault_types=[FaultType.RELATIVE_DISTANCE],
            scenario_ids=["dense-traffic"],
            initial_gaps=[60.0],
            repetitions=1,
            seed=7,
            param_axes={"n_vehicles": (2, 3)},
        )
        cfg = InterventionConfig(driver=True)
        cache = CampaignCache(tmp_path / "cache")
        first = run_campaign(spec, cfg, cache=cache, max_steps=300)
        assert len(first.results) == 2
        # Cache hit: identical results without re-execution.
        again = run_campaign(spec, cfg, cache=cache, max_steps=300)
        assert [r.to_dict() for r in again.results] == [
            r.to_dict() for r in first.results
        ]
        # Resume from scratch reproduces the same records.
        resumed = run_campaign(
            spec,
            cfg,
            cache=False,
            resume_path=tmp_path / "resume.jsonl",
            max_steps=300,
        )
        assert [r.to_dict() for r in resumed.results] == [
            r.to_dict() for r in first.results
        ]


# --------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------- #


class TestCli:
    def test_scenarios_list_json_round_trips(self, capsys):
        assert main(["scenarios", "list", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == 1
        ids = [f["id"] for f in doc["families"]]
        assert ids == list(registered_families())
        for entry in doc["families"]:
            family = get_family(entry["id"])
            for param in entry["params"]:
                spec = family.param_spec(param["name"])
                assert spec.kind == param["kind"]
                assert spec.default == param["default"]

    def test_scenarios_list_text_mentions_params(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "friction-sweep" in out
        assert "--scenario-param mu=" in out

    def test_campaign_unknown_scenario_exits_cleanly(self, capsys):
        assert main(["campaign", "--scenario", "S9", "--reps", "1"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario 'S9'" in err
        assert "registered scenario families" in err

    def test_episode_unknown_scenario_exits_cleanly(self, capsys):
        assert main(["episode", "--scenario", "S9"]) == 2
        assert "registered scenario families" in capsys.readouterr().err

    def test_report_status_unknown_family_exits_cleanly(self, capsys):
        assert main(["report-status", "--family", "bogus"]) == 2
        assert "registered scenario families" in capsys.readouterr().err

    def test_campaign_param_sweep_runs(self, tmp_path, capsys):
        out = tmp_path / "fam.jsonl"
        code = main(
            [
                "campaign",
                "--scenario", "friction-sweep",
                "--scenario-param", "mu=0.5,0.25",
                "--fault", "relative_distance",
                "--reps", "1",
                "--seed", "7",
                "--max-steps", "200",
                "-o", str(out),
            ]
        )
        assert code == 0
        lines = [l for l in out.read_text().splitlines() if l.strip()]
        assert len(lines) == 2  # two mu points x 1 gap x 1 rep

    def test_campaign_param_requires_single_family(self, capsys):
        code = main(
            ["campaign", "--scenario-param", "mu=0.5", "--reps", "1"]
        )
        assert code == 2
        assert "exactly one family" in capsys.readouterr().err

    def test_campaign_undeclared_param_exits_cleanly(self, capsys):
        code = main(
            [
                "campaign",
                "--scenario", "S1",
                "--scenario-param", "mu=0.5",
                "--reps", "1",
            ]
        )
        assert code == 2
        assert "declares no parameter" in capsys.readouterr().err

    def test_campaign_nan_param_exits_cleanly(self, capsys):
        code = main(
            [
                "campaign",
                "--scenario", "curved-road",
                "--scenario-param", "curve_radius=nan",
                "--reps", "1",
            ]
        )
        assert code == 2
        assert "finite" in capsys.readouterr().err

    def test_repeated_family_flag_deduplicated(self, capsys):
        code = main(
            [
                "report-status",
                "--family", "friction-sweep",
                "--family", "friction-sweep",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("family-friction-sweep") == 1


# --------------------------------------------------------------------- #
# Report integration: family sweep artifacts
# --------------------------------------------------------------------- #


class TestReportFamilies:
    def test_family_artifact_declares_one_arm_per_sweep_point(self):
        config = ReportConfig(repetitions=1, seed=7)
        artifact = build_family_artifact(config, "friction-sweep")
        assert artifact.artifact_id == "family-friction-sweep"
        assert [arm.name for arm in artifact.arms] == [
            "friction-sweep:mu=0.75",
            "friction-sweep:mu=0.5",
            "friction-sweep:mu=0.25",
        ]

    def test_family_placeholders_label_sweep_points(self, tmp_path):
        config = ReportConfig(
            repetitions=1,
            seed=7,
            extra_families=("dense-traffic",),
            cache_dir=str(tmp_path / "cache"),
        )
        engine = IncrementalReportEngine(config)
        outcome = engine.run(incremental=True)
        (family_outcome,) = [
            o
            for o in outcome.artifacts
            if o.artifact.artifact_id == "family-dense-traffic"
        ]
        assert family_outcome.state == "pending"
        assert "dense-traffic:n_vehicles=2" in family_outcome.body

    def test_param_token_formatting(self):
        assert param_token((("mu", 0.5), ("lead_mph", 30.0))) == "mu=0.5,lead_mph=30.0"
        assert param_token(()) == ""
