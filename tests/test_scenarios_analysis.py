"""Tests for scenario construction and the analysis layer."""

import pytest

from repro.analysis.figures import fig6_series, speed_drop
from repro.analysis.render import ascii_plot, format_table
from repro.analysis.tables import (
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
    table4_driving_performance,
    table5_lane_distance,
    table6_row,
    table7_reaction_sweep,
    table8_friction_sweep,
)
from repro.attacks.campaign import CampaignSpec
from repro.attacks.fi import FaultType
from repro.core.experiment import CampaignResult, run_campaign
from repro.core.metrics import EpisodeResult
from repro.core.hazards import AccidentType
from repro.safety.arbitration import InterventionConfig
from repro.sim.scenarios import (
    EGO_SPEED,
    INITIAL_GAPS,
    SCENARIO_IDS,
    ScenarioConfig,
    build_scenario,
    scenario_catalog,
)
from repro.utils.units import mph_to_ms


class TestScenarioConstruction:
    def test_all_scenarios_build(self):
        for sid in SCENARIO_IDS:
            world = build_scenario(ScenarioConfig(scenario_id=sid, seed=1))
            assert world.ego.speed == pytest.approx(EGO_SPEED)
            assert world.agents  # at least one traffic actor

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(scenario_id="S7")

    def test_initial_gap_respected(self):
        for gap in INITIAL_GAPS:
            world = build_scenario(
                ScenarioConfig(scenario_id="S1", initial_gap=gap, seed=1, jitter=False)
            )
            measured = world.lead_gap()
            assert measured == pytest.approx(gap, abs=0.5)

    def test_s5_has_cut_in_vehicle(self):
        world = build_scenario(ScenarioConfig(scenario_id="S5", seed=1))
        names = [a.actor.name for a in world.agents]
        assert "CutIn" in names

    def test_s6_has_two_leads(self):
        world = build_scenario(ScenarioConfig(scenario_id="S6", seed=1))
        assert len(world.agents) == 2

    def test_s3_lead_starts_faster(self):
        world = build_scenario(ScenarioConfig(scenario_id="S3", seed=1, jitter=False))
        assert world.actors[0].speed == pytest.approx(mph_to_ms(40.0), abs=0.01)

    def test_jitter_varies_with_seed(self):
        a = build_scenario(ScenarioConfig(scenario_id="S1", seed=1)).lead_gap()
        b = build_scenario(ScenarioConfig(scenario_id="S1", seed=2)).lead_gap()
        assert a != b

    def test_jitter_deterministic_per_seed(self):
        a = build_scenario(ScenarioConfig(scenario_id="S1", seed=5)).lead_gap()
        b = build_scenario(ScenarioConfig(scenario_id="S1", seed=5)).lead_gap()
        assert a == b

    def test_catalog_covers_all(self):
        assert [c.scenario_id for c in scenario_catalog()] == list(SCENARIO_IDS)


class TestRender:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", None]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text
        assert "-" in lines[-1]

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_ascii_plot_skips_nan(self):
        text = ascii_plot([0, 1, 2], [1.0, float("nan"), 3.0], label="x")
        assert "x" in text
        assert "*" in text

    def test_ascii_plot_empty(self):
        assert "(no data)" in ascii_plot([], [], label="y")


@pytest.fixture(scope="module")
def small_fault_free_campaign():
    spec = CampaignSpec(
        fault_types=[FaultType.NONE],
        scenario_ids=["S1", "S4"],
        initial_gaps=[60.0],
        repetitions=2,
        seed=9,
    )
    return run_campaign(spec, InterventionConfig(), max_steps=6000)


class TestTables:
    def test_table4_rows(self, small_fault_free_campaign):
        rows = table4_driving_performance(small_fault_free_campaign)
        ids = [r.scenario_id for r in rows]
        assert ids == ["S1", "S4"]
        assert all(r.episodes == 2 for r in rows)
        text = render_table4(rows)
        assert "Table IV" in text

    def test_table5(self, small_fault_free_campaign):
        distances = table5_lane_distance(small_fault_free_campaign)
        assert set(distances) == {"S1", "S4"}
        assert "Table V" in render_table5(distances)

    def test_table6_row_requires_results(self):
        with pytest.raises(ValueError):
            table6_row([], "none")

    def test_table6_render(self):
        r = EpisodeResult(fault_type="relative_distance")
        r.attack_activated = True
        r.accident = AccidentType.A1
        row = table6_row([r], "none")
        assert row.a1_pct == 100.0
        assert "Table VI" in render_table6([row])

    def test_table7_shape(self):
        r = EpisodeResult(fault_type="mixed")
        r.attack_activated = True
        campaign = CampaignResult("driver", [r])
        table = table7_reaction_sweep({1.0: campaign, 2.5: campaign})
        assert set(table) == {"mixed"}
        assert set(table["mixed"]) == {1.0, 2.5}
        assert "Table VII" in render_table7(table)

    def test_table8_shape(self):
        r = EpisodeResult(fault_type="relative_distance")
        r.attack_activated = True
        campaign = CampaignResult("x", [r])
        table = table8_friction_sweep({"default": campaign, "75% off": campaign})
        assert "Table VIII" in render_table8(table)


class TestFigures:
    def test_fig6_trace_shows_attack_cascade(self):
        series = fig6_series(seed=42, max_steps=6000)
        assert series.result.attack_activated
        # perceived RD diverges above the true gap while the attack is on
        diverged = any(
            p - t > 5.0
            for p, t in zip(series.trace.perceived_rd, series.trace.true_gap)
            if p == p and t == t
        )
        assert diverged
        csv = series.to_csv()
        assert csv.splitlines()[0].startswith("time,")

    def test_speed_drop_helper(self):
        series = fig6_series(seed=42, max_steps=6000)
        assert speed_drop(series) >= 0.0
