"""Batch (vectorized lockstep) executor tests.

The contract under test is the one the golden-digest suite cannot see:
``executor="batch"`` must produce byte-identical episode results — and
therefore identical aggregate metrics — to the serial reference for
every registered scenario family, every fault mode, and any lane width,
while :func:`resolve_executor` keeps the name-based selection honest.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.campaign import CampaignSpec, enumerate_campaign
from repro.attacks.fi import FaultType
from repro.core.executor import (
    EXECUTOR_NAMES,
    BatchExecutor,
    BatchParallelExecutor,
    EpisodeTask,
    ParallelExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.core.experiment import run_campaign
from repro.core.metrics import aggregate
from repro.ml.lstm import LstmNetwork
from repro.ml.mitigation import MitigationController, MitigationFactory
from repro.ml.trainer import TrainedBaseline
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig
from repro.sim.families import registered_families

#: The widest intervention stack: driver + safety check + independent
#: AEB exercises every sensor corridor the batch engine pre-computes
#: (default, radar, human) plus the perception/curvature cache.
FULL_CFG = InterventionConfig(
    driver=True, safety_check=True, aeb=AebsConfig.INDEPENDENT
)


def _family_spec(family, fault, seed, repetitions=2):
    return CampaignSpec(
        scenario_ids=(family,),
        fault_types=[fault],
        initial_gaps=(60.0,),
        repetitions=repetitions,
        seed=seed,
    )


def _run_pair(spec, cfg, max_steps):
    serial = run_campaign(
        spec, cfg, executor="serial", cache=False, max_steps=max_steps
    )
    batch = run_campaign(
        spec, cfg, executor="batch", cache=False, max_steps=max_steps
    )
    return serial, batch


class TestBatchSerialEquivalence:
    @pytest.mark.parametrize("family", registered_families())
    def test_every_registered_family_bit_identical(self, family):
        spec = _family_spec(family, FaultType.DESIRED_CURVATURE, seed=404)
        serial, batch = _run_pair(spec, FULL_CFG, max_steps=400)
        assert batch.results == serial.results
        assert batch.intervention == serial.intervention

    @settings(max_examples=8, deadline=None)
    @given(
        family=st.sampled_from(registered_families()),
        fault=st.sampled_from(
            [FaultType.NONE, FaultType.RELATIVE_DISTANCE, FaultType.MIXED]
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_batch_metrics_equal_serial_property(self, family, fault, seed):
        spec = _family_spec(family, fault, seed)
        serial, batch = _run_pair(spec, FULL_CFG, max_steps=300)
        assert batch.results == serial.results
        assert aggregate(batch.results) == aggregate(serial.results)

    def test_lane_chunking_preserves_results_and_order(self):
        spec = CampaignSpec(
            scenario_ids=("S1", "S4"),
            fault_types=[FaultType.RELATIVE_DISTANCE],
            initial_gaps=(60.0,),
            repetitions=2,
            seed=99,
        )
        serial = run_campaign(
            spec, FULL_CFG, executor="serial", cache=False, max_steps=500
        )
        # 4 episodes through uneven lane widths: 1 (degenerate serial-like
        # lockstep), 3 (uneven final chunk), 100 (single wide chunk).
        for lanes in (1, 3, 100):
            batch = run_campaign(
                spec,
                FULL_CFG,
                executor=BatchExecutor(lanes=lanes),
                cache=False,
                max_steps=500,
            )
            assert batch.results == serial.results, lanes

    def test_mid_batch_finish_and_rng_draw_order(self):
        # RD-attacked baseline: the S4 lanes crash (A1) hundreds of steps
        # before the S1 lanes reach max_steps, so lanes retire mid-batch
        # and the survivors' active-set key changes; the attack also
        # walks the lead through the perception blind range, so per-lane
        # RNG consumption alternates between 5-draw (valid-lead) and
        # 3-draw steps.  Neither may disturb bit-identity at any chunk
        # width: 1 (a boundary every lane), width-1 (uneven final chunk),
        # or unbounded (all finish-orders interleaved in one batch).
        spec = CampaignSpec(
            scenario_ids=("S1", "S4"),
            fault_types=[FaultType.RELATIVE_DISTANCE],
            initial_gaps=(60.0,),
            repetitions=2,
            seed=99,
        )
        serial = run_campaign(
            spec, InterventionConfig(), executor="serial", cache=False, max_steps=600
        )
        steps = [r.steps for r in serial.results]
        # Precondition: lanes genuinely finish at different steps.
        assert len(set(steps)) > 1, steps
        assert any(r.accident is not None for r in serial.results)
        for lanes in (1, len(steps) - 1, None):
            batch = run_campaign(
                spec,
                InterventionConfig(),
                executor=BatchExecutor(lanes=lanes),
                cache=False,
                max_steps=600,
            )
            assert batch.results == serial.results, lanes

    def test_minimal_config_also_identical(self):
        # No driver, no AEB: the no-intervention arm takes different
        # sensor paths (no radar/human corridors registered).
        spec = _family_spec("S2", FaultType.NONE, seed=7, repetitions=2)
        serial, batch = _run_pair(spec, InterventionConfig(), max_steps=400)
        assert batch.results == serial.results

    def test_hazard_heavy_equivalence_bit_identical(self):
        # Short initial gaps + an RD attack: H1 marks early, S4 lanes
        # crash (A1) — the masked hazard screen flags lanes step after
        # step instead of staying quiet, so the scalar-fallback half of
        # the screen is what this pins against serial.
        spec = CampaignSpec(
            scenario_ids=("S3", "S4"),
            fault_types=[FaultType.RELATIVE_DISTANCE],
            initial_gaps=(15.0,),
            repetitions=2,
            seed=1234,
        )
        serial, batch = _run_pair(spec, FULL_CFG, max_steps=500)
        # Preconditions: the campaign is genuinely hazard-heavy.
        assert any(r.h1 for r in serial.results)
        assert any(r.accident is not None for r in serial.results)
        assert batch.results == serial.results

    def test_cut_in_heavy_equivalence_bit_identical(self):
        # dense-traffic platoons carry an adjacent-lane CutInBehavior
        # merger and S5 is the paper's cut-in scenario: adjacent-lane
        # agents with lateral motion keep the vectorized cut-in screen
        # flagging lanes into the scalar first-match scan, with the
        # driver model consuming the presence bit every step.
        spec = CampaignSpec(
            scenario_ids=("dense-traffic", "S5"),
            fault_types=[FaultType.MIXED],
            initial_gaps=(40.0,),
            repetitions=2,
            seed=77,
        )
        serial, batch = _run_pair(spec, FULL_CFG, max_steps=500)
        assert batch.results == serial.results
        assert aggregate(batch.results) == aggregate(serial.results)


class TestPhaseProfile:
    def test_profiled_runs_identical_and_accumulate(self):
        from repro.core.executor import PhaseProfile

        spec = _family_spec("S4", FaultType.RELATIVE_DISTANCE, seed=11)
        serial = run_campaign(
            spec, FULL_CFG, executor="serial", cache=False, max_steps=300
        )
        for make in (
            lambda p: SerialExecutor(profile=p),
            lambda p: BatchExecutor(profile=p),
        ):
            profile = PhaseProfile()
            profiled = run_campaign(
                spec,
                FULL_CFG,
                executor=make(profile),
                cache=False,
                max_steps=300,
            )
            assert profiled.results == serial.results
            assert profile.steps == sum(r.steps for r in serial.results)
            assert profile.control_s > 0.0
            assert profile.dynamics_s > 0.0
            assert profile.post_s >= 0.0
            assert profile.total_s == pytest.approx(
                profile.control_s + profile.dynamics_s + profile.post_s
            )
            assert set(profile.as_dict()) == {
                "control_s",
                "dynamics_s",
                "post_s",
                "steps",
            }


class TestBatchExecutorConstruction:
    def test_rejects_nonpositive_lanes(self):
        with pytest.raises(ValueError, match="lanes"):
            BatchExecutor(lanes=0)
        with pytest.raises(ValueError, match="lanes"):
            BatchExecutor(lanes=-4)

    def test_default_lanes_unbounded(self):
        assert BatchExecutor().lanes is None
        assert BatchExecutor(lanes=8).lanes == 8


class TestResolveExecutor:
    def test_names_resolve_to_backends(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("parallel", jobs=2), ParallelExecutor)
        assert isinstance(resolve_executor("batch"), BatchExecutor)

    def test_none_defers_to_jobs(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor(None, jobs=3), ParallelExecutor)

    def test_instance_passes_through(self):
        backend = BatchExecutor(lanes=4)
        assert resolve_executor(backend) is backend

    def test_unknown_name_lists_valid_names(self):
        with pytest.raises(ValueError, match="serial.*parallel.*batch"):
            resolve_executor("warp")

    def test_names_registry(self):
        assert EXECUTOR_NAMES == ("serial", "parallel", "batch")

    def test_batch_with_jobs_routes_to_hybrid(self):
        backend = resolve_executor("batch", jobs=3, lanes=8)
        assert isinstance(backend, BatchParallelExecutor)
        assert backend.jobs == 3
        assert backend.lanes == 8

    def test_batch_with_one_job_stays_single_process(self):
        assert isinstance(resolve_executor("batch", jobs=1), BatchExecutor)
        assert isinstance(resolve_executor("batch"), BatchExecutor)

    def test_batch_jobs_honours_repro_jobs_env(self, monkeypatch):
        # The historical footgun: REPRO_JOBS silently ignored by
        # --executor batch.  It must route to the hybrid now.
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert isinstance(resolve_executor("batch"), BatchParallelExecutor)

    def test_profile_with_batch_jobs_refused_naming_both_flags(self):
        from repro.core.executor import PhaseProfile

        with pytest.raises(ValueError, match=r"--profile.*--jobs"):
            resolve_executor("batch", jobs=2, profile=PhaseProfile())
        # jobs=1 keeps profiling supported (in-process batch).
        backend = resolve_executor("batch", jobs=1, profile=PhaseProfile())
        assert isinstance(backend, BatchExecutor)
        assert backend.profile is not None


def synthetic_ml_factory(seed=7, hidden=(8, 6), token="test:synthetic"):
    """A deterministic untrained-weights factory: predictions are
    arbitrary (large CUSUM deltas → the recovery path actually runs),
    construction is instant, and the bit-identity contract does not care
    about predictive quality."""
    baseline = TrainedBaseline(
        network=LstmNetwork(
            input_size=6, hidden_sizes=hidden, output_size=2, seed=seed
        ),
        feature_mean=np.array([20.0, 60.0, 0.9, 0.9, 0.0, 0.0]),
        feature_std=np.array([5.0, 30.0, 0.5, 0.5, 1.0, 0.1]),
        target_mean=np.array([0.1, 0.0]),
        target_std=np.array([1.5, 0.05]),
    )
    return MitigationFactory(baseline, digest_token=f"{token}:{seed}:{hidden}")


#: ML arm on top of the widest stack: Algorithm 1 arbitrates against the
#: driver, the checker and independent AEB inside the vectorized path.
ML_CFG = InterventionConfig(
    ml=True, driver=True, safety_check=True, aeb=AebsConfig.INDEPENDENT
)


class TestBatchMlLaneEquivalence:
    """ML-arm lanes ride the vectorized path — and stay bit-identical."""

    def _ml_pair(self, spec, max_steps, executor, cfg=ML_CFG, factory=None):
        factory = factory or synthetic_ml_factory()
        serial = run_campaign(
            spec, cfg, ml_factory=factory, executor="serial",
            cache=False, max_steps=max_steps,
        )
        other = run_campaign(
            spec, cfg, ml_factory=factory, executor=executor,
            cache=False, max_steps=max_steps,
        )
        return serial, other

    def test_ml_campaign_bit_identical_with_mid_batch_finish(self):
        # S1+S4 under an RD attack with ML as the lone intervention: the
        # S4 lanes crash (A1) ~150 steps before the S1 lanes reach
        # max_steps, so lanes retire mid-batch and the ML write-through
        # and active-set reshuffle both happen with recovery state live.
        spec = CampaignSpec(
            scenario_ids=("S1", "S4"),
            fault_types=[FaultType.RELATIVE_DISTANCE],
            initial_gaps=(60.0,),
            repetitions=2,
            seed=99,
        )
        serial, batch = self._ml_pair(
            spec, 500, "batch", cfg=InterventionConfig(ml=True)
        )
        # Preconditions: recovery genuinely activates and lanes genuinely
        # finish at different steps — otherwise this test proves nothing.
        assert any(r.ml_recovery.triggered for r in serial.results)
        assert len({r.steps for r in serial.results}) > 1
        assert batch.results == serial.results
        assert aggregate(batch.results) == aggregate(serial.results)

    def test_ml_lane_chunk_boundaries(self):
        spec = CampaignSpec(
            scenario_ids=("S1", "S4"),
            fault_types=[FaultType.RELATIVE_DISTANCE],
            initial_gaps=(60.0,),
            repetitions=2,
            seed=31,
        )
        factory = synthetic_ml_factory()
        serial = run_campaign(
            spec, ML_CFG, ml_factory=factory, executor="serial",
            cache=False, max_steps=400,
        )
        for lanes in (1, 3, 100):
            batch = run_campaign(
                spec, ML_CFG, ml_factory=factory,
                executor=BatchExecutor(lanes=lanes),
                cache=False, max_steps=400,
            )
            assert batch.results == serial.results, lanes

    def test_full_stack_with_ml_bit_identical(self):
        # ML recovery commands flowing through the checker, driver and
        # independent AEB: the arbitration interplay (authority codes,
        # ACC brake clamp under "ml" authority) must vectorize exactly.
        spec = _family_spec("S2", FaultType.DESIRED_CURVATURE, seed=5)
        serial, batch = self._ml_pair(spec, 400, "batch")
        assert any(r.ml_recovery.triggered for r in serial.results)
        assert batch.results == serial.results

    def test_ml_lanes_join_vector_set(self):
        from repro.core.platform import SimulationPlatform
        from repro.sim.batch_control import BatchControlStack
        from repro.sim.batch_state import BatchDynamics

        spec = _family_spec("S1", FaultType.NONE, seed=1, repetitions=1)
        episodes = enumerate_campaign(spec)
        factory = synthetic_ml_factory()
        platforms = [
            SimulationPlatform(
                episodes[0], ML_CFG, ml_controller=factory(), max_steps=50
            )
        ]
        dynamics = BatchDynamics(
            [p.world for p in platforms],
            curvature_lookaheads=[
                p.perception.params.curvature_lookahead for p in platforms
            ],
            lead_max_ranges=[p.sensor.max_range for p in platforms],
        )
        stack = BatchControlStack(platforms, dynamics)
        assert stack.vector_set == {0}
        assert stack.ml is not None

    def test_non_stock_controller_falls_back_to_scalar_and_matches(self):
        # A subclass may override step(): the batch path must refuse to
        # vectorize it (scalar fallback) and still match serial.
        class TracingController(MitigationController):
            pass

        baseline = synthetic_ml_factory().baseline

        def custom_factory():
            return TracingController(baseline)

        spec = _family_spec("S1", FaultType.RELATIVE_DISTANCE, seed=13)
        # The nested factory is deliberate: both backends run in-process
        # here, and hoisting it would lose the subclass-under-test.
        serial = run_campaign(
            spec, ML_CFG, ml_factory=custom_factory, executor="serial",  # repro-lint: disable=unpicklable-submission
            cache=False, max_steps=300,
        )
        batch = run_campaign(
            spec, ML_CFG, ml_factory=custom_factory, executor="batch",  # repro-lint: disable=unpicklable-submission
            cache=False, max_steps=300,
        )
        assert batch.results == serial.results

    def test_mixed_ml_and_plain_lanes_one_batch(self):
        # One lockstep batch mixing ML lanes (two distinct baselines —
        # distinct networks must group separately) with plain lanes.
        spec = _family_spec("S1", FaultType.RELATIVE_DISTANCE, seed=21)
        episodes = enumerate_campaign(spec)
        factories = [synthetic_ml_factory(seed=1), synthetic_ml_factory(seed=2), None]
        tasks = [
            EpisodeTask.make(
                episode,
                ML_CFG if factory is not None else FULL_CFG,
                ml_factory=factory,
                max_steps=400,
            )
            for episode in episodes
            for factory in factories
        ]
        serial = SerialExecutor().run(tasks)
        batch = BatchExecutor().run(tasks)
        assert batch == serial


class TestBatchParallelExecutor:
    def _spec(self, seed=99):
        return CampaignSpec(
            scenario_ids=("S1", "S4"),
            fault_types=[FaultType.RELATIVE_DISTANCE],
            initial_gaps=(60.0,),
            repetitions=3,
            seed=seed,
        )

    def test_hybrid_byte_identical_to_serial_including_ml(self, tmp_path):
        import hashlib

        factory = synthetic_ml_factory()
        serial = run_campaign(
            self._spec(), ML_CFG, ml_factory=factory, executor="serial",
            cache=False, max_steps=300,
        )
        hybrid = run_campaign(
            self._spec(), ML_CFG, ml_factory=factory, executor="batch",
            jobs=2, cache=False, max_steps=300,
        )
        assert hybrid.results == serial.results

        def digest(campaign, name):
            path = tmp_path / name
            campaign.save(str(path))
            return hashlib.sha256(path.read_bytes()).hexdigest()

        assert digest(hybrid, "hybrid.jsonl") == digest(serial, "serial.jsonl")

    def test_chunk_boundaries_do_not_change_results(self):
        serial = run_campaign(
            self._spec(7), FULL_CFG, executor="serial", cache=False,
            max_steps=300,
        )
        for chunk_size in (1, 2, 4):
            hybrid = run_campaign(
                self._spec(7),
                FULL_CFG,
                executor=BatchParallelExecutor(jobs=2, chunk_size=chunk_size),
                cache=False,
                max_steps=300,
            )
            assert hybrid.results == serial.results, chunk_size

    def test_jobs_one_short_circuits_in_process(self):
        serial = run_campaign(
            self._spec(3), FULL_CFG, executor="serial", cache=False,
            max_steps=200,
        )
        hybrid = run_campaign(
            self._spec(3),
            FULL_CFG,
            executor=BatchParallelExecutor(jobs=1),
            cache=False,
            max_steps=200,
        )
        assert hybrid.results == serial.results

    def test_non_picklable_payload_falls_back_with_warning(self):
        # The lambda factory is the hazard under test: the hybrid's
        # pickle probe must catch it and fall back in-process.
        baseline = synthetic_ml_factory().baseline
        spec = _family_spec("S1", FaultType.NONE, seed=2, repetitions=2)
        with pytest.warns(RuntimeWarning, match="not picklable"):
            hybrid = run_campaign(
                spec,
                ML_CFG,
                ml_factory=lambda: MitigationController(baseline),  # repro-lint: disable=unpicklable-submission
                executor=BatchParallelExecutor(jobs=2),
                cache=False,
                max_steps=200,
            )
        serial = run_campaign(
            spec,
            ML_CFG,
            ml_factory=lambda: MitigationController(baseline),  # repro-lint: disable=unpicklable-submission
            executor="serial",
            cache=False,
            max_steps=200,
        )
        assert hybrid.results == serial.results

    def test_progress_reports_all_episodes(self):
        seen = []
        run_campaign(
            self._spec(5),
            FULL_CFG,
            executor=BatchParallelExecutor(jobs=2),
            cache=False,
            max_steps=150,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (6, 6)
        dones = [d for d, _ in seen]
        assert dones == sorted(dones)

    def test_construction_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            BatchParallelExecutor(jobs=0)
        with pytest.raises(ValueError, match="lanes"):
            BatchParallelExecutor(jobs=2, lanes=0)
        with pytest.raises(ValueError, match="chunk_size"):
            BatchParallelExecutor(jobs=2, chunk_size=0)
