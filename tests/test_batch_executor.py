"""Batch (vectorized lockstep) executor tests.

The contract under test is the one the golden-digest suite cannot see:
``executor="batch"`` must produce byte-identical episode results — and
therefore identical aggregate metrics — to the serial reference for
every registered scenario family, every fault mode, and any lane width,
while :func:`resolve_executor` keeps the name-based selection honest.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.campaign import CampaignSpec
from repro.attacks.fi import FaultType
from repro.core.executor import (
    EXECUTOR_NAMES,
    BatchExecutor,
    ParallelExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.core.experiment import run_campaign
from repro.core.metrics import aggregate
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig
from repro.sim.families import registered_families

#: The widest intervention stack: driver + safety check + independent
#: AEB exercises every sensor corridor the batch engine pre-computes
#: (default, radar, human) plus the perception/curvature cache.
FULL_CFG = InterventionConfig(
    driver=True, safety_check=True, aeb=AebsConfig.INDEPENDENT
)


def _family_spec(family, fault, seed, repetitions=2):
    return CampaignSpec(
        scenario_ids=(family,),
        fault_types=[fault],
        initial_gaps=(60.0,),
        repetitions=repetitions,
        seed=seed,
    )


def _run_pair(spec, cfg, max_steps):
    serial = run_campaign(
        spec, cfg, executor="serial", cache=False, max_steps=max_steps
    )
    batch = run_campaign(
        spec, cfg, executor="batch", cache=False, max_steps=max_steps
    )
    return serial, batch


class TestBatchSerialEquivalence:
    @pytest.mark.parametrize("family", registered_families())
    def test_every_registered_family_bit_identical(self, family):
        spec = _family_spec(family, FaultType.DESIRED_CURVATURE, seed=404)
        serial, batch = _run_pair(spec, FULL_CFG, max_steps=400)
        assert batch.results == serial.results
        assert batch.intervention == serial.intervention

    @settings(max_examples=8, deadline=None)
    @given(
        family=st.sampled_from(registered_families()),
        fault=st.sampled_from(
            [FaultType.NONE, FaultType.RELATIVE_DISTANCE, FaultType.MIXED]
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_batch_metrics_equal_serial_property(self, family, fault, seed):
        spec = _family_spec(family, fault, seed)
        serial, batch = _run_pair(spec, FULL_CFG, max_steps=300)
        assert batch.results == serial.results
        assert aggregate(batch.results) == aggregate(serial.results)

    def test_lane_chunking_preserves_results_and_order(self):
        spec = CampaignSpec(
            scenario_ids=("S1", "S4"),
            fault_types=[FaultType.RELATIVE_DISTANCE],
            initial_gaps=(60.0,),
            repetitions=2,
            seed=99,
        )
        serial = run_campaign(
            spec, FULL_CFG, executor="serial", cache=False, max_steps=500
        )
        # 4 episodes through uneven lane widths: 1 (degenerate serial-like
        # lockstep), 3 (uneven final chunk), 100 (single wide chunk).
        for lanes in (1, 3, 100):
            batch = run_campaign(
                spec,
                FULL_CFG,
                executor=BatchExecutor(lanes=lanes),
                cache=False,
                max_steps=500,
            )
            assert batch.results == serial.results, lanes

    def test_mid_batch_finish_and_rng_draw_order(self):
        # RD-attacked baseline: the S4 lanes crash (A1) hundreds of steps
        # before the S1 lanes reach max_steps, so lanes retire mid-batch
        # and the survivors' active-set key changes; the attack also
        # walks the lead through the perception blind range, so per-lane
        # RNG consumption alternates between 5-draw (valid-lead) and
        # 3-draw steps.  Neither may disturb bit-identity at any chunk
        # width: 1 (a boundary every lane), width-1 (uneven final chunk),
        # or unbounded (all finish-orders interleaved in one batch).
        spec = CampaignSpec(
            scenario_ids=("S1", "S4"),
            fault_types=[FaultType.RELATIVE_DISTANCE],
            initial_gaps=(60.0,),
            repetitions=2,
            seed=99,
        )
        serial = run_campaign(
            spec, InterventionConfig(), executor="serial", cache=False, max_steps=600
        )
        steps = [r.steps for r in serial.results]
        # Precondition: lanes genuinely finish at different steps.
        assert len(set(steps)) > 1, steps
        assert any(r.accident is not None for r in serial.results)
        for lanes in (1, len(steps) - 1, None):
            batch = run_campaign(
                spec,
                InterventionConfig(),
                executor=BatchExecutor(lanes=lanes),
                cache=False,
                max_steps=600,
            )
            assert batch.results == serial.results, lanes

    def test_minimal_config_also_identical(self):
        # No driver, no AEB: the no-intervention arm takes different
        # sensor paths (no radar/human corridors registered).
        spec = _family_spec("S2", FaultType.NONE, seed=7, repetitions=2)
        serial, batch = _run_pair(spec, InterventionConfig(), max_steps=400)
        assert batch.results == serial.results

    def test_hazard_heavy_equivalence_bit_identical(self):
        # Short initial gaps + an RD attack: H1 marks early, S4 lanes
        # crash (A1) — the masked hazard screen flags lanes step after
        # step instead of staying quiet, so the scalar-fallback half of
        # the screen is what this pins against serial.
        spec = CampaignSpec(
            scenario_ids=("S3", "S4"),
            fault_types=[FaultType.RELATIVE_DISTANCE],
            initial_gaps=(15.0,),
            repetitions=2,
            seed=1234,
        )
        serial, batch = _run_pair(spec, FULL_CFG, max_steps=500)
        # Preconditions: the campaign is genuinely hazard-heavy.
        assert any(r.h1 for r in serial.results)
        assert any(r.accident is not None for r in serial.results)
        assert batch.results == serial.results

    def test_cut_in_heavy_equivalence_bit_identical(self):
        # dense-traffic platoons carry an adjacent-lane CutInBehavior
        # merger and S5 is the paper's cut-in scenario: adjacent-lane
        # agents with lateral motion keep the vectorized cut-in screen
        # flagging lanes into the scalar first-match scan, with the
        # driver model consuming the presence bit every step.
        spec = CampaignSpec(
            scenario_ids=("dense-traffic", "S5"),
            fault_types=[FaultType.MIXED],
            initial_gaps=(40.0,),
            repetitions=2,
            seed=77,
        )
        serial, batch = _run_pair(spec, FULL_CFG, max_steps=500)
        assert batch.results == serial.results
        assert aggregate(batch.results) == aggregate(serial.results)


class TestPhaseProfile:
    def test_profiled_runs_identical_and_accumulate(self):
        from repro.core.executor import PhaseProfile

        spec = _family_spec("S4", FaultType.RELATIVE_DISTANCE, seed=11)
        serial = run_campaign(
            spec, FULL_CFG, executor="serial", cache=False, max_steps=300
        )
        for make in (
            lambda p: SerialExecutor(profile=p),
            lambda p: BatchExecutor(profile=p),
        ):
            profile = PhaseProfile()
            profiled = run_campaign(
                spec,
                FULL_CFG,
                executor=make(profile),
                cache=False,
                max_steps=300,
            )
            assert profiled.results == serial.results
            assert profile.steps == sum(r.steps for r in serial.results)
            assert profile.control_s > 0.0
            assert profile.dynamics_s > 0.0
            assert profile.post_s >= 0.0
            assert profile.total_s == pytest.approx(
                profile.control_s + profile.dynamics_s + profile.post_s
            )
            assert set(profile.as_dict()) == {
                "control_s",
                "dynamics_s",
                "post_s",
                "steps",
            }


class TestBatchExecutorConstruction:
    def test_rejects_nonpositive_lanes(self):
        with pytest.raises(ValueError, match="lanes"):
            BatchExecutor(lanes=0)
        with pytest.raises(ValueError, match="lanes"):
            BatchExecutor(lanes=-4)

    def test_default_lanes_unbounded(self):
        assert BatchExecutor().lanes is None
        assert BatchExecutor(lanes=8).lanes == 8


class TestResolveExecutor:
    def test_names_resolve_to_backends(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("parallel", jobs=2), ParallelExecutor)
        assert isinstance(resolve_executor("batch"), BatchExecutor)

    def test_none_defers_to_jobs(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor(None, jobs=3), ParallelExecutor)

    def test_instance_passes_through(self):
        backend = BatchExecutor(lanes=4)
        assert resolve_executor(backend) is backend

    def test_unknown_name_lists_valid_names(self):
        with pytest.raises(ValueError, match="serial.*parallel.*batch"):
            resolve_executor("warp")

    def test_names_registry(self):
        assert EXECUTOR_NAMES == ("serial", "parallel", "batch")
