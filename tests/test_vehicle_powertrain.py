"""Unit tests for repro.sim.vehicle and repro.sim.powertrain."""

import math

import pytest

from repro.sim.powertrain import Powertrain, PowertrainParams
from repro.sim.track import build_straight_map
from repro.sim.vehicle import EgoVehicle, KinematicActor, VehicleParams
from repro.utils.units import G

DT = 0.01


def settle(vehicle, steps, accel=0.0, steer=0.0, mu=1.0, driver=False):
    vehicle.apply_controls(accel, steer, driver_steering=driver)
    for _ in range(steps):
        vehicle.step(DT, mu=mu)


class TestPowertrain:
    def test_engine_derates_with_speed(self):
        pt = Powertrain()
        assert pt.max_engine_accel(0.0) > pt.max_engine_accel(30.0)

    def test_full_brake_approaches_one_g(self):
        pt = Powertrain()
        achieved = 0.0
        for _ in range(200):
            achieved = pt.actuate(-G, 20.0, DT)
        assert achieved == pytest.approx(-G - pt.params.rolling_resistance
                                         - pt.params.drag_coefficient * 400.0, abs=0.2)

    def test_brake_lag_delays_response(self):
        pt = Powertrain()
        first = pt.actuate(-5.0, 20.0, DT)
        assert first > -5.0  # pressure still building

    def test_stopped_vehicle_does_not_creep_backwards(self):
        pt = Powertrain()
        achieved = pt.actuate(0.0, 0.0, DT)
        assert achieved == pytest.approx(0.0)

    def test_drag_slows_coasting(self):
        pt = Powertrain()
        achieved = pt.actuate(0.0, 30.0, DT)
        assert achieved < 0.0

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            Powertrain().actuate(0.0, 10.0, 0.0)

    def test_adas_brake_authority_below_hydraulic(self):
        params = PowertrainParams()
        assert params.adas_brake_authority < params.max_brake_decel


class TestEgoVehicle:
    def test_rejects_negative_speed(self):
        road = build_straight_map()
        with pytest.raises(ValueError):
            EgoVehicle(road, speed=-1.0)

    def test_straight_line_coasting(self):
        road = build_straight_map()
        ego = EgoVehicle(road, s=0.0, speed=20.0)
        settle(ego, 100)
        assert ego.s == pytest.approx(20.0, abs=0.5)
        assert abs(ego.d) < 1e-6

    def test_acceleration_increases_speed(self):
        road = build_straight_map()
        ego = EgoVehicle(road, speed=10.0)
        settle(ego, 200, accel=2.0)
        assert ego.speed > 12.5

    def test_braking_stops_vehicle(self):
        road = build_straight_map()
        ego = EgoVehicle(road, speed=10.0)
        settle(ego, 400, accel=-G)
        assert ego.speed == pytest.approx(0.0, abs=0.05)

    def test_speed_never_negative(self):
        road = build_straight_map()
        ego = EgoVehicle(road, speed=1.0)
        settle(ego, 500, accel=-G)
        assert ego.speed == 0.0

    def test_steering_produces_lateral_motion(self):
        road = build_straight_map()
        ego = EgoVehicle(road, speed=15.0)
        settle(ego, 200, steer=0.02)
        assert ego.d > 0.1

    def test_steering_rate_limited(self):
        road = build_straight_map()
        ego = EgoVehicle(road, speed=15.0)
        ego.apply_controls(0.0, 0.5)
        ego.step(DT)
        assert ego.steer <= ego.params.adas_steer_rate * DT + 1e-9

    def test_driver_steering_rate_faster(self):
        road = build_straight_map()
        a = EgoVehicle(road, speed=15.0)
        a.apply_controls(0.0, 0.5, driver_steering=False)
        a.step(DT)
        b = EgoVehicle(road, speed=15.0)
        b.apply_controls(0.0, 0.5, driver_steering=True)
        b.step(DT)
        assert b.steer > a.steer

    def test_friction_circle_limits_curvature_on_ice(self):
        road = build_straight_map()
        dry = EgoVehicle(road, speed=22.0)
        icy = EgoVehicle(road, speed=22.0)
        for veh, mu in ((dry, 1.0), (icy, 0.25)):
            veh.apply_controls(0.0, 0.1)
            for _ in range(300):
                veh.step(DT, mu=mu)
        assert icy.sliding
        assert abs(icy.d) < abs(dry.d)  # the icy car runs wide (less turn)

    def test_emergency_braking_arrests_lateral_drift(self):
        road = build_straight_map()
        coasting = EgoVehicle(road, speed=22.0)
        braking = EgoVehicle(road, speed=22.0)
        settle(coasting, 150, accel=0.0, steer=0.05)
        settle(braking, 150, accel=-8.8, steer=0.05)
        assert braking.d < coasting.d

    def test_low_friction_lengthens_braking(self):
        road = build_straight_map()
        dry = EgoVehicle(road, speed=20.0)
        icy = EgoVehicle(road, speed=20.0)
        settle(dry, 600, accel=-G, mu=1.0)
        settle(icy, 600, accel=-G, mu=0.25)
        assert dry.speed == pytest.approx(0.0, abs=0.05)
        assert icy.speed > 5.0

    def test_bumper_positions(self):
        road = build_straight_map()
        ego = EgoVehicle(road, s=100.0)
        assert ego.front_s == pytest.approx(100.0 + ego.params.length / 2)
        assert ego.rear_s == pytest.approx(100.0 - ego.params.length / 2)


class TestKinematicActor:
    def test_cruises_along_road(self):
        road = build_straight_map()
        actor = KinematicActor(road, s=0.0, d=0.0, speed=13.0)
        for _ in range(100):
            actor.step(DT)
        assert actor.s == pytest.approx(13.0, abs=0.1)

    def test_accel_command_friction_clamped(self):
        road = build_straight_map()
        actor = KinematicActor(road, s=0.0, d=0.0, speed=13.0)
        actor.accel_cmd = -50.0
        actor.step(DT, mu=0.25)
        assert actor.accel == pytest.approx(-0.25 * G)

    def test_lane_change_slews_lateral_offset(self):
        road = build_straight_map()
        actor = KinematicActor(road, s=0.0, d=0.0, speed=13.0)
        actor.d_target = 3.7
        for _ in range(100):
            actor.step(DT)
        assert 0.5 < actor.d < 3.7

    def test_lateral_speed_sign(self):
        road = build_straight_map()
        actor = KinematicActor(road, s=0.0, d=0.0, speed=13.0)
        actor.d_target = 3.7
        assert actor.lateral_speed() > 0
        actor.d_target = -3.7
        assert actor.lateral_speed() < 0
        actor.d_target = 0.0
        assert actor.lateral_speed() == 0.0

    def test_rejects_negative_speed(self):
        road = build_straight_map()
        with pytest.raises(ValueError):
            KinematicActor(road, s=0.0, d=0.0, speed=-2.0)


class TestVehicleParams:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            VehicleParams(length=-1.0)

    def test_rejects_bad_steer_limit(self):
        with pytest.raises(ValueError):
            VehicleParams(max_steer=2.0)
