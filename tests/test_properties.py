"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adas.lead_tracker import LeadTracker
from repro.adas.long_planner import LongPlanner
from repro.adas.lead_tracker import TrackedLead
from repro.safety.aebs import Aebs, AebsConfig
from repro.sim.powertrain import Powertrain
from repro.sim.road import Road, RoadSegment
from repro.sim.track import build_straight_map
from repro.sim.vehicle import EgoVehicle
from repro.utils.mathx import clamp, interp1d, rate_limit, wrap_angle
from repro.utils.rng import derive_seed
from repro.utils.units import G, mph_to_ms, ms_to_mph

finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
speed = st.floats(min_value=0.0, max_value=45.0)
positive = st.floats(min_value=1e-3, max_value=1e3)


@given(finite, finite, finite)
def test_clamp_always_within_bounds(x, a, b):
    lo, hi = min(a, b), max(a, b)
    assert lo <= clamp(x, lo, hi) <= hi


@given(finite)
def test_wrap_angle_range(angle):
    wrapped = wrap_angle(float(angle))
    assert -math.pi < wrapped <= math.pi + 1e-9


physical = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@given(physical, physical, st.floats(min_value=0.0, max_value=100.0))
def test_rate_limit_never_overshoots(current, target, max_delta):
    out = rate_limit(float(current), float(target), float(max_delta))
    assert abs(out - current) <= max_delta * (1 + 1e-9) + 1e-6


@given(st.floats(min_value=-200.0, max_value=200.0))
def test_interp1d_bounded_by_knots(x):
    ys = [1.0, 5.0, 2.0]
    out = interp1d(float(x), [0.0, 10.0, 20.0], ys)
    assert min(ys) <= out <= max(ys)


@given(st.floats(min_value=0.0, max_value=200.0))
def test_mph_round_trip_property(v):
    assert abs(ms_to_mph(mph_to_ms(float(v))) - v) < 1e-9


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
def test_derive_seed_deterministic(seed, name):
    assert derive_seed(seed, name) == derive_seed(seed, name)


@given(st.floats(min_value=0.0, max_value=42.0))
def test_aebs_threshold_ordering(v):
    # Below ~42 m/s the cascade is strictly ordered.  Above that speed the
    # paper's own equations invert t_fcw and t_pb1 (see the dedicated test
    # below), so the property holds only in the legal-speed envelope.
    aebs = Aebs(AebsConfig.INDEPENDENT)
    t_fcw, t_pb1, t_pb2, t_fb = aebs.thresholds(float(v))
    assert t_fcw >= t_pb1 >= t_pb2 >= t_fb >= 0.0


def test_aebs_fcw_threshold_crossover_above_42ms():
    # A genuine property of the paper's Eqs. 3-4: for V > 2.5 / (1/3.8 -
    # 1/4.9) ~ 42.3 m/s (~95 mph), phase-1 braking would begin *before*
    # the FCW alert.  Found by hypothesis; documented, not "fixed".
    aebs = Aebs(AebsConfig.INDEPENDENT)
    t_fcw, t_pb1, _, _ = aebs.thresholds(44.0)
    assert t_fcw < t_pb1


@given(
    speed,
    st.floats(min_value=0.1, max_value=200.0),
    st.floats(min_value=0.3, max_value=30.0),
)
@settings(max_examples=60)
def test_aebs_brake_is_never_positive(v, rd, rs):
    aebs = Aebs(AebsConfig.INDEPENDENT)
    state = aebs.update(float(v), True, float(rd), float(rs), 0.01)
    assert state.brake_accel <= 0.0
    assert 0 <= state.phase <= 3
    if state.phase > 0:
        assert state.brake_accel >= -G


@given(
    speed,
    st.floats(min_value=0.0, max_value=250.0),
    st.floats(min_value=-10.0, max_value=25.0),
)
@settings(max_examples=60)
def test_long_planner_command_bounded(v, rd, rs):
    planner = LongPlanner(set_speed=22.35)
    lead = TrackedLead(valid=rd > 0.0, rd=float(rd), rs=float(rs))
    accel = planner.plan(float(v), lead)
    assert -planner.params.panic_decel <= accel <= planner.params.max_accel


@given(st.lists(st.floats(min_value=-9.8, max_value=3.0), min_size=1, max_size=50), speed)
@settings(max_examples=60)
def test_powertrain_never_accelerates_backward(commands, v):
    pt = Powertrain()
    speed_now = float(v)
    for cmd in commands:
        achieved = pt.actuate(float(cmd), speed_now, 0.01)
        speed_now = max(0.0, speed_now + achieved * 0.01)
    assert speed_now >= 0.0


@given(
    st.floats(min_value=0.0, max_value=0.4),
    st.floats(min_value=0.25, max_value=1.0),
    speed,
)
@settings(max_examples=40)
def test_vehicle_speed_nonnegative_under_any_controls(steer, mu, v):
    road = build_straight_map()
    ego = EgoVehicle(road, speed=float(v))
    ego.apply_controls(-G, float(steer))
    for _ in range(100):
        ego.step(0.01, mu=float(mu))
        assert ego.speed >= 0.0
        assert abs(ego.psi) <= 1.2


@given(st.floats(min_value=-20.0, max_value=20.0))
def test_nearest_lane_always_valid(d):
    road = Road([RoadSegment(100.0, 0.0)], num_lanes=2)
    lane = road.nearest_lane(float(d))
    assert 0 <= lane < road.num_lanes


@given(
    st.lists(
        st.tuples(
            st.booleans(),
            st.floats(min_value=0.0, max_value=120.0),
            st.floats(min_value=-10.0, max_value=20.0),
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=40)
def test_tracker_rd_never_negative(frames):
    from repro.adas.perception import PerceptionOutput

    tracker = LeadTracker()
    for valid, rd, rs in frames:
        out = PerceptionOutput(
            lead_valid=valid,
            lead_rd=float(rd),
            lead_rs=float(rs),
            lane_left=0.9,
            lane_right=0.9,
            desired_curvature=0.0,
        )
        lead = tracker.update(out, 0.01)
        if lead.valid:
            assert lead.rd >= 0.0
