"""CLI tests for ``repro lint`` and the ``cache gc --keep-days`` bugfix.

Exit-code contract (mirrors the rest of the toolkit): 0 clean, 1
findings, 2 usage/configuration errors — so the CI gate is a bare
``repro lint src/repro`` and a cron wrapper can tell "hazard found"
from "you invoked me wrong".
"""

import json
import textwrap

import pytest

from repro.cli import main

#: A fixture with one hazard per rule-family the gate must catch.
HAZARDS = textwrap.dedent(
    """\
    # repro-lint: role=canonical,worker
    import os
    import random
    import time


    def emit(results):
        labels = {r.label for r in results}
        stamp = time.time()
        root = os.environ.get("CACHE_DIR")
        token = ",".join(labels)
        return f"{random.random():.3f}", stamp, token, root


    def scan(pool, root):
        for name in os.listdir(root):
            pool.submit(lambda: name)


    def collect(shard):
        try:
            shard.load()
        except:
            pass
    """
)

CLEAN = "VALUES = sorted({'b', 'a'})\nTOTAL = len(VALUES)\n"


@pytest.fixture
def hazard_file(tmp_path):
    path = tmp_path / "hazards.py"
    path.write_text(HAZARDS)
    return path


class TestLintCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text(CLEAN)
        assert main(["lint", str(clean)]) == 0
        out = capsys.readouterr().out
        assert "0 findings in 1 file" in out

    def test_findings_exit_one_with_locations(self, hazard_file, capsys):
        assert main(["lint", str(hazard_file)]) == 1
        out = capsys.readouterr().out
        for rule_id in (
            "unseeded-rng",
            "wall-clock-digest",
            "env-read-in-canonical",
            "unsorted-fs-iteration",
            "set-ordering",
            "unpicklable-submission",
            "canonical-float-format",
            "swallowed-exception",
        ):
            assert rule_id in out, f"{rule_id} missing from report"

    def test_json_output(self, hazard_file, capsys):
        assert main(["lint", str(hazard_file), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["format"] == 1
        assert document["rules"] == [
            "unseeded-rng",
            "wall-clock-digest",
            "env-read-in-canonical",
            "unsorted-fs-iteration",
            "set-ordering",
            "unpicklable-submission",
            "canonical-float-format",
            "swallowed-exception",
        ]
        assert {f["rule"] for f in document["findings"]} >= {
            "unseeded-rng",
            "set-ordering",
        }

    def test_rule_and_disable_selectors(self, hazard_file, capsys):
        assert main(["lint", str(hazard_file), "--rule", "unseeded-rng"]) == 1
        out = capsys.readouterr().out
        assert "unseeded-rng" in out and "set-ordering" not in out

        rc = main(
            ["lint", str(hazard_file)]
            + [
                flag
                for rule in (
                    "unseeded-rng",
                    "wall-clock-digest",
                    "env-read-in-canonical",
                    "unsorted-fs-iteration",
                    "set-ordering",
                    "unpicklable-submission",
                    "canonical-float-format",
                    "swallowed-exception",
                )
                for flag in ("--disable", rule)
            ]
        )
        capsys.readouterr()
        assert rc == 2  # empty selection is a usage error, not "clean"

    def test_unknown_rule_exits_two_naming_catalog(self, hazard_file, capsys):
        assert main(["lint", str(hazard_file), "--rule", "typo-rule"]) == 2
        err = capsys.readouterr().err
        assert "typo-rule" in err and "unseeded-rng" in err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.py")]) == 2
        assert "nope.py" in capsys.readouterr().err

    def test_list_flag(self, capsys):
        assert main(["lint", "--list"]) == 0
        out = capsys.readouterr().out
        assert "unseeded-rng" in out and "canonical-float-format" in out

    def test_write_baseline_round_trip(self, hazard_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        rc = main(
            [
                "lint", str(hazard_file),
                "--write-baseline", "--baseline", str(baseline),
            ]
        )
        assert rc == 0
        assert "wrote baseline" in capsys.readouterr().out

        # Grandfathered: the same tree now gates clean...
        assert main(
            ["lint", str(hazard_file), "--baseline", str(baseline)]
        ) == 0
        assert "grandfathered by the baseline" in capsys.readouterr().out

        # ...but a *new* hazard still fails.
        hazard_file.write_text(
            HAZARDS + "\n\nextra = ','.join({'x', 'y'})\n"
        )
        assert main(
            ["lint", str(hazard_file), "--baseline", str(baseline)]
        ) == 1
        out = capsys.readouterr().out
        assert "extra" in out

    def test_malformed_baseline_exits_two(self, hazard_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("not json\n")
        assert main(
            ["lint", str(hazard_file), "--baseline", str(baseline)]
        ) == 2
        assert "not a baseline" in capsys.readouterr().err


class TestCacheGcKeepDaysValidation:
    """Bugfix: negative ``--keep-days`` must die at the parser with a
    message naming the flag, never reach the cache layer."""

    @pytest.mark.parametrize("bad", ["-1", "-0.5", "nan", "inf", "-inf"])
    def test_negative_or_nonfinite_rejected_at_parse_time(
        self, bad, tmp_path, capsys
    ):
        with pytest.raises(SystemExit) as exit_info:
            main(
                [
                    "cache", "gc",
                    "--cache-dir", str(tmp_path),
                    "--keep-days", bad,
                ]
            )
        assert exit_info.value.code == 2
        err = capsys.readouterr().err
        assert "--keep-days" in err

    def test_non_numeric_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(
                [
                    "cache", "gc",
                    "--cache-dir", str(tmp_path),
                    "--keep-days", "soon",
                ]
            )
        assert exit_info.value.code == 2
        err = capsys.readouterr().err
        assert "--keep-days" in err and "'soon'" in err

    def test_zero_and_positive_still_accepted(self, tmp_path, capsys):
        for value in ("0", "2.5"):
            rc = main(
                [
                    "cache", "gc",
                    "--cache-dir", str(tmp_path),
                    "--keep-days", value,
                ]
            )
            assert rc == 0
        capsys.readouterr()
