"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.attacks.campaign import EpisodeSpec
from repro.attacks.fi import FaultType
from repro.sim.track import build_highway_map, build_straight_map
from repro.sim.vehicle import EgoVehicle
from repro.sim.world import World


@pytest.fixture
def straight_road():
    """A long straight two-lane road."""
    return build_straight_map()


@pytest.fixture
def highway_road():
    """The evaluation highway map."""
    return build_highway_map()


@pytest.fixture
def straight_world(straight_road):
    """A world with a single ego at 20 m/s on the straight map."""
    ego = EgoVehicle(straight_road, s=10.0, d=0.0, speed=20.0)
    return World(straight_road, ego)


def episode(scenario_id="S1", gap=60.0, fault=FaultType.NONE, seed=1234):
    """Convenience EpisodeSpec builder used across test modules."""
    return EpisodeSpec(
        scenario_id=scenario_id,
        initial_gap=gap,
        fault_type=fault,
        repetition=0,
        seed=seed,
    )
