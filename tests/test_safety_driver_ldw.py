"""Unit tests for the driver reaction simulator (Table II) and LDW."""

import pytest

from repro.safety.driver import DriverModel, DriverParams, DriverView
from repro.safety.ldw import LaneDepartureWarning, LdwParams

DT = 0.01


def view(
    time=0.0,
    ego_speed=20.0,
    ego_accel=0.0,
    gap=50.0,
    closing=0.0,
    cut_in=False,
    dist_right=0.9,
    dist_left=0.9,
    lateral_offset=0.0,
    rel_heading=0.0,
    fcw=False,
    ldw=False,
    aeb_active=False,
):
    return DriverView(
        time=time,
        ego_speed=ego_speed,
        ego_accel=ego_accel,
        gap=gap,
        closing=closing,
        cut_in=cut_in,
        dist_right=dist_right,
        dist_left=dist_left,
        lateral_offset=lateral_offset,
        rel_heading=rel_heading,
        fcw=fcw,
        ldw=ldw,
        aeb_active=aeb_active,
    )


def drive(driver, seconds, **kwargs):
    """Tick the driver with a constant view; returns the last action."""
    action = None
    base = kwargs.pop("start", 0.0)
    steps = int(seconds / DT)
    for i in range(steps):
        action = driver.update(view(time=base + i * DT, **kwargs))
    return action


class TestBrakeReactions:
    def test_fcw_triggers_brake_after_reaction_time(self):
        driver = DriverModel(DriverParams(reaction_time=1.0))
        action = drive(driver, 0.9, fcw=True)
        assert not action.brake_active
        action = drive(driver, 0.3, fcw=True, start=0.9)
        assert action.brake_active
        assert action.brake_reason == "fcw"

    def test_brake_ramps_to_peak(self):
        driver = DriverModel(DriverParams(reaction_time=0.2, brake_peak=6.5))
        action = drive(driver, 2.0, fcw=True)
        assert action.brake_accel == pytest.approx(-6.5)

    def test_visual_ttc_trigger(self):
        driver = DriverModel(DriverParams(reaction_time=0.2))
        action = drive(driver, 0.5, gap=20.0, closing=10.0)  # ttc = 2 s
        assert action.brake_active
        assert action.brake_reason == "visual_ttc"

    def test_overspeed_trigger(self):
        driver = DriverModel(DriverParams(reaction_time=0.2))
        action = drive(driver, 0.5, ego_speed=26.0, gap=None)
        assert action.brake_active
        assert action.brake_reason == "overspeed"

    def test_unsafe_distance_trigger(self):
        driver = DriverModel(DriverParams(reaction_time=0.2))
        action = drive(driver, 0.5, gap=3.0, closing=0.0)
        assert action.brake_active
        assert action.brake_reason == "unsafe_distance"

    def test_unexpected_acceleration_trigger(self):
        driver = DriverModel(DriverParams(reaction_time=0.2))
        action = drive(driver, 0.5, gap=15.0, closing=1.0, ego_accel=1.5)
        assert action.brake_active
        assert action.brake_reason == "unexpected_accel"

    def test_cut_in_trigger(self):
        driver = DriverModel(DriverParams(reaction_time=0.2))
        action = drive(driver, 0.5, cut_in=True)
        assert action.brake_active
        assert action.brake_reason == "cut_in"

    def test_cancelled_if_hazard_evaporates(self):
        driver = DriverModel(DriverParams(reaction_time=1.5, cancel_window=0.3))
        drive(driver, 0.3, fcw=True)
        action = drive(driver, 1.5, fcw=False, start=0.3)  # clears before execution
        assert not action.brake_active

    def test_no_trigger_in_nominal_driving(self):
        driver = DriverModel()
        action = drive(driver, 3.0, gap=40.0, closing=1.0)
        assert not action.brake_active
        assert not action.steer_active

    def test_brake_holds_until_visibly_safe(self):
        driver = DriverModel(DriverParams(reaction_time=0.2))
        drive(driver, 1.0, fcw=True, gap=10.0)
        # FCW gone but the gap is still tight: keep braking.
        action = drive(driver, 2.0, fcw=False, gap=8.0, ego_speed=5.0, start=1.0)
        assert action.brake_active

    def test_brake_releases_when_gap_opens(self):
        driver = DriverModel(DriverParams(reaction_time=0.2))
        drive(driver, 1.0, fcw=True, gap=10.0)
        action = drive(driver, 3.0, fcw=False, gap=60.0, ego_speed=5.0, start=1.0)
        assert not action.brake_active


class TestSteerReactions:
    def test_ldw_triggers_steering(self):
        driver = DriverModel(DriverParams(reaction_time=0.2))
        action = drive(driver, 0.6, ldw=True, lateral_offset=0.8)
        assert action.steer_active
        assert action.steer_reason == "ldw"

    def test_lane_distance_triggers_steering(self):
        driver = DriverModel(DriverParams(reaction_time=0.2))
        action = drive(driver, 0.6, dist_left=0.3, lateral_offset=0.6)
        assert action.steer_active
        assert action.steer_reason == "lane_distance"

    def test_steer_command_opposes_offset(self):
        driver = DriverModel(DriverParams(reaction_time=0.2))
        action = drive(driver, 0.6, ldw=True, lateral_offset=1.0)
        assert action.steer_angle < 0.0  # steer right, back to centre

    def test_takeover_persists_minimum_duration(self):
        driver = DriverModel(
            DriverParams(reaction_time=0.2, steer_hold_min=2.0, steer_release_hold=0.2)
        )
        drive(driver, 0.6, ldw=True, lateral_offset=0.8)
        # centred almost immediately, but the hold keeps the takeover alive
        action = drive(driver, 1.0, lateral_offset=0.0, start=0.6)
        assert action.steer_active

    def test_takeover_eventually_releases(self):
        driver = DriverModel(
            DriverParams(reaction_time=0.2, steer_hold_min=0.5, steer_release_hold=0.2)
        )
        drive(driver, 0.6, ldw=True, lateral_offset=0.8)
        action = drive(driver, 2.0, lateral_offset=0.0, start=0.6)
        assert not action.steer_active


class TestDeferenceAndAlerting:
    def test_defers_to_active_aeb(self):
        driver = DriverModel(DriverParams(reaction_time=0.2))
        action = drive(driver, 1.0, fcw=True, aeb_active=True)
        assert not action.brake_active

    def test_reacts_after_aeb_releases(self):
        driver = DriverModel(DriverParams(reaction_time=0.2))
        drive(driver, 0.5, fcw=True, aeb_active=True)
        action = drive(driver, 0.5, fcw=True, aeb_active=False, start=0.5)
        assert action.brake_active

    def test_alerted_driver_reacts_faster(self):
        params = DriverParams(reaction_time=2.0, alerted_factor=0.5, alerted_floor=0.5)
        driver = DriverModel(params)
        initial = driver.effective_reaction_time
        drive(driver, 2.5, fcw=True)  # first reaction executes
        assert driver.effective_reaction_time == pytest.approx(initial * 0.5)

    def test_alerted_floor_respected(self):
        params = DriverParams(reaction_time=1.0, alerted_factor=0.1, alerted_floor=0.9)
        driver = DriverModel(params)
        drive(driver, 1.5, fcw=True)
        assert driver.effective_reaction_time >= 0.9

    def test_reaction_jitter_from_streams(self):
        from repro.utils.rng import RngStreams

        a = DriverModel(streams=RngStreams(1))
        b = DriverModel(streams=RngStreams(2))
        assert a.effective_reaction_time != b.effective_reaction_time


class TestLdw:
    def test_warns_near_line(self):
        ldw = LaneDepartureWarning()
        assert ldw.update(0.2, 1.5, 0.0, 20.0)

    def test_warns_on_predicted_crossing(self):
        ldw = LaneDepartureWarning(LdwParams(time_to_crossing=1.0))
        # 0.6 m to the left line, drifting left at 0.8 m/s -> 0.75 s.
        assert ldw.update(1.5, 0.6, 0.8, 20.0)

    def test_quiet_when_centred(self):
        ldw = LaneDepartureWarning()
        assert not ldw.update(0.9, 0.9, 0.0, 20.0)

    def test_inhibited_at_low_speed(self):
        ldw = LaneDepartureWarning()
        assert not ldw.update(0.1, 1.5, 0.0, 1.0)

    def test_drift_away_from_near_line_still_warns_on_distance(self):
        ldw = LaneDepartureWarning()
        # close to the right line but drifting left: distance rule fires
        assert ldw.update(0.2, 1.5, 0.5, 20.0)
