"""Unit tests for repro.utils.rng and repro.utils.buffers."""

import pytest

from repro.utils.buffers import RingBuffer
from repro.utils.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")


class TestRngStreams:
    def test_same_name_same_sequence(self):
        a = RngStreams(7).get("x").normal(size=5)
        b = RngStreams(7).get("x").normal(size=5)
        assert (a == b).all()

    def test_different_names_independent(self):
        s = RngStreams(7)
        a = s.get("x").normal(size=5)
        b = s.get("y").normal(size=5)
        assert not (a == b).all()

    def test_request_order_does_not_matter(self):
        s1 = RngStreams(7)
        s1.get("first")
        x1 = s1.get("second").normal(size=3)
        s2 = RngStreams(7)
        x2 = s2.get("second").normal(size=3)
        assert (x1 == x2).all()

    def test_child_derivation(self):
        a = RngStreams(7).child("scenario", "S1").get("setup").normal(size=3)
        b = RngStreams(7).child("scenario", "S1").get("setup").normal(size=3)
        c = RngStreams(7).child("scenario", "S2").get("setup").normal(size=3)
        assert (a == b).all()
        assert not (a == c).all()


class TestRingBuffer:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_append_and_latest(self):
        buf = RingBuffer(3)
        for v in (1.0, 2.0, 3.0, 4.0):
            buf.append(v)
        assert buf.latest() == [2.0, 3.0, 4.0]

    def test_latest_subset(self):
        buf = RingBuffer(5)
        for v in range(5):
            buf.append(float(v))
        assert buf.latest(2) == [3.0, 4.0]

    def test_latest_negative_raises(self):
        buf = RingBuffer(2)
        buf.append(1.0)
        with pytest.raises(ValueError):
            buf.latest(-1)

    def test_filled_flag(self):
        buf = RingBuffer(2)
        assert not buf.filled
        buf.append(1.0)
        assert not buf.filled
        buf.append(2.0)
        assert buf.filled

    def test_fill_constructor(self):
        buf = RingBuffer(4, fill=0.5)
        assert buf.filled
        assert buf.latest() == [0.5] * 4

    def test_last(self):
        buf = RingBuffer(3)
        buf.append(1.0)
        buf.append(2.0)
        assert buf.last() == 2.0
        buf.append(3.0)
        buf.append(4.0)  # wraps
        assert buf.last() == 4.0

    def test_last_empty_raises(self):
        with pytest.raises(IndexError):
            RingBuffer(3).last()

    def test_clear(self):
        buf = RingBuffer(2, fill=1.0)
        buf.clear()
        assert len(buf) == 0
        assert not buf.filled

    def test_iteration_order(self):
        buf = RingBuffer(3)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            buf.append(v)
        assert list(buf) == [3.0, 4.0, 5.0]
