"""Regenerate the golden-file fixtures and expected renderings.

Run from the repository root after an *intentional* change to table
layouts or fixture campaigns::

    PYTHONPATH=src python tests/golden/regenerate.py

Two kinds of files live next to this script:

* ``*_campaign.jsonl`` — small seeded campaign fixtures, produced once by
  the real simulator (capped at ``MAX_STEPS`` so regeneration stays fast)
  and then frozen.  The golden tests never re-simulate: they only load
  these records and render them.
* ``*.txt`` — the expected byte-for-byte renderings of every paper table
  (and the figure summary lines) built from those fixtures.  Each file
  ends with a single trailing newline.

``tests/test_golden_tables.py`` asserts current renderings match these
files exactly, so a formatting refactor that drifts from the paper's
layout fails loudly instead of silently.
"""

from __future__ import annotations

import os

from repro.analysis.figures import render_fig5_summary, render_fig6_summary
from repro.analysis.render import format_placeholder
from repro.analysis.tables import (
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
    table4_driving_performance,
    table5_lane_distance,
    table6_rows,
    table7_reaction_sweep,
    table8_friction_sweep,
)
from repro.attacks.campaign import CampaignSpec
from repro.attacks.fi import FaultType
from repro.core.experiment import run_campaign
from repro.safety.arbitration import InterventionConfig

HERE = os.path.dirname(os.path.abspath(__file__))

#: Step cap for fixture episodes: small enough to regenerate in seconds,
#: large enough that attacks activate and metrics are non-trivial.
MAX_STEPS = 400

BENIGN_SPEC = CampaignSpec(fault_types=[FaultType.NONE], repetitions=1, seed=7)
ATTACK_SPEC = CampaignSpec(scenario_ids=("S1", "S4"), repetitions=1, seed=7)
ATTACK_CFG = InterventionConfig(driver=True, safety_check=True, name="driver+check")

#: Fixed Fig. 5 drop data: the golden covers the summary *formatting*
#: (sorting, precision), independent of the simulator.
FIG5_DROPS = {
    "S1": 12.104,
    "S2": 9.95,
    "S3": 0.0,
    "S4": 14.5,
    "S5": 3.25,
    "S6": 7.0,
}


def _write(name: str, text: str) -> None:
    path = os.path.join(HERE, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    print(f"wrote {path}")


def main() -> None:
    benign = run_campaign(
        BENIGN_SPEC, InterventionConfig(), cache=False, max_steps=MAX_STEPS
    )
    attack = run_campaign(
        ATTACK_SPEC, ATTACK_CFG, cache=False, max_steps=MAX_STEPS
    )
    benign.save(os.path.join(HERE, "benign_campaign.jsonl"))
    attack.save(os.path.join(HERE, "attack_campaign.jsonl"))
    print("wrote campaign fixtures")

    _write("table4.txt", render_table4(table4_driving_performance(benign)))
    _write("table5.txt", render_table5(table5_lane_distance(benign)))
    _write(
        "table6.txt",
        render_table6(table6_rows([(ATTACK_CFG.label(), attack)])),
    )
    # The sweeps reuse the attack fixture under several keys: the goldens
    # pin column ordering and cell formatting, not sweep physics.
    _write(
        "table7.txt",
        render_table7(table7_reaction_sweep({1.0: attack, 2.5: attack})),
    )
    _write(
        "table8.txt",
        render_table8(
            table8_friction_sweep(
                {
                    "default": attack,
                    "25% off": attack,
                    "50% off": attack,
                    "75% off": attack,
                }
            )
        ),
    )
    _write("fig5_summary.txt", render_fig5_summary(FIG5_DROPS))
    _write("fig6_summary.txt", render_fig6_summary(attack.results[0]))
    _write(
        "placeholder.txt",
        format_placeholder(
            "Table VI: Fault injection with/without safety interventions",
            [
                "table6:none    cached              36/36 episodes",
                "table6:driver  resumable-partial   12/36 episodes",
                "table6:ml      missing             0/36 episodes",
            ],
        ),
    )


if __name__ == "__main__":
    main()
