"""Unit tests for the AEBS (paper Eqs. 1-4, Table I) and the PANDA checker."""

import math

import pytest

from repro.adas.controlsd import AdasCommand
from repro.safety.aebs import Aebs, AebsConfig, AebsParams
from repro.safety.panda import SafetyChecker, SafetyCheckerParams
from repro.utils.units import G

DT = 0.01


class TestThresholds:
    def test_equation_2_and_3(self):
        # t_fcw = T_react + V / a_driver with a_driver = 4.9 reproduces the
        # paper's reported min t_fcw values (e.g. S1: 2.5 + 9.6/4.9 = 4.46).
        aebs = Aebs(AebsConfig.INDEPENDENT)
        t_fcw, _, _, _ = aebs.thresholds(9.6)
        assert t_fcw == pytest.approx(2.5 + 9.6 / 4.9, abs=1e-9)

    def test_equation_4_divisors(self):
        aebs = Aebs(AebsConfig.INDEPENDENT)
        v = 22.35
        _, t_pb1, t_pb2, t_fb = aebs.thresholds(v)
        assert t_pb1 == pytest.approx(v / 3.8)
        assert t_pb2 == pytest.approx(v / 5.8)
        assert t_fb == pytest.approx(v / 9.8)

    def test_threshold_ordering(self):
        aebs = Aebs(AebsConfig.INDEPENDENT)
        t_fcw, t_pb1, t_pb2, t_fb = aebs.thresholds(20.0)
        assert t_fcw > t_pb1 > t_pb2 > t_fb > 0


class TestTableIPhases:
    def make(self):
        return Aebs(AebsConfig.INDEPENDENT)

    def test_phase1_90_percent(self):
        aebs = self.make()
        v = 20.0
        ttc_target = v / 3.8 * 0.95
        state = aebs.update(v, True, rd=ttc_target * 10.0, rs=10.0, dt=DT)
        assert state.phase == 1
        assert state.brake_accel == pytest.approx(-0.90 * G)

    def test_phase2_95_percent(self):
        aebs = self.make()
        v = 20.0
        ttc_target = v / 5.8 * 0.95
        state = aebs.update(v, True, rd=ttc_target * 10.0, rs=10.0, dt=DT)
        assert state.phase == 2
        assert state.brake_accel == pytest.approx(-0.95 * G)

    def test_phase3_full_braking(self):
        aebs = self.make()
        v = 20.0
        ttc_target = v / 9.8 * 0.9
        state = aebs.update(v, True, rd=ttc_target * 10.0, rs=10.0, dt=DT)
        assert state.phase == 3
        assert state.brake_accel == pytest.approx(-G)

    def test_fcw_before_braking(self):
        aebs = self.make()
        v = 20.0
        # TTC between t_pb1 and t_fcw: warning only.
        ttc = (v / 3.8 + 2.5 + v / 4.9) / 2
        state = aebs.update(v, True, rd=ttc * 10.0, rs=10.0, dt=DT)
        assert state.fcw
        assert state.phase == 0

    def test_no_threat_no_action(self):
        aebs = self.make()
        state = aebs.update(20.0, True, rd=200.0, rs=5.0, dt=DT)
        assert not state.fcw
        assert state.phase == 0
        assert state.ttc == pytest.approx(40.0)


class TestConfigs:
    def test_disabled_never_brakes_but_warns(self):
        aebs = Aebs(AebsConfig.DISABLED)
        state = aebs.update(20.0, True, rd=5.0, rs=10.0, dt=DT)
        assert state.fcw
        assert state.phase == 0
        assert state.brake_accel == 0.0

    def test_inhibited_below_min_speed(self):
        aebs = Aebs(AebsConfig.INDEPENDENT)
        state = aebs.update(0.2, True, rd=1.0, rs=1.0, dt=DT)
        assert state.phase == 0

    def test_no_trigger_when_opening(self):
        aebs = Aebs(AebsConfig.INDEPENDENT)
        state = aebs.update(20.0, True, rd=10.0, rs=-2.0, dt=DT)
        assert state.phase == 0
        assert math.isinf(state.ttc)


class TestLatchBehaviour:
    def test_escalation_while_threat_grows(self):
        aebs = Aebs(AebsConfig.INDEPENDENT)
        v = 20.0
        aebs.update(v, True, rd=v / 3.8 * 10.0 * 0.95, rs=10.0, dt=DT)
        state = aebs.update(v, True, rd=v / 9.8 * 10.0 * 0.9, rs=10.0, dt=DT)
        assert state.phase == 3

    def test_no_deescalation_mid_manoeuvre(self):
        aebs = Aebs(AebsConfig.INDEPENDENT)
        v = 20.0
        aebs.update(v, True, rd=v / 9.8 * 10.0 * 0.9, rs=10.0, dt=DT)
        state = aebs.update(v, True, rd=v / 3.8 * 10.0 * 0.99, rs=10.0, dt=DT)
        assert state.phase == 3  # stays at full braking

    def test_release_requires_sustained_recovery(self):
        aebs = Aebs(AebsConfig.INDEPENDENT, AebsParams(release_sustain=0.5))
        v = 20.0
        aebs.update(v, True, rd=40.0, rs=10.0, dt=DT)  # engage
        assert aebs.update(v, True, rd=200.0, rs=1.0, dt=DT).phase > 0
        for _ in range(60):  # 0.6 s of clear recovery
            state = aebs.update(v, True, rd=200.0, rs=1.0, dt=DT)
        assert state.phase == 0

    def test_standstill_hold_with_obstacle(self):
        aebs = Aebs(AebsConfig.INDEPENDENT)
        aebs.update(20.0, True, rd=20.0, rs=10.0, dt=DT)  # engage
        # Stopped with a stopped obstacle 1 m ahead: hold forever.
        for _ in range(1000):
            state = aebs.update(0.0, True, rd=1.0, rs=0.0, dt=DT)
        assert state.phase > 0

    def test_standstill_release_when_clear(self):
        aebs = Aebs(AebsConfig.INDEPENDENT, AebsParams(standstill_hold=0.2))
        aebs.update(20.0, True, rd=20.0, rs=10.0, dt=DT)
        for _ in range(100):  # 1 s stopped, lead departed
            state = aebs.update(0.0, True, rd=30.0, rs=-5.0, dt=DT)
        assert state.phase == 0

    def test_reset(self):
        aebs = Aebs(AebsConfig.INDEPENDENT)
        aebs.update(20.0, True, rd=20.0, rs=10.0, dt=DT)
        aebs.reset()
        state = aebs.update(20.0, True, rd=200.0, rs=1.0, dt=DT)
        assert state.phase == 0


class TestSafetyChecker:
    def test_clamps_acceleration_to_iso_envelope(self):
        checker = SafetyChecker()
        out = checker.check(AdasCommand(accel=5.0, steer=0.0), DT)
        assert out.accel == 2.0
        out = checker.check(AdasCommand(accel=-9.0, steer=0.0), DT)
        assert out.accel == -3.5

    def test_blocks_panic_braking(self):
        # The conservative ISO 22179 design: the checker caps even
        # legitimate panic braking (the paper's design tension).
        checker = SafetyChecker()
        out = checker.check(AdasCommand(accel=-9.0, steer=0.0), DT)
        assert out.accel == pytest.approx(-3.5)

    def test_passes_safe_commands(self):
        checker = SafetyChecker()
        out = checker.check(AdasCommand(accel=1.0, steer=0.01), DT)
        assert out.accel == 1.0

    def test_steering_rate_limit(self):
        checker = SafetyChecker(SafetyCheckerParams(max_steer_rate=0.1))
        out = checker.check(AdasCommand(accel=0.0, steer=0.4), DT)
        assert out.steer == pytest.approx(0.1 * DT)

    def test_counts_blocked_commands(self):
        checker = SafetyChecker()
        checker.check(AdasCommand(accel=-9.0, steer=0.0), DT)
        checker.check(AdasCommand(accel=0.0, steer=0.0), DT)
        assert checker.blocked_accel_count == 1

    def test_reset_clears_state(self):
        checker = SafetyChecker()
        checker.check(AdasCommand(accel=-9.0, steer=0.4), DT)
        checker.reset()
        assert checker.blocked_accel_count == 0
        out = checker.check(AdasCommand(accel=0.0, steer=0.0), DT)
        assert out.steer == 0.0

    def test_dt_validation(self):
        with pytest.raises(ValueError):
            SafetyChecker().check(AdasCommand(0.0, 0.0), 0.0)
