"""Unit tests for the ADAS stack: perception, tracker, planners, controlsd."""

import math

import pytest

from repro.adas.controlsd import ControlsD
from repro.adas.lat_planner import LatPlanner
from repro.adas.lead_tracker import LeadTracker
from repro.adas.long_planner import LongPlanner, LongPlannerParams
from repro.adas.perception import PerceptionModel, PerceptionOutput, PerceptionParams
from repro.sim.agents import AgentBinding, CruiseBehavior
from repro.sim.sensors import GroundTruthSensor
from repro.sim.track import build_straight_map
from repro.sim.vehicle import EgoVehicle, KinematicActor
from repro.sim.world import World
from repro.utils.rng import RngStreams

DT = 0.01


def frame(lead_valid=True, rd=40.0, rs=5.0, curvature=0.0):
    return PerceptionOutput(
        lead_valid=lead_valid,
        lead_rd=rd,
        lead_rs=rs,
        lane_left=0.9,
        lane_right=0.9,
        desired_curvature=curvature,
    )


def make_perception(lead_gap=40.0, lead_lane_d=0.0, noise=True):
    road = build_straight_map()
    ego = EgoVehicle(road, s=50.0, d=0.0, speed=20.0)
    world = World(road, ego)
    lead_s = ego.front_s + lead_gap + 2.35
    lv = KinematicActor(road, s=lead_s, d=lead_lane_d, speed=13.0, name="LV")
    world.add_agent(AgentBinding(lv, CruiseBehavior(13.0)))
    params = PerceptionParams() if noise else PerceptionParams(
        rd_noise=0.0, rs_noise=0.0, lane_noise=0.0, curvature_noise=0.0
    )
    model = PerceptionModel(GroundTruthSensor(world), RngStreams(3), params)
    return world, model


class TestPerception:
    def test_detects_lead_in_range(self):
        world, model = make_perception(lead_gap=40.0)
        out = model.run(DT)
        assert out.lead_valid
        assert out.lead_rd == pytest.approx(40.0, abs=1.0)

    def test_close_range_blind_spot(self):
        world, model = make_perception(lead_gap=1.5)
        out = model.run(DT)
        assert not out.lead_valid  # the paper's <2 m detection failure

    def test_out_of_range_not_detected(self):
        world, model = make_perception(lead_gap=140.0)
        out = model.run(DT)
        assert not out.lead_valid

    def test_lane_distances_noisy_but_centred(self):
        world, model = make_perception(noise=False)
        out = model.run(DT)
        expected = (3.7 - world.ego.params.width) / 2
        assert out.lane_left == pytest.approx(expected, abs=0.01)
        assert out.lane_right == pytest.approx(expected, abs=0.01)

    def test_centering_feedback_opposes_offset(self):
        world, model = make_perception(noise=False)
        world.ego.d = 0.5  # offset left of centre
        for _ in range(100):
            out = model.run(DT)
        assert out.desired_curvature < 0.0  # steer right, back to centre

    def test_feedback_recenters_on_adjacent_lane(self):
        world, model = make_perception(noise=False)
        world.ego.d = 3.7  # fully in the adjacent lane
        for _ in range(100):
            out = model.run(DT)
        # no offset relative to the (new) nearest lane -> ~zero feedback
        assert abs(out.desired_curvature) < 1e-3

    def test_fi_rewrite_helpers(self):
        out = frame(rd=40.0)
        assert out.with_lead(rd=70.0).lead_rd == 70.0
        assert out.with_curvature(0.01).desired_curvature == 0.01
        # original is immutable
        assert out.lead_rd == 40.0


class TestLeadTracker:
    def test_initialises_on_first_detection(self):
        tracker = LeadTracker()
        lead = tracker.update(frame(rd=40.0, rs=5.0), DT)
        assert lead.valid
        assert lead.rd == pytest.approx(40.0)

    def test_smooths_noise(self):
        tracker = LeadTracker()
        tracker.update(frame(rd=40.0, rs=5.0), DT)
        lead = tracker.update(frame(rd=43.0, rs=5.0), DT)  # outlier
        assert lead.rd < 42.0

    def test_coasts_through_dropout(self):
        tracker = LeadTracker(coast_time=0.3)
        tracker.update(frame(rd=40.0, rs=5.0), DT)
        for _ in range(10):  # 0.1 s dropout
            lead = tracker.update(frame(lead_valid=False), DT)
        assert lead.valid
        assert lead.rd < 40.0  # predicted forward

    def test_invalidates_after_sustained_loss(self):
        tracker = LeadTracker(coast_time=0.3)
        tracker.update(frame(rd=40.0, rs=5.0), DT)
        for _ in range(40):  # 0.4 s
            lead = tracker.update(frame(lead_valid=False), DT)
        assert not lead.valid

    def test_gain_validation(self):
        with pytest.raises(ValueError):
            LeadTracker(alpha=0.0)

    def test_reset(self):
        tracker = LeadTracker()
        tracker.update(frame(), DT)
        tracker.reset()
        assert not tracker.current().valid


class TestLongPlanner:
    def test_cruises_to_set_speed(self):
        planner = LongPlanner(set_speed=22.35)
        from repro.adas.lead_tracker import TrackedLead

        accel = planner.plan(15.0, TrackedLead(False, 0.0, 0.0))
        assert accel > 0.5

    def test_no_lead_no_braking(self):
        planner = LongPlanner(set_speed=22.35)
        from repro.adas.lead_tracker import TrackedLead

        accel = planner.plan(22.35, TrackedLead(False, 0.0, 0.0))
        assert abs(accel) < 0.2

    def test_desired_gap_formula(self):
        planner = LongPlanner(set_speed=22.35)
        p = planner.params
        assert planner.desired_gap(13.4) == pytest.approx(p.min_gap + p.time_gap * 13.4)

    def test_late_braking_profile(self):
        # Far away and closing slowly: keep cruising (the documented
        # OpenPilot "aggressive late braking").
        planner = LongPlanner(set_speed=22.35)
        from repro.adas.lead_tracker import TrackedLead

        far = planner.plan(22.35, TrackedLead(True, 120.0, 9.0))
        assert far >= -0.1
        close = planner.plan(22.35, TrackedLead(True, 45.0, 9.0))
        assert close < -1.5

    def test_panic_braking_below_ttc(self):
        planner = LongPlanner(set_speed=22.35)
        from repro.adas.lead_tracker import TrackedLead

        accel = planner.plan(20.0, TrackedLead(True, 8.0, 9.0))  # ttc 0.9 s
        assert accel == pytest.approx(-planner.params.panic_decel)

    def test_panic_exceeds_iso_envelope(self):
        # The raw planner output can exceed the ISO/PANDA -3.5 envelope;
        # the firmware checker is what clamps it (the paper's tension).
        assert LongPlannerParams().panic_decel > 3.5

    def test_gap_regulation_when_not_closing(self):
        planner = LongPlanner(set_speed=22.35)
        from repro.adas.lead_tracker import TrackedLead

        # At the desired gap with zero closing: nearly zero accel.
        v = 13.4
        gap = planner.desired_gap(v)
        accel = planner.plan(v, TrackedLead(True, gap, 0.0))
        assert abs(accel) < 0.3

    def test_set_speed_validation(self):
        with pytest.raises(ValueError):
            LongPlanner(set_speed=0.0)


class TestLatPlanner:
    def test_zero_curvature_zero_steer(self):
        planner = LatPlanner()
        assert planner.plan(0.0, DT) == 0.0

    def test_converges_to_bicycle_angle(self):
        planner = LatPlanner()
        steer = 0.0
        for _ in range(200):
            steer = planner.plan(0.01, DT)
        assert steer == pytest.approx(math.atan(2.7 * 0.01), abs=1e-4)

    def test_smoothing_delays_response(self):
        planner = LatPlanner()
        first = planner.plan(0.01, DT)
        assert first < math.atan(2.7 * 0.01) * 0.5

    def test_saturation(self):
        planner = LatPlanner()
        steer = 0.0
        for _ in range(2000):
            steer = planner.plan(10.0, DT)
        assert steer == planner.params.max_steer


class TestControlsD:
    def test_full_loop_produces_command(self):
        controls = ControlsD(set_speed=22.35)
        cmd = controls.update(frame(rd=30.0, rs=9.0), 22.0, DT)
        assert cmd.accel < 0.0  # closing fast at 30 m: braking
        assert isinstance(cmd.steer, float)

    def test_reset_clears_state(self):
        controls = ControlsD(set_speed=22.35)
        controls.update(frame(), 20.0, DT)
        controls.reset()
        assert not controls.last_lead.valid
        assert controls.last_command.accel == 0.0
