"""Unit tests for repro.utils.units."""

import math

import pytest

from repro.utils.units import (
    G,
    MPH_TO_MS,
    deg_to_rad,
    kmh_to_ms,
    mph_to_ms,
    ms_to_kmh,
    ms_to_mph,
    rad_to_deg,
)


def test_g_matches_paper_full_brake_divisor():
    # Eq. 4 uses t_fb = V / 9.8, i.e. full braking decelerates at G.
    assert G == 9.8


def test_mph_round_trip():
    assert ms_to_mph(mph_to_ms(50.0)) == pytest.approx(50.0)


def test_fifty_mph_value():
    assert mph_to_ms(50.0) == pytest.approx(22.352, abs=1e-3)


def test_thirty_mph_value():
    assert mph_to_ms(30.0) == pytest.approx(13.4112, abs=1e-3)


def test_kmh_round_trip():
    assert ms_to_kmh(kmh_to_ms(100.0)) == pytest.approx(100.0)


def test_kmh_definition():
    assert kmh_to_ms(36.0) == pytest.approx(10.0)


def test_mph_constant_consistency():
    assert mph_to_ms(1.0) == pytest.approx(MPH_TO_MS)


def test_deg_rad_round_trip():
    assert rad_to_deg(deg_to_rad(37.5)) == pytest.approx(37.5)


def test_deg_to_rad_right_angle():
    assert deg_to_rad(90.0) == pytest.approx(math.pi / 2)
