"""Unit tests for the priority arbitration (AEB > driver > ML > ADAS)."""

import pytest

from repro.adas.controlsd import AdasCommand
from repro.safety.aebs import AebsConfig, AebsState
from repro.safety.arbitration import Arbitrator, InterventionConfig
from repro.safety.driver import DriverAction

DT = 0.01


def aeb_state(phase=0, brake=0.0, fcw=False):
    return AebsState(fcw=fcw, phase=phase, brake_accel=brake, ttc=5.0)


def driver_action(brake=False, brake_accel=0.0, steer=False, steer_angle=0.0):
    return DriverAction(
        brake_active=brake,
        brake_accel=brake_accel,
        steer_active=steer,
        steer_angle=steer_angle,
    )


def resolve(arb, adas=AdasCommand(1.0, 0.01), ml=None, ml_rec=False, aeb=None, drv=None,
            steer_now=0.0):
    return arb.resolve(
        adas_cmd=adas,
        ml_cmd=ml,
        ml_recovery=ml_rec,
        aebs_state=aeb,
        driver_action=drv,
        current_steer=steer_now,
        dt=DT,
    )


class TestBasePath:
    def test_adas_passthrough(self):
        arb = Arbitrator(InterventionConfig())
        final = resolve(arb)
        assert final.accel == 1.0
        assert final.long_authority == "adas"

    def test_ml_recovery_replaces_adas(self):
        arb = Arbitrator(InterventionConfig(ml=True))
        final = resolve(arb, ml=AdasCommand(-2.0, 0.0), ml_rec=True)
        assert final.accel == -2.0
        assert final.long_authority == "ml"

    def test_ml_inactive_uses_adas(self):
        arb = Arbitrator(InterventionConfig(ml=True))
        final = resolve(arb, ml=AdasCommand(-2.0, 0.0), ml_rec=False)
        assert final.accel == 1.0

    def test_checker_clamps_base_path(self):
        arb = Arbitrator(InterventionConfig(safety_check=True))
        final = resolve(arb, adas=AdasCommand(-9.0, 0.0))
        assert final.accel == -3.5

    def test_checker_does_not_clamp_aeb(self):
        arb = Arbitrator(InterventionConfig(safety_check=True, aeb=AebsConfig.INDEPENDENT))
        final = resolve(arb, aeb=aeb_state(phase=3, brake=-9.8))
        assert final.accel == -9.8

    def test_checker_does_not_clamp_driver(self):
        arb = Arbitrator(InterventionConfig(safety_check=True, driver=True))
        final = resolve(arb, drv=driver_action(brake=True, brake_accel=-6.5))
        assert final.accel == -6.5


class TestPriorities:
    def test_aeb_beats_driver_longitudinal(self):
        arb = Arbitrator(InterventionConfig(driver=True, aeb=AebsConfig.INDEPENDENT))
        final = resolve(
            arb,
            aeb=aeb_state(phase=1, brake=-8.82),
            drv=driver_action(brake=True, brake_accel=-6.5),
        )
        assert final.accel == -8.82
        assert final.long_authority == "aeb"

    def test_aeb_blocks_driver_steering(self):
        arb = Arbitrator(InterventionConfig(driver=True, aeb=AebsConfig.INDEPENDENT))
        final = resolve(
            arb,
            aeb=aeb_state(phase=1, brake=-8.82),
            drv=driver_action(steer=True, steer_angle=0.2),
        )
        assert final.steer != 0.2  # stays with the base path
        assert arb.stats.aeb_blocked_driver_steps == 1

    def test_priority_ablation_lets_driver_steer_under_aeb(self):
        arb = Arbitrator(
            InterventionConfig(
                driver=True, aeb=AebsConfig.INDEPENDENT, aeb_overrides_driver=False
            )
        )
        final = resolve(
            arb,
            aeb=aeb_state(phase=1, brake=-8.82),
            drv=driver_action(steer=True, steer_angle=0.2),
        )
        assert final.steer == 0.2

    def test_driver_brake_freezes_steering(self):
        arb = Arbitrator(InterventionConfig(driver=True))
        final = resolve(
            arb,
            drv=driver_action(brake=True, brake_accel=-6.5),
            steer_now=0.123,
        )
        assert final.accel == -6.5
        assert final.steer == 0.123  # Table II: no change in steering angle
        assert final.lat_authority == "frozen"

    def test_frozen_steer_held_across_steps(self):
        arb = Arbitrator(InterventionConfig(driver=True))
        resolve(arb, drv=driver_action(brake=True, brake_accel=-6.5), steer_now=0.1)
        final = resolve(
            arb, drv=driver_action(brake=True, brake_accel=-6.5), steer_now=0.05
        )
        assert final.steer == 0.1  # frozen at braking onset, not current

    def test_freeze_clears_after_brake_ends(self):
        arb = Arbitrator(InterventionConfig(driver=True))
        resolve(arb, drv=driver_action(brake=True, brake_accel=-6.5), steer_now=0.1)
        resolve(arb, drv=driver_action())
        final = resolve(
            arb, drv=driver_action(brake=True, brake_accel=-6.5), steer_now=0.2
        )
        assert final.steer == 0.2  # new freeze at the new onset angle

    def test_driver_steering_without_brake(self):
        arb = Arbitrator(InterventionConfig(driver=True))
        final = resolve(arb, drv=driver_action(steer=True, steer_angle=-0.1))
        assert final.steer == -0.1
        assert final.driver_steering
        assert final.lat_authority == "driver"


class TestLabels:
    def test_default_label(self):
        assert InterventionConfig().label() == "none"

    def test_combined_label(self):
        cfg = InterventionConfig(driver=True, safety_check=True, aeb=AebsConfig.INDEPENDENT)
        assert cfg.label() == "driver+check+aeb_independent"

    def test_custom_name_wins(self):
        assert InterventionConfig(name="row7").label() == "row7"

    def test_reset_clears_stats(self):
        arb = Arbitrator(InterventionConfig(driver=True, aeb=AebsConfig.INDEPENDENT))
        resolve(arb, aeb=aeb_state(phase=1, brake=-8.82),
                drv=driver_action(steer=True, steer_angle=0.2))
        arb.reset()
        assert arb.stats.aeb_blocked_driver_steps == 0
