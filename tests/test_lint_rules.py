"""Per-rule fixture tests for ``repro lint``.

One class per built-in rule.  Every class proves both directions of the
contract from the same fixture: the hazard is *detected* (the acceptance
criterion for the rule existing at all) and a ``# repro-lint: disable=``
pragma on the flagged line *suppresses* it (the escape hatch the shipped
tree's justified exceptions rely on).  Role-scoped rules additionally
prove they stay silent on files without the role.
"""

import textwrap

import pytest

from repro.lint import lint_file
from repro.lint.rules import get_rule, registered_rules

#: Every rule the tentpole ships; the registry test pins the set.
BUILTIN_RULES = (
    "unseeded-rng",
    "wall-clock-digest",
    "env-read-in-canonical",
    "unsorted-fs-iteration",
    "set-ordering",
    "unpicklable-submission",
    "canonical-float-format",
    "swallowed-exception",
)


def run_rule(rule_id, source, path="fixture.py"):
    """Findings of one rule over an in-memory fixture file."""
    return lint_file(
        path, rules=[get_rule(rule_id)], source=textwrap.dedent(source)
    )


def test_builtin_rules_registered_in_order():
    assert registered_rules() == BUILTIN_RULES


class TestUnseededRng:
    def test_detects_global_random_call(self):
        findings = run_rule(
            "unseeded-rng",
            """\
            import random
            value = random.random()
            """,
        )
        assert [f.line for f in findings] == [2]
        assert "random.random()" in findings[0].message

    def test_detects_legacy_numpy_global(self):
        findings = run_rule(
            "unseeded-rng",
            """\
            import numpy as np
            noise = np.random.rand(3)
            np.random.seed(0)
            """,
        )
        assert [f.line for f in findings] == [2, 3]

    def test_seeded_constructors_allowed(self):
        findings = run_rule(
            "unseeded-rng",
            """\
            import numpy as np
            rng = np.random.default_rng(7)
            gen = np.random.Generator(np.random.PCG64(7))
            """,
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = run_rule(
            "unseeded-rng",
            """\
            import random
            value = random.random()  # repro-lint: disable=unseeded-rng
            """,
        )
        assert findings == []


class TestWallClockDigest:
    FIXTURE = """\
    # repro-lint: role=canonical
    import time
    stamp = time.time()
    """

    def test_detects_in_canonical_role(self):
        findings = run_rule("wall-clock-digest", self.FIXTURE)
        assert [f.line for f in findings] == [3]
        assert "time.time()" in findings[0].message

    def test_silent_without_role(self):
        source = self.FIXTURE.replace("# repro-lint: role=canonical", "")
        assert run_rule("wall-clock-digest", source) == []

    def test_role_from_path_suffix(self):
        findings = run_rule(
            "wall-clock-digest",
            "import time\nstamp = time.time()\n",
            path="src/repro/core/cache.py",
        )
        assert [f.line for f in findings] == [2]

    def test_detects_datetime_now(self):
        findings = run_rule(
            "wall-clock-digest",
            """\
            # repro-lint: role=canonical
            from datetime import datetime
            when = datetime.now()
            """,
        )
        assert [f.line for f in findings] == [3]

    def test_pragma_suppresses(self):
        source = self.FIXTURE.replace(
            "stamp = time.time()",
            "stamp = time.time()  # repro-lint: disable=wall-clock-digest",
        )
        assert run_rule("wall-clock-digest", source) == []


class TestEnvReadInCanonical:
    FIXTURE = """\
    # repro-lint: role=canonical
    import os
    root = os.environ.get("REPRO_CACHE_DIR")
    """

    def test_detects_environ_get_in_canonical_role(self):
        findings = run_rule("env-read-in-canonical", self.FIXTURE)
        assert [f.line for f in findings] == [3]
        assert "os.environ.get" in findings[0].message

    def test_detects_getenv_and_subscript(self):
        findings = run_rule(
            "env-read-in-canonical",
            """\
            # repro-lint: role=canonical
            import os
            a = os.getenv("REPRO_JOBS")
            b = os.environ["HOME"]
            """,
        )
        assert [f.line for f in findings] == [3, 4]

    def test_detects_bare_imports(self):
        findings = run_rule(
            "env-read-in-canonical",
            """\
            # repro-lint: role=canonical
            from os import environ, getenv
            a = getenv("X")
            b = environ.get("Y")
            c = environ["Z"]
            """,
        )
        assert [f.line for f in findings] == [3, 4, 5]

    def test_silent_without_role(self):
        source = self.FIXTURE.replace("# repro-lint: role=canonical", "")
        assert run_rule("env-read-in-canonical", source) == []

    def test_worker_modules_out_of_scope(self):
        # Default resolution (REPRO_JOBS, REPRO_BATCH_LANES) lives in
        # worker-role modules and must stay lintable.
        findings = run_rule(
            "env-read-in-canonical",
            'import os\njobs = os.environ.get("REPRO_JOBS")\n',
            path="src/repro/core/executor.py",
        )
        assert findings == []

    def test_role_from_path_suffix(self):
        findings = run_rule(
            "env-read-in-canonical",
            'import os\nroot = os.environ.get("REPRO_CACHE_DIR")\n',
            path="src/repro/core/cache.py",
        )
        assert [f.line for f in findings] == [2]

    def test_pragma_suppresses(self):
        source = self.FIXTURE.replace(
            'root = os.environ.get("REPRO_CACHE_DIR")',
            'root = os.environ.get("REPRO_CACHE_DIR")'
            "  # repro-lint: disable=env-read-in-canonical",
        )
        assert run_rule("env-read-in-canonical", source) == []


class TestUnsortedFsIteration:
    def test_detects_listdir_and_glob(self):
        findings = run_rule(
            "unsorted-fs-iteration",
            """\
            import glob
            import os
            for name in os.listdir("cache"):
                print(name)
            shards = glob.glob("*.jsonl")
            """,
        )
        assert [f.line for f in findings] == [3, 5]

    def test_detects_pathlib_iterdir(self):
        findings = run_rule(
            "unsorted-fs-iteration",
            """\
            from pathlib import Path
            entries = list(Path("cache").iterdir())
            """,
        )
        assert [f.line for f in findings] == [2]

    def test_sorted_wrap_allowed(self):
        findings = run_rule(
            "unsorted-fs-iteration",
            """\
            import os
            for name in sorted(os.listdir("cache")):
                print(name)
            count = len(os.listdir("cache"))
            """,
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = run_rule(
            "unsorted-fs-iteration",
            """\
            import os
            names = os.listdir("cache")  # repro-lint: disable=unsorted-fs-iteration
            """,
        )
        assert findings == []


class TestSetOrdering:
    def test_detects_iteration_join_and_pop(self):
        findings = run_rule(
            "set-ordering",
            """\
            def emit(results):
                labels = {r.label for r in results}
                for label in labels:
                    print(label)
                token = ",".join(labels)
                first = labels.pop()
                return token, first
            """,
        )
        assert [f.line for f in findings] == [3, 5, 6]

    def test_detects_list_of_set_literal(self):
        findings = run_rule(
            "set-ordering",
            "order = list({'b', 'a'})\n",
        )
        assert [f.line for f in findings] == [1]

    def test_order_insensitive_consumption_allowed(self):
        findings = run_rule(
            "set-ordering",
            """\
            def emit(results):
                labels = {r.label for r in results}
                for label in sorted(labels):
                    print(label)
                return len(labels), max(labels)
            """,
        )
        assert findings == []

    def test_reassigned_name_not_tracked(self):
        # A name later bound to a sorted list must not stay "set-typed".
        findings = run_rule(
            "set-ordering",
            """\
            def emit(results):
                labels = {r.label for r in results}
                labels = sorted(labels)
                for label in labels:
                    print(label)
            """,
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = run_rule(
            "set-ordering",
            """\
            def emit(labels_in):
                labels = set(labels_in)
                for label in labels:  # repro-lint: disable=set-ordering
                    print(label)
            """,
        )
        assert findings == []


class TestUnpicklableSubmission:
    def test_detects_lambda_and_nested_function(self):
        findings = run_rule(
            "unpicklable-submission",
            """\
            def dispatch(pool, items):
                def run_one(item):
                    return item

                pool.submit(lambda: items[0])
                pool.submit(run_one, items[1])
            """,
        )
        assert [f.line for f in findings] == [5, 6]
        assert "run_one" in findings[1].message

    def test_module_level_function_allowed(self):
        findings = run_rule(
            "unpicklable-submission",
            """\
            def run_one(item):
                return item

            def dispatch(pool, items):
                pool.submit(run_one, items[0])
            """,
        )
        assert findings == []

    def test_local_only_keywords_exempt(self):
        findings = run_rule(
            "unpicklable-submission",
            """\
            def dispatch(plan, backend):
                dispatch_campaign(
                    plan,
                    backend,
                    log=lambda message: None,
                    progress=lambda done, total: None,
                )
            """,
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = run_rule(
            "unpicklable-submission",
            """\
            def dispatch(pool, items):
                pool.submit(lambda: items[0])  # repro-lint: disable=unpicklable-submission
            """,
        )
        assert findings == []


class TestCanonicalFloatFormat:
    FIXTURE = """\
    # repro-lint: role=canonical
    def token(gap):
        return f"gap={gap:.0f}"
    """

    def test_detects_precision_fstring(self):
        findings = run_rule("canonical-float-format", self.FIXTURE)
        assert [f.line for f in findings] == [3]
        assert "'.0f'" in findings[0].message
        assert "canonical_scalar" in findings[0].message

    def test_detects_format_builtin(self):
        findings = run_rule(
            "canonical-float-format",
            """\
            # repro-lint: role=canonical
            text = format(0.1234, ".3g")
            """,
        )
        assert [f.line for f in findings] == [2]

    def test_lossless_specs_allowed(self):
        findings = run_rule(
            "canonical-float-format",
            """\
            # repro-lint: role=canonical
            def render(name, count):
                return f"{name:<18} {count:d} {count:>6}"
            """,
        )
        assert findings == []

    def test_silent_without_role(self):
        source = self.FIXTURE.replace("# repro-lint: role=canonical", "")
        assert run_rule("canonical-float-format", source) == []

    def test_pragma_suppresses(self):
        source = self.FIXTURE.replace(
            'return f"gap={gap:.0f}"',
            'return f"gap={gap:.0f}"  # repro-lint: disable=canonical-float-format',
        )
        assert run_rule("canonical-float-format", source) == []


class TestSwallowedException:
    def test_detects_bare_except_anywhere(self):
        findings = run_rule(
            "swallowed-exception",
            """\
            def load(path):
                try:
                    return open(path).read()
                except:
                    pass
            """,
        )
        assert [f.line for f in findings] == [4]

    def test_detects_noop_blanket_in_worker_role(self):
        findings = run_rule(
            "swallowed-exception",
            """\
            # repro-lint: role=worker
            def collect(shards):
                for shard in shards:
                    try:
                        shard.load()
                    except Exception:
                        pass
            """,
        )
        assert [f.line for f in findings] == [6]

    def test_noop_blanket_ignored_without_worker_role(self):
        findings = run_rule(
            "swallowed-exception",
            """\
            def collect(shards):
                try:
                    shards.load()
                except Exception:
                    pass
            """,
        )
        assert findings == []

    def test_narrow_or_acting_handlers_allowed(self):
        findings = run_rule(
            "swallowed-exception",
            """\
            # repro-lint: role=worker
            import os

            def cleanup(path, proc):
                try:
                    os.remove(path)
                except OSError:
                    pass
                try:
                    proc.wait()
                except Exception:
                    proc.kill()
            """,
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = run_rule(
            "swallowed-exception",
            """\
            def load(path):
                try:
                    return open(path).read()
                except:  # repro-lint: disable=swallowed-exception
                    pass
            """,
        )
        assert findings == []


@pytest.mark.parametrize("rule_id", BUILTIN_RULES)
def test_every_rule_has_catalog_metadata(rule_id):
    rule = get_rule(rule_id)
    assert rule.rule_id == rule_id
    assert rule.title
    assert rule.severity in ("error", "warning")
