"""Unit tests for the fault-injection engine and attack models (Table III)."""

import pytest

from repro.attacks.campaign import ATTACK_FAULT_TYPES, CampaignSpec, enumerate_campaign
from repro.attacks.fi import FaultInjectionEngine, FaultType
from repro.attacks.patches import (
    CurvaturePatchAttack,
    MixedAttack,
    RelativeDistanceAttack,
    build_attack,
)
from repro.sim.agents import AgentBinding, CruiseBehavior
from repro.sim.sensors import GroundTruthSensor
from repro.sim.track import build_straight_map
from repro.sim.vehicle import EgoVehicle, KinematicActor
from repro.sim.world import World
from repro.adas.perception import PerceptionOutput


def frame(lead_valid=True, rd=40.0, rs=5.0, curvature=0.0):
    return PerceptionOutput(
        lead_valid=lead_valid,
        lead_rd=rd,
        lead_rs=rs,
        lane_left=0.9,
        lane_right=0.9,
        desired_curvature=curvature,
    )


def make_sensor(lead_gap=40.0, ego_s=50.0):
    road = build_straight_map()
    ego = EgoVehicle(road, s=ego_s, d=0.0, speed=20.0)
    world = World(road, ego)
    if lead_gap is not None:
        lead_s = ego.front_s + lead_gap + 2.35
        lv = KinematicActor(road, s=lead_s, d=0.0, speed=13.0, name="LV")
        world.add_agent(AgentBinding(lv, CruiseBehavior(13.0)))
    return GroundTruthSensor(world)


class TestRelativeDistanceAttack:
    def test_table3_offset_schedule(self):
        attack = RelativeDistanceAttack()
        assert attack.offset_for(100.0) is None  # out of trigger range
        assert attack.offset_for(60.0) == 10.0
        assert attack.offset_for(24.0) == 15.0
        assert attack.offset_for(15.0) == 38.0

    def test_boundaries(self):
        attack = RelativeDistanceAttack()
        assert attack.offset_for(80.0) is None
        assert attack.offset_for(79.99) == 10.0
        assert attack.offset_for(25.0) == 10.0
        assert attack.offset_for(20.0) == 15.0

    def test_engine_inflates_rd(self):
        sensor = make_sensor(lead_gap=60.0)
        engine = FaultInjectionEngine(RelativeDistanceAttack(), sensor)
        out = engine.apply(frame(rd=60.0), time=1.0)
        assert out.lead_rd == pytest.approx(70.0)
        assert engine.rd_active
        assert engine.first_activation == 1.0

    def test_engine_inactive_beyond_range(self):
        sensor = make_sensor(lead_gap=100.0)
        engine = FaultInjectionEngine(RelativeDistanceAttack(), sensor)
        out = engine.apply(frame(rd=100.0), time=1.0)
        assert out.lead_rd == pytest.approx(100.0)
        assert not engine.rd_active

    def test_cannot_resurrect_blind_lead(self):
        # Below the perception blind range the lead frame is invalid;
        # the patch cannot restore detection (the Fig. 6 cascade).
        sensor = make_sensor(lead_gap=1.5)
        engine = FaultInjectionEngine(RelativeDistanceAttack(), sensor)
        out = engine.apply(frame(lead_valid=False, rd=0.0), time=1.0)
        assert not out.lead_valid


class TestCurvatureAttack:
    def test_bias_is_three_percent_of_range(self):
        attack = CurvaturePatchAttack()
        assert attack.curvature_bias == pytest.approx(
            attack.deviation_fraction * attack.curvature_range
        )
        assert attack.deviation_fraction == 0.03  # the paper's 3 %

    def test_patch_coverage(self):
        attack = CurvaturePatchAttack(patch_s=100.0, patch_length=10.0)
        assert not attack.covers(99.0)
        assert attack.covers(105.0)
        assert not attack.covers(111.0)

    def test_engine_biases_curvature_while_over_patch(self):
        sensor = make_sensor(lead_gap=None, ego_s=105.0)
        attack = CurvaturePatchAttack(patch_s=100.0, patch_length=10.0, duration=2.0)
        engine = FaultInjectionEngine(attack, sensor)
        out = engine.apply(frame(curvature=0.0), time=0.0)
        assert out.desired_curvature == pytest.approx(attack.curvature_bias)
        assert engine.curvature_active

    def test_fault_persists_for_duration_then_expires(self):
        sensor = make_sensor(lead_gap=None, ego_s=105.0)
        attack = CurvaturePatchAttack(patch_s=100.0, patch_length=10.0, duration=2.0)
        engine = FaultInjectionEngine(attack, sensor)
        engine.apply(frame(), time=0.0)
        sensor.world.ego.s = 130.0  # passed the patch
        still = engine.apply(frame(), time=1.5)
        assert still.desired_curvature != 0.0
        expired = engine.apply(frame(), time=130.0)
        assert expired.desired_curvature == 0.0

    def test_sign_selection(self):
        sensor = make_sensor(lead_gap=None, ego_s=105.0)
        attack = CurvaturePatchAttack(patch_s=100.0, patch_length=10.0)
        engine = FaultInjectionEngine(attack, sensor)
        engine.set_curvature_sign(-1.0)
        out = engine.apply(frame(), time=0.0)
        assert out.desired_curvature < 0.0

    def test_sign_validation(self):
        sensor = make_sensor()
        engine = FaultInjectionEngine(CurvaturePatchAttack(), sensor)
        with pytest.raises(ValueError):
            engine.set_curvature_sign(0.5)


class TestMixedAttack:
    def test_close_range_gating(self):
        # The curvature head is perturbed once the ego is close behind the
        # patched lead, even far from the road patch.
        sensor = make_sensor(lead_gap=15.0)
        attack = MixedAttack(
            rd=RelativeDistanceAttack(),
            curvature=CurvaturePatchAttack(patch_s=5000.0),
            curvature_trigger_rd=20.0,
        )
        engine = FaultInjectionEngine(attack, sensor)
        out = engine.apply(frame(rd=15.0), time=0.0)
        assert engine.rd_active
        assert engine.curvature_active
        assert out.desired_curvature != 0.0

    def test_no_curvature_gating_at_medium_range(self):
        sensor = make_sensor(lead_gap=50.0)
        attack = MixedAttack(
            rd=RelativeDistanceAttack(),
            curvature=CurvaturePatchAttack(patch_s=5000.0),
            curvature_trigger_rd=20.0,
        )
        engine = FaultInjectionEngine(attack, sensor)
        out = engine.apply(frame(rd=50.0), time=0.0)
        assert engine.rd_active
        assert not engine.curvature_active


class TestBuildAttack:
    def test_none(self):
        assert build_attack("none") is None
        assert build_attack(None) is None

    def test_types(self):
        assert isinstance(build_attack("relative_distance"), RelativeDistanceAttack)
        assert isinstance(build_attack("desired_curvature"), CurvaturePatchAttack)
        assert isinstance(build_attack("mixed"), MixedAttack)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            build_attack("gps_spoof")

    def test_patch_jitter_from_streams(self):
        from repro.utils.rng import RngStreams

        a = build_attack("desired_curvature", RngStreams(1))
        b = build_attack("desired_curvature", RngStreams(2))
        assert a.patch_s != b.patch_s

    def test_engine_rejects_unknown_object(self):
        sensor = make_sensor()
        with pytest.raises(TypeError):
            FaultInjectionEngine(object(), sensor)


class TestCampaign:
    def test_paper_grid_size(self):
        # 3 fault types x 2 initial positions x 6 scenarios x 10 reps = 360
        episodes = enumerate_campaign(CampaignSpec(repetitions=10))
        assert len(episodes) == 360

    def test_seeds_unique(self):
        episodes = enumerate_campaign(CampaignSpec(repetitions=3))
        seeds = {e.seed for e in episodes}
        assert len(seeds) == len(episodes)

    def test_seeds_stable_across_grids(self):
        # The same cell gets the same seed regardless of which other cells
        # are enumerated (identical-episode comparison across configs).
        full = enumerate_campaign(CampaignSpec(repetitions=2))
        only_rd = enumerate_campaign(
            CampaignSpec(fault_types=[FaultType.RELATIVE_DISTANCE], repetitions=2)
        )
        full_rd = {
            (e.scenario_id, e.initial_gap, e.repetition): e.seed
            for e in full
            if e.fault_type is FaultType.RELATIVE_DISTANCE
        }
        for e in only_rd:
            assert full_rd[(e.scenario_id, e.initial_gap, e.repetition)] == e.seed

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(repetitions=0)
        with pytest.raises(ValueError):
            CampaignSpec(scenario_ids=["S9"])

    def test_attack_fault_types(self):
        assert FaultType.NONE not in ATTACK_FAULT_TYPES
        assert len(ATTACK_FAULT_TYPES) == 3

    def test_episode_label(self):
        episodes = enumerate_campaign(CampaignSpec(repetitions=1))
        assert "S1" in episodes[0].label()
