"""Unit tests for repro.utils.mathx."""

import math

import pytest

from repro.utils.mathx import clamp, interp1d, rate_limit, sign, smoothstep, wrap_angle


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-3.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(7.0, 0.0, 1.0) == 1.0

    def test_degenerate_interval(self):
        assert clamp(5.0, 2.0, 2.0) == 2.0

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(0.0, 1.0, -1.0)


class TestSign:
    def test_positive(self):
        assert sign(3.2) == 1.0

    def test_negative(self):
        assert sign(-0.001) == -1.0

    def test_zero(self):
        assert sign(0.0) == 0.0


class TestWrapAngle:
    def test_identity_in_range(self):
        assert wrap_angle(1.0) == pytest.approx(1.0)

    def test_wraps_over_pi(self):
        assert wrap_angle(math.pi + 0.5) == pytest.approx(-math.pi + 0.5)

    def test_wraps_below_minus_pi(self):
        assert wrap_angle(-math.pi - 0.5) == pytest.approx(math.pi - 0.5)

    def test_large_multiple(self):
        assert wrap_angle(7 * math.pi) == pytest.approx(math.pi)


class TestRateLimit:
    def test_within_rate(self):
        assert rate_limit(0.0, 0.05, 0.1) == pytest.approx(0.05)

    def test_limited_up(self):
        assert rate_limit(0.0, 1.0, 0.1) == pytest.approx(0.1)

    def test_limited_down(self):
        assert rate_limit(0.0, -1.0, 0.1) == pytest.approx(-0.1)

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError):
            rate_limit(0.0, 1.0, -0.1)


class TestInterp1d:
    def test_exact_knot(self):
        assert interp1d(10.0, [0.0, 10.0, 20.0], [1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_midpoint(self):
        assert interp1d(5.0, [0.0, 10.0], [0.0, 1.0]) == pytest.approx(0.5)

    def test_clamps_left(self):
        assert interp1d(-5.0, [0.0, 10.0], [1.0, 2.0]) == 1.0

    def test_clamps_right(self):
        assert interp1d(25.0, [0.0, 10.0], [1.0, 2.0]) == 2.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            interp1d(1.0, [0.0, 1.0], [0.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            interp1d(1.0, [], [])


class TestSmoothstep:
    def test_below_edge(self):
        assert smoothstep(0.0, 1.0, -1.0) == 0.0

    def test_above_edge(self):
        assert smoothstep(0.0, 1.0, 2.0) == 1.0

    def test_midpoint(self):
        assert smoothstep(0.0, 1.0, 0.5) == pytest.approx(0.5)

    def test_monotone(self):
        xs = [i / 20 for i in range(21)]
        ys = [smoothstep(0.0, 1.0, x) for x in xs]
        assert all(b >= a for a, b in zip(ys, ys[1:]))

    def test_equal_edges(self):
        assert smoothstep(1.0, 1.0, 0.5) == 0.0
        assert smoothstep(1.0, 1.0, 1.5) == 1.0
