"""Distributed scheduler tests: plan → dispatch → collect.

Covers the plan decomposition (ShardSpec partitioning, digest identity
including the golden-digest pins for the scheduler path), the worker
backend registry, the three shipped backends (in-process bit-compat with
``run_campaign``, a real subprocess fleet including crash recovery, the
ssh command-template stub), the worker spec-file protocol, and the
collect-phase validation (merge invariants + plan identity + cache
write-through).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.attacks.campaign import CampaignSpec, ShardSpec, enumerate_campaign
from repro.attacks.fi import FaultType
from repro.core.cache import (
    CampaignCache,
    campaign_digest,
    read_digest_sidecar,
    write_digest_sidecar,
)
from repro.core.experiment import run_campaign
from repro.core.metrics import count_records, load_results, save_results
from repro.core.scheduler import (
    CampaignPlan,
    InProcessBackend,
    SSHBackend,
    SchedulerError,
    SubprocessFleetBackend,
    UnknownBackendError,
    WorkerBackend,
    collect_shards,
    dispatch_campaign,
    get_backend,
    load_job_spec,
    make_backend,
    register_backend,
    registered_backends,
    shard_complete,
    shard_path,
    unregister_backend,
    write_job_spec,
)
from repro.safety.arbitration import InterventionConfig
from tests.test_scenario_families import (
    GOLDEN_ATTACK_GRID,
    GOLDEN_FAULT_FREE_GRID,
)

#: A grid small enough for subprocess tests, big enough to shard meaningfully.
SMALL_SPEC = CampaignSpec(
    fault_types=[FaultType.RELATIVE_DISTANCE],
    scenario_ids=("S1", "S2"),
    initial_gaps=(60.0,),
    repetitions=2,
    seed=7,
)
CFG = InterventionConfig(driver=True)
MAX_STEPS = 300


def small_plan(shards=2, spec=SMALL_SPEC, cfg=CFG):
    return CampaignPlan.build(spec, cfg, shards=shards, max_steps=MAX_STEPS)


def serial_reference(spec=SMALL_SPEC, cfg=CFG):
    return run_campaign(spec, cfg, cache=False, max_steps=MAX_STEPS)


# --------------------------------------------------------------------- #
# Plan
# --------------------------------------------------------------------- #


class TestPlan:
    def test_partition_covers_enumeration_in_order(self):
        episodes = enumerate_campaign(SMALL_SPEC)
        for shards in (1, 2, 3, 4, len(episodes)):
            plan = small_plan(shards)
            rebuilt = [e for job in plan.jobs for e in job.episodes]
            assert rebuilt == episodes
            assert [j.shard for j in plan.jobs] == ShardSpec.partition(
                len(plan.jobs)
            )

    def test_shard_sizes_differ_by_at_most_one(self):
        plan = small_plan(3)
        sizes = [job.total for job in plan.jobs]
        assert max(sizes) - min(sizes) <= 1

    def test_shards_clamped_to_episode_count(self):
        plan = small_plan(shards=1000)
        assert len(plan.jobs) == plan.total
        assert all(job.total == 1 for job in plan.jobs)

    def test_empty_campaign_plans_one_empty_job(self):
        plan = CampaignPlan.build([], CFG, shards=4)
        assert len(plan.jobs) == 1
        assert plan.jobs[0].total == 0

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            small_plan(0)

    def test_ml_requires_factory(self):
        with pytest.raises(ValueError, match="requires ml_factory"):
            CampaignPlan.build(SMALL_SPEC, InterventionConfig(ml=True, name="ml"))

    def test_plan_digest_matches_campaign_digest(self):
        plan = small_plan(3)
        assert plan.digest() == campaign_digest(
            SMALL_SPEC, CFG, max_steps=MAX_STEPS
        )

    def test_single_shard_job_digest_equals_plan_digest(self):
        plan = small_plan(1)
        assert plan.jobs[0].digest() == plan.digest()

    def test_shard_job_digest_matches_cli_shard_digest(self):
        # The exact digest `repro campaign --shard I/N` records in its
        # sidecar for the same slice — one exchange protocol, one key.
        plan = small_plan(2)
        episodes = enumerate_campaign(SMALL_SPEC)
        for job in plan.jobs:
            expected = campaign_digest(
                job.shard.slice(episodes), CFG, max_steps=MAX_STEPS
            )
            assert job.digest() == expected

    def test_golden_grid_digests_via_scheduler(self):
        # The scheduler path must key the paper grids under the exact
        # digests pinned before it existed — otherwise dispatching would
        # silently invalidate every existing cache.
        cfg = InterventionConfig()
        attack = CampaignPlan.build(CampaignSpec(repetitions=10, seed=2025), cfg)
        assert attack.digest() == GOLDEN_ATTACK_GRID
        benign = CampaignPlan.build(
            CampaignSpec(fault_types=[FaultType.NONE], repetitions=10, seed=2025),
            cfg,
        )
        assert benign.digest() == GOLDEN_FAULT_FREE_GRID

    def test_shard_file_name_carries_position_and_digest(self):
        plan = small_plan(2)
        job = plan.jobs[1]
        assert job.file_name() == f"shard-2-of-2-{job.digest()[:16]}.jsonl"


# --------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------- #


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"in-process", "subprocess", "ssh"} <= set(registered_backends())

    def test_unknown_backend_names_registered(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("slurm")
        message = str(excinfo.value)
        assert "slurm" in message
        assert "in-process" in message and "subprocess" in message

    def test_make_backend_drops_none_kwargs(self):
        backend = make_backend("subprocess", workers=3, jobs=None)
        assert isinstance(backend, SubprocessFleetBackend)
        assert backend.workers == 3
        assert backend.jobs is None

    def test_register_requires_name_and_rejects_duplicates(self):
        class Nameless(WorkerBackend):
            def run(self, plan, workdir, cache=None, progress=None, log=None):
                return []

        with pytest.raises(ValueError, match="non-empty 'name'"):
            register_backend(Nameless)

        class Custom(Nameless):
            name = "custom-test-backend"

        try:
            register_backend(Custom)
            with pytest.raises(ValueError, match="already registered"):
                register_backend(Custom)
            register_backend(Custom, replace=True)  # explicit override ok
            assert get_backend("custom-test-backend") is Custom
        finally:
            unregister_backend("custom-test-backend")
        assert "custom-test-backend" not in registered_backends()


# --------------------------------------------------------------------- #
# In-process dispatch
# --------------------------------------------------------------------- #


class TestInProcessDispatch:
    def test_bit_identical_to_run_campaign(self, tmp_path):
        serial = serial_reference()
        for shards in (1, 2, 3):
            dispatched = dispatch_campaign(
                SMALL_SPEC,
                CFG,
                backend="in-process",
                shards=shards,
                workdir=str(tmp_path / f"wd{shards}"),
                cache=False,
                max_steps=MAX_STEPS,
            )
            assert dispatched.results == serial.results
            assert dispatched.intervention == serial.intervention

    def test_shard_files_and_sidecars_written(self, tmp_path):
        workdir = str(tmp_path / "wd")
        plan = small_plan(2)
        dispatch_campaign(
            SMALL_SPEC,
            CFG,
            backend="in-process",
            shards=2,
            workdir=workdir,
            cache=False,
            max_steps=MAX_STEPS,
        )
        for job in plan.jobs:
            path = shard_path(job, workdir)
            assert os.path.exists(path)
            assert read_digest_sidecar(path) == job.digest()
            assert len(load_results(path, strict=True)) == job.total

    def test_temporary_workdir_is_cleaned_up(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        dispatch_campaign(
            SMALL_SPEC,
            CFG,
            backend="in-process",
            shards=2,
            cache=False,
            max_steps=MAX_STEPS,
        )
        leftovers = [n for n in os.listdir(tmp_path) if "repro-dispatch" in n]
        assert leftovers == []

    def test_cache_write_through_and_warm_hit(self, tmp_path):
        cache = CampaignCache(str(tmp_path / "cache"))
        workdir = str(tmp_path / "wd")
        first = dispatch_campaign(
            SMALL_SPEC,
            CFG,
            backend="in-process",
            shards=2,
            workdir=workdir,
            cache=cache,
            max_steps=MAX_STEPS,
        )
        plan = small_plan(2)
        # Full-campaign and per-shard entries all land in the shared cache.
        assert plan.digest() in cache
        for job in plan.jobs:
            assert job.digest() in cache

        # Warm repeat: zero episodes execute — the shard files and every
        # cache entry keep their mtimes (only the miss path rewrites).
        watched = [shard_path(job, workdir) for job in plan.jobs]
        watched += [cache.path(key) for key in cache.keys()]
        before = {p: os.path.getmtime(p) for p in watched}
        time.sleep(0.05)
        again = dispatch_campaign(
            SMALL_SPEC,
            CFG,
            backend="in-process",
            shards=2,
            workdir=workdir,
            cache=cache,
            max_steps=MAX_STEPS,
        )
        assert again.results == first.results
        assert {p: os.path.getmtime(p) for p in watched} == before

    def test_progress_reaches_total(self, tmp_path):
        seen = []
        dispatch_campaign(
            SMALL_SPEC,
            CFG,
            backend="in-process",
            shards=2,
            workdir=str(tmp_path / "wd"),
            cache=False,
            progress=lambda done, total: seen.append((done, total)),
            max_steps=MAX_STEPS,
        )
        assert seen[-1] == (4, 4)
        dones = [d for d, _ in seen]
        assert dones == sorted(dones)

    def test_backend_instance_accepted(self, tmp_path):
        serial = serial_reference()
        dispatched = dispatch_campaign(
            SMALL_SPEC,
            CFG,
            backend=InProcessBackend(),
            shards=2,
            workdir=str(tmp_path / "wd"),
            cache=False,
            max_steps=MAX_STEPS,
        )
        assert dispatched.results == serial.results


# --------------------------------------------------------------------- #
# Worker spec files
# --------------------------------------------------------------------- #


class TestWorkerSpec:
    def test_round_trip(self, tmp_path):
        plan = small_plan(2)
        job = plan.jobs[0]
        spec_path = str(tmp_path / "job.spec.json")
        write_job_spec(job, spec_path, output=job.file_name(), cache_dir="/c")
        worker_job = load_job_spec(spec_path)
        assert worker_job.shard == job.shard
        assert tuple(worker_job.episodes) == job.episodes
        assert worker_job.interventions == job.interventions
        assert worker_job.platform_kwargs == {"max_steps": MAX_STEPS}
        assert worker_job.digest == job.digest()
        assert worker_job.cache_dir == "/c"
        # Relative outputs resolve against the spec file's directory.
        assert worker_job.output == str(tmp_path / job.file_name())

    def test_digest_mismatch_refused(self, tmp_path):
        plan = small_plan(1)
        job = plan.jobs[0]
        spec_path = str(tmp_path / "job.spec.json")
        write_job_spec(job, spec_path, output="out.jsonl")
        # Tamper the recorded digest: the worker's recomputation over the
        # (unchanged) episodes must now disagree and refuse the job.
        tampered = open(spec_path).read().replace(job.digest(), "0" * 64)
        with open(spec_path, "w") as handle:
            handle.write(tampered)
        with pytest.raises(ValueError, match="disagree on campaign identity"):
            load_job_spec(spec_path)

    def test_int_valued_spec_round_trips_with_matching_digest(self, tmp_path):
        # A spec built with int gaps (a library caller writing
        # initial_gaps=(60,)) digests differently from the float form by
        # design — but the worker's reconstruction must reproduce *that*
        # digest, not coerce to float and report bogus version skew.
        spec = CampaignSpec(
            fault_types=[FaultType.RELATIVE_DISTANCE],
            scenario_ids=("S1",),
            initial_gaps=(60,),  # int, not 60.0
            repetitions=1,
            seed=7,
        )
        plan = CampaignPlan.build(spec, CFG, max_steps=MAX_STEPS)
        job = plan.jobs[0]
        spec_path = str(tmp_path / "job.spec.json")
        write_job_spec(job, spec_path, output="out.jsonl")
        worker_job = load_job_spec(spec_path)  # must not raise
        assert worker_job.digest == job.digest()
        assert worker_job.episodes[0].initial_gap == 60

    def test_unknown_format_refused(self, tmp_path):
        spec_path = tmp_path / "job.spec.json"
        spec_path.write_text('{"format": 999}')
        with pytest.raises(ValueError, match="unsupported worker spec format"):
            load_job_spec(str(spec_path))


# --------------------------------------------------------------------- #
# Subprocess fleet
# --------------------------------------------------------------------- #


def fleet_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CACHE_DIR", None)
    env.pop("REPRO_JOBS", None)
    return env


@pytest.fixture
def fleet_backend(monkeypatch):
    """A 2-worker fleet whose workers can import repro from src/."""
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    monkeypatch.setenv(
        "PYTHONPATH", src + os.pathsep + os.environ.get("PYTHONPATH", "")
    )
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    return SubprocessFleetBackend(workers=2)


class TestSubprocessFleet:
    def test_fleet_dispatch_byte_identical_to_serial(self, tmp_path, fleet_backend):
        serial = serial_reference()
        serial_path = str(tmp_path / "serial.jsonl")
        save_results(serial.results, serial_path)

        workdir = str(tmp_path / "fleet")
        dispatched = dispatch_campaign(
            SMALL_SPEC,
            CFG,
            backend=fleet_backend,
            workdir=workdir,
            cache=False,
            max_steps=MAX_STEPS,
        )
        assert dispatched.results == serial.results
        merged_path = str(tmp_path / "merged.jsonl")
        save_results(dispatched.results, merged_path)
        assert open(serial_path, "rb").read() == open(merged_path, "rb").read()
        # Two shard files, each with its digest sidecar and worker log.
        plan = small_plan(2)
        for job in plan.jobs:
            path = shard_path(job, workdir)
            assert read_digest_sidecar(path) == job.digest()
            assert os.path.exists(path[: -len(".jsonl")] + ".log")

    def test_worker_failure_exhausts_retries(self, tmp_path, fleet_backend):
        fleet_backend.python = "/nonexistent-python"
        fleet_backend.max_retries = 1
        with pytest.raises(SchedulerError, match="after 2 attempts"):
            dispatch_campaign(
                SMALL_SPEC,
                CFG,
                backend=fleet_backend,
                workdir=str(tmp_path / "fleet"),
                cache=False,
                max_steps=MAX_STEPS,
            )

    def test_unpicklable_ml_factory_fails_fast(self, tmp_path, fleet_backend):
        with pytest.raises(SchedulerError, match="does not pickle"):
            dispatch_campaign(
                SMALL_SPEC,
                InterventionConfig(ml=True, name="ml"),
                backend=fleet_backend,
                workdir=str(tmp_path / "fleet"),
                cache=False,
                ml_factory=lambda: None,
                max_steps=MAX_STEPS,
            )


class TestCrashRecovery:
    def test_killed_worker_resumes_from_prefix(self, tmp_path, fleet_backend):
        """Kill a fleet worker mid-shard; the next dispatch must resume the
        shard from its valid JSONL prefix (count proof via the worker log),
        re-execute nothing it already earned, and still merge byte-identical
        to the serial run."""
        # A single-shard-per-worker grid big enough that each 12-episode
        # shard streams its first 8-episode batch to disk well before
        # finishing — the window in which the kill lands.
        spec = CampaignSpec(
            fault_types=[FaultType.RELATIVE_DISTANCE],
            scenario_ids=("S1", "S2", "S3"),
            initial_gaps=(60.0,),
            repetitions=8,
            seed=11,
        )
        serial = run_campaign(spec, CFG, cache=False, max_steps=MAX_STEPS)
        serial_path = str(tmp_path / "serial.jsonl")
        save_results(serial.results, serial_path)

        workdir = str(tmp_path / "fleet")
        os.makedirs(workdir)
        plan = CampaignPlan.build(spec, CFG, shards=2, max_steps=MAX_STEPS)
        victim = plan.jobs[0]
        victim_path = shard_path(victim, workdir)
        stem = victim.file_name()[: -len(".jsonl")]
        spec_path = os.path.join(workdir, f"{stem}.spec.json")
        write_job_spec(victim, spec_path, output=victim.file_name())

        # Launch shard 1's worker exactly as the fleet would, then kill it
        # once its first streamed batch is on disk — a genuine mid-shard
        # death, possibly mid-line.
        proc = subprocess.Popen(
            fleet_backend.worker_command(spec_path),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=fleet_env(),
        )
        deadline = time.time() + 120
        try:
            while count_records(victim_path) < 1:
                assert proc.poll() is None, "worker finished before the kill"
                assert time.time() < deadline, "no streamed batch within 120 s"
                time.sleep(0.05)
        finally:
            proc.kill()
            proc.wait()
        prefix = count_records(victim_path)
        assert 1 <= prefix < victim.total

        # The prefix records must survive the resume byte-for-byte: prove
        # it by content, not just count.
        prefix_records = load_results(victim_path)

        dispatched = dispatch_campaign(
            spec,
            CFG,
            backend=fleet_backend,
            workdir=workdir,
            cache=False,
            max_steps=MAX_STEPS,
        )
        assert dispatched.results == serial.results
        merged_path = str(tmp_path / "merged.jsonl")
        save_results(dispatched.results, merged_path)
        assert open(serial_path, "rb").read() == open(merged_path, "rb").read()

        # Count proof: the relaunched worker logged exactly how many
        # episodes it skipped (the prefix) and how many it still ran.
        log_text = open(os.path.join(workdir, f"{stem}.log")).read()
        assert (
            f"{prefix} episodes already recorded; "
            f"executing {victim.total - prefix} of {victim.total}" in log_text
        )
        assert load_results(victim_path)[:prefix] == prefix_records

        # Re-dispatch over the completed workdir: every shard is skipped
        # before any worker spawns — shard file mtimes are untouched.
        watched = [shard_path(job, workdir) for job in plan.jobs]
        before = {p: os.path.getmtime(p) for p in watched}
        time.sleep(0.05)
        again = dispatch_campaign(
            spec,
            CFG,
            backend=fleet_backend,
            workdir=workdir,
            cache=False,
            max_steps=MAX_STEPS,
        )
        assert again.results == serial.results
        assert {p: os.path.getmtime(p) for p in watched} == before


class TestFleetConstruction:
    def test_rejects_nonpositive_poll_interval(self):
        with pytest.raises(ValueError, match="poll_interval"):
            SubprocessFleetBackend(poll_interval=0.0)
        with pytest.raises(ValueError, match="poll_interval"):
            SubprocessFleetBackend(poll_interval=-0.5)

    def test_rejects_unknown_executor_name(self):
        with pytest.raises(ValueError, match="unknown executor"):
            SubprocessFleetBackend(executor="warp")
        with pytest.raises(ValueError, match="unknown executor"):
            InProcessBackend(executor="warp")

    def test_worker_command_carries_executor_flag(self):
        fleet = SubprocessFleetBackend(executor="batch")
        command = fleet.worker_command("shard.spec.json")
        assert command[-2:] == ["--executor", "batch"]
        # Unset stays unset: workers fall back to their own default.
        assert "--executor" not in SubprocessFleetBackend().worker_command(
            "shard.spec.json"
        )


class TestFleetTeardown:
    def test_hung_worker_is_killed_and_reaped(self, tmp_path, monkeypatch):
        """Exhausting one shard's retry budget must tear down the rest of
        the fleet — including a worker that ignores SIGTERM, which has to
        be escalated to SIGKILL and then *reaped* (no zombie children)."""
        backend = SubprocessFleetBackend(workers=2, max_retries=0)
        sentinel = str(tmp_path / "hang-worker-ready")
        # Worker 2 installs a SIGTERM-ignore, signals readiness via the
        # sentinel file, and hangs; worker 1 waits for that sentinel (so
        # the teardown races nothing) and then fails its shard.
        hang_cmd = [
            sys.executable,
            "-c",
            "import signal, sys, time\n"
            "signal.signal(signal.SIGTERM, signal.SIG_IGN)\n"
            "open(sys.argv[1], 'w').close()\n"
            "time.sleep(600)\n",
            sentinel,
        ]
        fail_cmd = [
            sys.executable,
            "-c",
            "import os, sys, time\n"
            "while not os.path.exists(sys.argv[1]):\n"
            "    time.sleep(0.02)\n"
            "sys.exit(1)\n",
            sentinel,
        ]
        commands = iter([fail_cmd, hang_cmd])
        monkeypatch.setattr(
            backend, "worker_command", lambda spec_path: next(commands)
        )
        spawned = []
        real_popen = subprocess.Popen

        def recording_popen(*args, **kwargs):
            proc = real_popen(*args, **kwargs)
            spawned.append(proc)
            return proc

        monkeypatch.setattr(subprocess, "Popen", recording_popen)
        with pytest.raises(SchedulerError, match="after 1 attempts"):
            backend.run(small_plan(2), str(tmp_path))

        assert len(spawned) == 2
        # Every child is reaped: a poll() after teardown sees the recorded
        # returncode, never None (zombie) — and the hung worker's exit
        # status proves the SIGKILL escalation actually fired.
        assert [p.poll() is not None for p in spawned] == [True, True]
        assert spawned[1].returncode == -signal.SIGKILL


# --------------------------------------------------------------------- #
# SSH stub
# --------------------------------------------------------------------- #


class TestSSHBackend:
    def test_requires_command_template(self, monkeypatch):
        monkeypatch.delenv("REPRO_SSH_COMMAND", raising=False)
        with pytest.raises(ValueError, match="command template"):
            SSHBackend(workers=1)

    def test_template_must_reference_command(self):
        with pytest.raises(ValueError, match="placeholder"):
            SSHBackend(workers=1, command_template="ssh host worker")

    def test_template_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SSH_COMMAND", "ssh build-host {command}")
        backend = SSHBackend(workers=1)
        argv = backend.worker_command("/w/job.spec.json")
        assert argv[:2] == ["/bin/sh", "-c"]
        assert argv[2].startswith("ssh build-host ")
        assert "repro worker --spec /w/job.spec.json" in argv[2]

    def test_local_template_dispatch_matches_serial(self, tmp_path, fleet_backend):
        # '{command}' alone runs the worker locally through the template
        # plumbing — the full protocol path an ssh wrapper would take.
        backend = SSHBackend(
            workers=2, command_template="{command}", max_retries=0
        )
        serial = serial_reference()
        dispatched = dispatch_campaign(
            SMALL_SPEC,
            CFG,
            backend=backend,
            workdir=str(tmp_path / "fleet"),
            cache=False,
            max_steps=MAX_STEPS,
        )
        assert dispatched.results == serial.results


# --------------------------------------------------------------------- #
# Collect
# --------------------------------------------------------------------- #


def write_shard_files(plan, workdir, results):
    os.makedirs(workdir, exist_ok=True)
    paths = []
    offset = 0
    for job in plan.jobs:
        path = shard_path(job, workdir)
        save_results(results[offset : offset + job.total], path)
        write_digest_sidecar(path, job.digest())
        offset += job.total
        paths.append(path)
    return paths


class TestCollect:
    @pytest.fixture(scope="class")
    def serial(self):
        return serial_reference()

    def test_collect_merges_and_caches(self, tmp_path, serial):
        plan = small_plan(2)
        paths = write_shard_files(plan, str(tmp_path / "wd"), serial.results)
        cache = CampaignCache(str(tmp_path / "cache"))
        collected = collect_shards(plan, paths, cache=cache)
        assert collected.results == serial.results
        assert cache.get(plan.digest()) == serial.results

    def test_sidecar_mismatch_refused(self, tmp_path, serial):
        plan = small_plan(2)
        paths = write_shard_files(plan, str(tmp_path / "wd"), serial.results)
        write_digest_sidecar(paths[0], "0" * 64)
        with pytest.raises(SchedulerError, match="different campaign"):
            collect_shards(plan, paths)

    def test_truncated_shard_refused(self, tmp_path, serial):
        plan = small_plan(2)
        paths = write_shard_files(plan, str(tmp_path / "wd"), serial.results)
        with open(paths[1], "r+") as handle:
            content = handle.read()
            handle.seek(0)
            handle.write(content[: len(content) // 2])
            handle.truncate()
        with pytest.raises(SchedulerError, match="shard collection failed"):
            collect_shards(plan, paths)

    def test_wrong_path_count_refused(self, tmp_path, serial):
        plan = small_plan(2)
        paths = write_shard_files(plan, str(tmp_path / "wd"), serial.results)
        with pytest.raises(SchedulerError, match="expected 2 shard files"):
            collect_shards(plan, paths[:1])

    def test_foreign_episodes_refused(self, tmp_path, serial):
        # Same episode count, different campaign: per-position identity
        # validation must refuse it even with matching-looking files.
        plan = small_plan(2)
        other = run_campaign(
            CampaignSpec(
                fault_types=[FaultType.RELATIVE_DISTANCE],
                scenario_ids=("S1", "S2"),
                initial_gaps=(60.0,),
                repetitions=2,
                seed=8,  # different seed -> different episode identities
            ),
            CFG,
            cache=False,
            max_steps=MAX_STEPS,
        )
        paths = []
        offset = 0
        workdir = str(tmp_path / "wd")
        os.makedirs(workdir)
        for job in plan.jobs:
            path = shard_path(job, workdir)
            save_results(other.results[offset : offset + job.total], path)
            offset += job.total
            paths.append(path)  # no sidecars: identity check must catch it
        with pytest.raises(SchedulerError, match="shard collection failed"):
            collect_shards(plan, paths)

    def test_shard_complete_probe(self, tmp_path, serial):
        plan = small_plan(2)
        job = plan.jobs[0]
        path = shard_path(job, str(tmp_path))
        assert not shard_complete(job, path)
        save_results(serial.results[: job.total], path)
        assert shard_complete(job, path)
        write_digest_sidecar(path, "0" * 64)  # foreign sidecar -> incomplete
        assert not shard_complete(job, path)
