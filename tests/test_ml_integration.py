"""Integration tests for the ML pipeline that avoid full LSTM training.

A tiny LSTM (8-6 hidden units, few windows, few epochs) exercises the
complete collect -> window -> train -> mitigate pipeline end-to-end in a
few seconds; the real 128-64 configuration is exercised by the Table VI
benchmark (cached on disk).
"""

import numpy as np
import pytest

from repro.attacks.campaign import EpisodeSpec
from repro.attacks.fi import FaultType
from repro.core.platform import SimulationPlatform
from repro.ml.dataset import TraceDataset, collect_fault_free_traces
from repro.ml.mitigation import MitigationController, MitigationParams
from repro.ml.trainer import TrainerConfig, train_baseline
from repro.safety.arbitration import InterventionConfig


@pytest.fixture(scope="module")
def tiny_baseline():
    traces = collect_fault_free_traces(
        scenario_ids=("S1",), initial_gaps=(60.0,), seeds=(11,), max_steps=2500
    )
    dataset = TraceDataset(traces, stride=20)
    config = TrainerConfig(hidden_sizes=(8, 6), epochs=3, batch_size=32, stride=20)
    return train_baseline(config, dataset=dataset)


class TestPipeline:
    def test_traces_are_nonempty_and_aligned(self):
        traces = collect_fault_free_traces(
            scenario_ids=("S1",), initial_gaps=(60.0,), seeds=(11,), max_steps=1500
        )
        assert traces
        for trace in traces:
            assert trace.features.shape[0] == trace.targets.shape[0]
            assert trace.features.shape[0] > 100

    def test_training_produces_finite_loss(self, tiny_baseline):
        assert np.isfinite(tiny_baseline.final_loss)
        assert tiny_baseline.final_loss < 2.0

    def test_prediction_shape_and_scale(self, tiny_baseline):
        window = np.tile(
            np.array([20.0, 40.0, 0.9, 0.9, 0.0, 0.0]), (20, 1)
        )
        accel, steer = tiny_baseline.predict(window)
        assert -10.0 < accel < 5.0
        assert -0.5 < steer < 0.5

    def test_platform_episode_with_ml_layer(self, tiny_baseline):
        spec = EpisodeSpec(
            scenario_id="S1",
            initial_gap=60.0,
            fault_type=FaultType.RELATIVE_DISTANCE,
            repetition=0,
            seed=5,
        )
        controller = MitigationController(tiny_baseline, MitigationParams(tau=3.0))
        platform = SimulationPlatform(
            spec, InterventionConfig(ml=True), ml_controller=controller, max_steps=4000
        )
        result = platform.run()
        # The CUSUM detector must notice the divergence under attack.
        assert result.ml_recovery.triggered

    def test_ml_idle_in_fault_free_episode(self, tiny_baseline):
        spec = EpisodeSpec(
            scenario_id="S1",
            initial_gap=60.0,
            fault_type=FaultType.NONE,
            repetition=0,
            seed=5,
        )
        controller = MitigationController(
            tiny_baseline, MitigationParams(tau=2000.0, bias=1.0)
        )
        platform = SimulationPlatform(
            spec, InterventionConfig(ml=True), ml_controller=controller, max_steps=3000
        )
        result = platform.run()
        # With a conservative threshold the detector stays quiet nominally
        # (the deliberately tiny test model mispredicts hard braking, so
        # the production default tau would false-positive here — that
        # trade-off is exactly what the CUSUM ablation bench sweeps).
        assert not result.ml_recovery.triggered
        assert result.accident is None
