"""Tests for the digest-keyed campaign result cache.

Covers digest stability (same spec -> same key, in-process and across
interpreter processes), key sensitivity (any field change -> new key),
cache hit/miss/invalidation round-trips through ``run_campaign``, the
cached-ML-campaign-without-retraining path, and the regression for the
report generator's old lambda ``ml_factory`` (the ML arm now dispatches
under ``jobs=2`` instead of falling back in-process).
"""

import os
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.attacks.campaign import CampaignSpec, ShardSpec, enumerate_campaign
from repro.attacks.fi import FaultType
from repro.core.cache import (
    CampaignCache,
    campaign_digest,
    default_cache,
    factory_token,
)
from repro.core.executor import ParallelExecutor, SerialExecutor
from repro.core.experiment import run_campaign
from repro.core.metrics import EpisodeResult, save_results
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig
from repro.sim.weather import FRICTION_CONDITIONS

SMALL_SPEC = CampaignSpec(
    fault_types=[FaultType.NONE],
    scenario_ids=("S1", "S4"),
    initial_gaps=(60.0,),
    repetitions=2,
    seed=11,
)
CFG = InterventionConfig()
MAX_STEPS = 300

#: Literal mirror of SMALL_SPEC/CFG for the cross-process stability check.
_SUBPROCESS_SNIPPET = """
from repro.attacks.campaign import CampaignSpec
from repro.attacks.fi import FaultType
from repro.core.cache import campaign_digest
from repro.safety.arbitration import InterventionConfig

spec = CampaignSpec(
    fault_types=[FaultType.NONE],
    scenario_ids=("S1", "S4"),
    initial_gaps=(60.0,),
    repetitions=2,
    seed=11,
)
print(campaign_digest(spec, InterventionConfig(), max_steps=300), end="")
"""


class RefusingExecutor(SerialExecutor):
    """Backend that fails the test if a single episode is dispatched."""

    def run(self, tasks, progress=None):
        raise AssertionError("cache hit must not execute episodes")


class CountingExecutor(SerialExecutor):
    def __init__(self):
        self.executed = 0

    def run(self, tasks, progress=None):
        self.executed += len(tasks)
        return super().run(tasks, progress)


class TestDigestStability:
    def test_same_spec_same_key_in_process(self):
        a = campaign_digest(SMALL_SPEC, CFG, max_steps=300)
        b = campaign_digest(SMALL_SPEC, CFG, max_steps=300)
        assert a == b
        assert len(a) == 64 and set(a) <= set("0123456789abcdef")

    def test_same_spec_same_key_across_processes(self):
        """sha256 over canonical JSON is process-independent (hash() is
        salted per interpreter and would not be)."""
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        out = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout
        assert out == campaign_digest(SMALL_SPEC, CFG, max_steps=300)

    def test_spec_and_enumeration_share_a_key(self):
        assert campaign_digest(SMALL_SPEC, CFG) == campaign_digest(
            enumerate_campaign(SMALL_SPEC), CFG
        )

    def test_shard_keys_differ_from_full_campaign(self):
        full = campaign_digest(SMALL_SPEC, CFG)
        shard = campaign_digest(
            enumerate_campaign(SMALL_SPEC, shard=ShardSpec(1, 2)), CFG
        )
        assert full != shard

    def test_any_spec_field_change_changes_the_key(self):
        base = campaign_digest(SMALL_SPEC, CFG, max_steps=300)
        variants = [
            CampaignSpec(
                fault_types=[FaultType.RELATIVE_DISTANCE],
                scenario_ids=("S1", "S4"),
                initial_gaps=(60.0,),
                repetitions=2,
                seed=11,
            ),
            CampaignSpec(
                fault_types=[FaultType.NONE],
                scenario_ids=("S1", "S2"),
                initial_gaps=(60.0,),
                repetitions=2,
                seed=11,
            ),
            CampaignSpec(
                fault_types=[FaultType.NONE],
                scenario_ids=("S1", "S4"),
                initial_gaps=(230.0,),
                repetitions=2,
                seed=11,
            ),
            CampaignSpec(
                fault_types=[FaultType.NONE],
                scenario_ids=("S1", "S4"),
                initial_gaps=(60.0,),
                repetitions=3,
                seed=11,
            ),
            CampaignSpec(
                fault_types=[FaultType.NONE],
                scenario_ids=("S1", "S4"),
                initial_gaps=(60.0,),
                repetitions=2,
                seed=12,
            ),
            CampaignSpec(
                fault_types=[FaultType.NONE],
                scenario_ids=("S1", "S4"),
                initial_gaps=(60.0,),
                repetitions=2,
                seed=11,
                friction=next(iter(FRICTION_CONDITIONS.values())),
            ),
        ]
        keys = {campaign_digest(v, CFG, max_steps=300) for v in variants}
        assert base not in keys
        assert len(keys) == len(variants)

    def test_any_intervention_field_change_changes_the_key(self):
        base = campaign_digest(SMALL_SPEC, CFG)
        variants = [
            InterventionConfig(driver=True),
            InterventionConfig(safety_check=True),
            InterventionConfig(aeb=AebsConfig.INDEPENDENT),
            InterventionConfig(driver=True, driver_reaction_time=1.5),
            InterventionConfig(aeb_overrides_driver=False),
            InterventionConfig(name="relabelled"),
        ]
        keys = {campaign_digest(SMALL_SPEC, v) for v in variants}
        assert base not in keys
        assert len(keys) == len(variants)

    def test_platform_kwargs_and_ml_token_change_the_key(self):
        base = campaign_digest(SMALL_SPEC, CFG, max_steps=300)
        assert campaign_digest(SMALL_SPEC, CFG, max_steps=301) != base
        assert campaign_digest(SMALL_SPEC, CFG) != base
        assert campaign_digest(SMALL_SPEC, CFG, ml_token="a", max_steps=300) != base
        assert (
            campaign_digest(SMALL_SPEC, CFG, ml_token="a")
            != campaign_digest(SMALL_SPEC, CFG, ml_token="b")
        )

    def test_kwarg_order_does_not_matter(self):
        assert campaign_digest(SMALL_SPEC, CFG, max_steps=300, dt=0.01) == (
            campaign_digest(SMALL_SPEC, CFG, dt=0.01, max_steps=300)
        )


def _module_level_factory():  # pragma: no cover - only fingerprinted
    raise AssertionError("never called")


class TestFactoryToken:
    def test_none_factory(self):
        assert factory_token(None) is None

    def test_explicit_digest_token_wins(self):
        class Tokened:
            digest_token = "weights:abc"

        assert factory_token(Tokened()) == "weights:abc"

    def test_module_level_callable_uses_qualname(self):
        token = factory_token(_module_level_factory)
        assert token == "callable:test_cache._module_level_factory"

    def test_lambda_and_closure_are_unfingerprintable(self):
        assert factory_token(lambda: None) is None

        def local():
            pass

        assert factory_token(local) is None

    def test_stateful_instance_without_token_is_unfingerprintable(self):
        """Two instances of one class can carry different weights; their
        shared class name must not become a shared cache key."""

        class WeightsCarrier:
            def __init__(self, weights):
                self.weights = weights

            def __call__(self):
                return None

        assert factory_token(WeightsCarrier("A")) is None

    def test_plain_class_is_fingerprinted_by_name(self):
        assert factory_token(_StubController) == (
            "callable:test_cache._StubController"
        )


class TestCampaignCacheStore:
    def test_put_get_round_trip(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        results = [EpisodeResult(seed=1), EpisodeResult(seed=2)]
        key = "ab" * 32
        cache.put(key, results)
        assert key in cache
        assert cache.get(key) == results
        assert cache.keys() == [key]
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        assert cache.get("cd" * 32) is None
        assert ("cd" * 32) not in cache

    def test_rejects_non_hex_keys(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        with pytest.raises(ValueError, match="hex"):
            cache.path("../escape")
        with pytest.raises(ValueError, match="hex"):
            cache.path("")

    def test_truncated_entry_is_discarded_as_miss(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        key = "ef" * 32
        cache.put(key, [EpisodeResult(seed=1), EpisodeResult(seed=2)])
        path = cache.path(key)
        with open(path, "r+") as handle:
            text = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(text[:-20])
        with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
            assert cache.get(key) is None
        assert not os.path.exists(path)

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        cache.put("aa" * 32, [EpisodeResult()])
        assert all(not n.endswith(".tmp") for n in os.listdir(cache.root))


class TestRunCampaignCaching:
    def test_second_invocation_executes_zero_episodes(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        first = CountingExecutor()
        a = run_campaign(
            SMALL_SPEC, CFG, executor=first, cache=cache, max_steps=MAX_STEPS
        )
        assert first.executed == len(a.results) == 4
        b = run_campaign(
            SMALL_SPEC, CFG, executor=RefusingExecutor(), cache=cache,
            max_steps=MAX_STEPS,
        )
        assert b.results == a.results
        assert b.intervention == a.intervention

    def test_hit_reports_full_progress_and_fills_resume_file(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        run_campaign(SMALL_SPEC, CFG, cache=cache, max_steps=MAX_STEPS)
        calls = []
        resume = tmp_path / "resume.jsonl"
        run_campaign(
            SMALL_SPEC,
            CFG,
            executor=RefusingExecutor(),
            cache=cache,
            resume_path=resume,
            progress=lambda d, t: calls.append((d, t)),
            max_steps=MAX_STEPS,
        )
        assert calls == [(4, 4)]
        assert len(resume.read_text().splitlines()) == 4

    def test_any_input_change_invalidates(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        run_campaign(SMALL_SPEC, CFG, cache=cache, max_steps=MAX_STEPS)
        backend = CountingExecutor()
        run_campaign(SMALL_SPEC, CFG, executor=backend, cache=cache,
                     max_steps=MAX_STEPS + 1)
        assert backend.executed == 4  # different platform kwargs -> miss
        backend2 = CountingExecutor()
        run_campaign(SMALL_SPEC, InterventionConfig(driver=True),
                     executor=backend2, cache=cache, max_steps=MAX_STEPS)
        assert backend2.executed == 4  # different interventions -> miss
        assert len(cache) == 3

    def test_repro_cache_dir_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        run_campaign(SMALL_SPEC, CFG, max_steps=MAX_STEPS)
        result = run_campaign(
            SMALL_SPEC, CFG, executor=RefusingExecutor(), max_steps=MAX_STEPS
        )
        assert len(result.results) == 4

    def test_cache_false_disables_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        run_campaign(SMALL_SPEC, CFG, max_steps=MAX_STEPS)
        backend = CountingExecutor()
        run_campaign(
            SMALL_SPEC, CFG, executor=backend, cache=False, max_steps=MAX_STEPS
        )
        assert backend.executed == 4

    def test_cache_true_means_environment_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        run_campaign(SMALL_SPEC, CFG, cache=True, max_steps=MAX_STEPS)
        result = run_campaign(
            SMALL_SPEC, CFG, executor=RefusingExecutor(), cache=True,
            max_steps=MAX_STEPS,
        )
        assert len(result.results) == 4
        # With no environment cache configured, True degrades to uncached.
        monkeypatch.delenv("REPRO_CACHE_DIR")
        backend = CountingExecutor()
        run_campaign(SMALL_SPEC, CFG, executor=backend, cache=True,
                     max_steps=MAX_STEPS)
        assert backend.executed == 4

    def test_hit_refuses_to_overwrite_foreign_resume_file(self, tmp_path):
        """A cache hit must not clobber a resume file from a different
        campaign: the resume validation runs before the hit is served."""
        cache = CampaignCache(tmp_path / "cache")
        run_campaign(SMALL_SPEC, CFG, cache=cache, max_steps=MAX_STEPS)
        foreign = tmp_path / "other-campaign.jsonl"
        save_results([EpisodeResult(seed=1, intervention="driver")], foreign)
        stamp = foreign.read_bytes()
        with pytest.raises(ValueError, match="refusing to resume"):
            run_campaign(
                SMALL_SPEC, CFG, executor=RefusingExecutor(), cache=cache,
                resume_path=foreign, max_steps=MAX_STEPS,
            )
        assert foreign.read_bytes() == stamp  # untouched

    def test_default_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert default_cache() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        cache = default_cache()
        assert isinstance(cache, CampaignCache)
        assert os.path.isdir(cache.root)


class _StubController:
    """Minimal MlController: mirrors the ADAS command (deterministic)."""

    def reset(self):
        pass

    def step(self, features, y_op, dt):
        return y_op, False


class _StubFactory:
    """Picklable ML factory with a stable digest token."""

    digest_token = "stub:v1"

    def __call__(self):
        return _StubController()


class _RefusingFactory:
    """Same digest token, but building a controller means the cache missed."""

    digest_token = "stub:v1"

    def __call__(self):
        raise AssertionError("cached ML campaign must not rebuild controllers")


ML_EPISODES = enumerate_campaign(SMALL_SPEC)[:2]


class TestCachedMlCampaign:
    def test_cached_ml_campaign_returns_without_retraining(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        ml_cfg = InterventionConfig(ml=True, name="ml")
        first = run_campaign(
            ML_EPISODES, ml_cfg, ml_factory=_StubFactory(), cache=cache,
            max_steps=MAX_STEPS,
        )
        # Second invocation: neither the factory nor the executor may run —
        # the stand-ins for "no retraining, no simulation".
        second = run_campaign(
            ML_EPISODES,
            ml_cfg,
            ml_factory=_RefusingFactory(),
            executor=RefusingExecutor(),
            cache=cache,
            max_steps=MAX_STEPS,
        )
        assert second.results == first.results

    def test_unfingerprintable_ml_factory_skips_cache(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        ml_cfg = InterventionConfig(ml=True, name="ml")
        build = lambda: _StubController()  # noqa: E731 - the point of the test
        run_campaign(
            ML_EPISODES, ml_cfg, ml_factory=build, cache=cache, max_steps=MAX_STEPS
        )
        assert len(cache) == 0  # nothing stored under an unstable key
        backend = CountingExecutor()
        run_campaign(
            ML_EPISODES, ml_cfg, ml_factory=build, executor=backend, cache=cache,
            max_steps=MAX_STEPS,
        )
        assert backend.executed == len(ML_EPISODES)


class TestReportPipelineCache:
    """The report generator consults the cache for every arm — including
    the ML row, whose cache key (the trainer config) is computable before
    any weights are loaded, so a warm cache skips training entirely."""

    def test_fully_cached_report_executes_zero_campaign_episodes(
        self, tmp_path, monkeypatch
    ):
        from repro.analysis.report import TABLE6_CONFIGS, ReportConfig, generate_report
        from repro.ml import TrainerConfig
        from repro.sim.weather import FRICTION_CONDITIONS as CONDITIONS

        config = ReportConfig(
            repetitions=1, seed=5, include_ml=True, reaction_times=(2.5,),
            cache_dir=str(tmp_path / "cache"),
        )
        cache = config.cache()

        def fake_results(spec, label):
            return [
                EpisodeResult(
                    scenario_id=e.scenario_id,
                    initial_gap=e.initial_gap,
                    fault_type=e.fault_type.value,
                    seed=e.seed,
                    intervention=label,
                )
                for e in enumerate_campaign(spec)
            ]

        def seed_entry(spec, cfg, ml_token=None):
            cache.put(
                campaign_digest(spec, cfg, ml_token=ml_token),
                fake_results(spec, cfg.label()),
            )

        benign_spec = CampaignSpec(
            fault_types=[FaultType.NONE], repetitions=1, seed=5
        )
        seed_entry(benign_spec, InterventionConfig())
        attack_spec = CampaignSpec(repetitions=1, seed=5)
        for cfg in TABLE6_CONFIGS:
            seed_entry(attack_spec, cfg)
        ml_cfg = InterventionConfig(ml=True, name="ml")
        seed_entry(attack_spec, ml_cfg, ml_token=f"trainer:{TrainerConfig()!r}")
        seed_entry(
            attack_spec, InterventionConfig(driver=True, driver_reaction_time=2.5)
        )
        cfg8 = InterventionConfig(
            driver=True, safety_check=True, aeb=AebsConfig.COMPROMISED
        )
        for condition in CONDITIONS.values():
            seed_entry(
                CampaignSpec(
                    fault_types=[
                        FaultType.RELATIVE_DISTANCE,
                        FaultType.DESIRED_CURVATURE,
                    ],
                    repetitions=1,
                    seed=5,
                    friction=condition,
                ),
                cfg8,
            )

        # Every campaign arm must be served from cache: building an executor
        # (which only happens after a cache miss, in the scheduler's shard
        # primitive) or training the ML baseline fails the test.  Fig. 5/6
        # traces run the platform directly and are unaffected.
        import repro.core.scheduler as scheduler
        import repro.ml as ml

        def boom(*args, **kwargs):
            raise AssertionError("cache miss: campaign execution attempted")

        monkeypatch.setattr(scheduler, "make_executor", boom)
        monkeypatch.setattr(ml, "load_or_train_cached", boom)

        text = generate_report(config)
        for marker in ("Table IV", "Table VI", "Table VII", "Table VIII", "ml"):
            assert marker in text, marker


def _tiny_baseline():
    """An untrained (but deterministic) TrainedBaseline — small and fast."""
    from repro.ml.dataset import FEATURE_NAMES
    from repro.ml.lstm import LstmNetwork
    from repro.ml.trainer import TrainedBaseline

    network = LstmNetwork(
        input_size=len(FEATURE_NAMES), hidden_sizes=(8, 4), output_size=2, seed=3
    )
    n = len(FEATURE_NAMES)
    return TrainedBaseline(
        network=network,
        feature_mean=np.zeros(n),
        feature_std=np.ones(n),
        target_mean=np.zeros(2),
        target_std=np.ones(2),
        final_loss=0.0,
    )


class TestMitigationFactory:
    """Regression: the report's ML arm used a lambda factory, which forced
    the parallel executor's in-process fallback; MitigationFactory pickles
    and dispatches to worker processes like every other arm."""

    def test_factory_is_picklable_with_weights(self):
        import pickle

        from repro.ml import MitigationFactory

        factory = MitigationFactory(_tiny_baseline())
        clone = pickle.loads(pickle.dumps(factory))
        controller = clone()
        assert controller.baseline.network.hidden_sizes == (8, 4)
        assert clone.digest_token == factory.digest_token

    def test_digest_token_tracks_weights_and_params(self):
        from repro.ml import MitigationFactory, MitigationParams

        base = MitigationFactory(_tiny_baseline())
        retrained = _tiny_baseline()
        retrained.network.w_out = retrained.network.w_out + 1.0
        assert MitigationFactory(retrained).digest_token != base.digest_token
        reparam = MitigationFactory(_tiny_baseline(), MitigationParams(tau=9.0))
        assert reparam.digest_token != base.digest_token
        explicit = MitigationFactory(_tiny_baseline(), digest_token="trainer:x")
        assert explicit.digest_token == "trainer:x"

    def test_ml_campaign_parallelises_end_to_end(self):
        from repro.ml import MitigationFactory

        factory = MitigationFactory(_tiny_baseline())
        ml_cfg = InterventionConfig(ml=True, name="ml")
        serial = run_campaign(
            ML_EPISODES, ml_cfg, ml_factory=factory,
            executor=SerialExecutor(), cache=False, max_steps=MAX_STEPS,
        )
        with warnings.catch_warnings():
            # the old lambda path warned "not picklable" here and fell back
            warnings.simplefilter("error", RuntimeWarning)
            parallel = run_campaign(
                ML_EPISODES, ml_cfg, ml_factory=factory,
                executor=ParallelExecutor(jobs=2, chunk_size=1), cache=False,
                max_steps=MAX_STEPS,
            )
        assert parallel.results == serial.results
