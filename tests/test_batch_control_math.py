"""Per-head equivalence of the vectorized control math.

The batch engine's array twins (``perception_head_arrays``,
``tracker_step_arrays``) must match the scalar models *bit for bit*,
lane by lane — not approximately: the batch executor's contract is
byte-identical episode results, and a single one-ULP drift in any head
breaks the golden digests.  Hypothesis drives the state space; the
oracle is the scalar arithmetic itself.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adas.lead_tracker import LeadTracker
from repro.adas.perception import PerceptionOutput, perception_head_arrays
from repro.utils.mathx import clamp

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)
small = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-10.0, max_value=10.0
)
positive = st.floats(
    allow_nan=False, allow_infinity=False, min_value=1e-3, max_value=100.0
)
noise_draw = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-5.0, max_value=5.0
)
gain = st.floats(
    allow_nan=False, allow_infinity=False, min_value=1e-3, max_value=1.0
)


def _scalar_perception(dt, lane, params):
    """The scalar :meth:`PerceptionModel.run` arithmetic, one lane.

    ``rng.normal(0.0, s)`` is ``0.0 + s * z`` for a standard-normal draw
    ``z``; keeping the ``0.0 +`` preserves negative-zero normalisation.
    """
    (present, gap, rel, dr, dl, k_road, offset, psi, ff) = lane
    (det, blind, cg, hg, ff_lag, rdn, rsn, lnn, cvn, kmax, z) = params
    valid = present and gap <= det and gap >= blind
    if valid:
        rd = gap + (0.0 + rdn * z[0])
        rs = rel + (0.0 + rsn * z[1])
        rd = max(rd, 0.0)
    else:
        rd, rs = 0.0, 0.0
    lane_left = dl + (0.0 + lnn * z[2])
    lane_right = dr + (0.0 + lnn * z[3])
    alpha = dt / (ff_lag + dt)
    ff_next = ff + alpha * (k_road - ff)
    k_des = ff_next - cg * offset - hg * psi + (0.0 + cvn * z[4])
    k_des = clamp(k_des, -kmax, kmax)
    return valid, rd, rs, lane_left, lane_right, k_des, ff_next


class TestPerceptionHeadArrays:
    @settings(max_examples=200, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.booleans(),  # lead present
                st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
                small,  # rel speed
                small,  # dist_right
                small,  # dist_left
                st.floats(min_value=-0.2, max_value=0.2, allow_nan=False),
                small,  # offset
                st.floats(min_value=-1.5, max_value=1.5, allow_nan=False),
                st.floats(min_value=-0.2, max_value=0.2, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        ),
        dt=st.floats(min_value=1e-3, max_value=0.1, allow_nan=False),
        draws=st.lists(
            st.tuples(noise_draw, noise_draw, noise_draw, noise_draw, noise_draw),
            min_size=8,
            max_size=8,
        ),
    )
    def test_matches_scalar_lane_by_lane(self, data, dt, draws):
        n = len(data)
        cols = list(zip(*data))
        present = np.array(cols[0])
        gap = np.array(cols[1])
        rel = np.array(cols[2])
        dr = np.array(cols[3])
        dl = np.array(cols[4])
        k_road = np.array(cols[5])
        offset = np.array(cols[6])
        psi = np.array(cols[7])
        ff = np.array(cols[8])
        noise = np.array(draws[:n])
        # Heterogeneous per-lane params exercise the broadcasting paths.
        det = np.full(n, 120.0)
        blind = np.full(n, 2.0)
        cg = np.full(n, 0.0010)
        hg = np.full(n, 0.05)
        ff_lag = np.full(n, 0.25)
        rdn = np.full(n, 0.15)
        rsn = np.full(n, 0.05)
        lnn = np.full(n, 0.02)
        cvn = np.full(n, 2.0e-5)
        kmax = np.full(n, 0.13)

        out = perception_head_arrays(
            dt, present, gap, rel, noise, dr, dl, k_road, offset, psi, ff,
            det, blind, cg, hg, ff_lag, rdn, rsn, lnn, cvn, kmax,
        )
        for i in range(n):
            params = (
                120.0, 2.0, 0.0010, 0.05, 0.25, 0.15, 0.05, 0.02,
                2.0e-5, 0.13, noise[i],
            )
            expected = _scalar_perception(dt, data[i], params)
            got = tuple(np.asarray(head)[i] for head in out)
            assert bool(got[0]) == expected[0], f"lane {i}: valid"
            for k in range(1, 7):
                # Bit-exact: repr-identical floats, signed zeros included.
                assert math.copysign(1.0, got[k]) == math.copysign(
                    1.0, expected[k]
                ) and got[k] == expected[k], (
                    f"lane {i} head {k}: {got[k]!r} != {expected[k]!r}"
                )


tracker_state = st.tuples(
    st.booleans(),  # valid
    st.floats(min_value=0.0, max_value=300.0, allow_nan=False),  # rd
    small,  # rs
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),  # time_since_seen
)
tracker_frame = st.tuples(
    st.booleans(),  # lead_valid
    st.floats(min_value=0.0, max_value=300.0, allow_nan=False),  # lead_rd
    small,  # lead_rs
)


class TestTrackerStepArrays:
    @settings(max_examples=200, deadline=None)
    @given(
        lanes=st.lists(
            st.tuples(tracker_state, tracker_frame), min_size=1, max_size=8
        ),
        dt=st.floats(min_value=1e-3, max_value=0.1, allow_nan=False),
        alpha=gain,
        beta=gain,
        coast=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_matches_scalar_lane_by_lane(self, lanes, dt, alpha, beta, coast):
        from repro.adas.lead_tracker import tracker_step_arrays

        n = len(lanes)
        valid = np.array([s[0][0] for s in lanes])
        rd = np.array([s[0][1] for s in lanes])
        rs = np.array([s[0][2] for s in lanes])
        tss = np.array([s[0][3] for s in lanes])
        lv = np.array([s[1][0] for s in lanes])
        lrd = np.array([s[1][1] for s in lanes])
        lrs = np.array([s[1][2] for s in lanes])

        out = tracker_step_arrays(
            valid, rd, rs, tss, lv, lrd, lrs, dt,
            np.full(n, alpha), np.full(n, beta), np.full(n, coast),
        )

        for i, (state, frame) in enumerate(lanes):
            tracker = LeadTracker(alpha=alpha, beta=beta, coast_time=coast)
            tracker._valid = state[0]
            tracker._rd = state[1]
            tracker._rs = state[2]
            tracker._time_since_seen = state[3]
            tracker.update(
                PerceptionOutput(
                    lead_valid=frame[0],
                    lead_rd=frame[1],
                    lead_rs=frame[2],
                    lane_left=0.0,
                    lane_right=0.0,
                    desired_curvature=0.0,
                ),
                dt,
            )
            assert bool(out[0][i]) == tracker._valid, f"lane {i}: valid"
            assert out[1][i] == tracker._rd, f"lane {i}: rd"
            assert out[2][i] == tracker._rs, f"lane {i}: rs"
            assert out[3][i] == tracker._time_since_seen, f"lane {i}: tss"
