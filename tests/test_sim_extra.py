"""Additional simulator coverage: Frenet consistency, curves, collisions."""

import math

import pytest

from repro.sim.road import Road, RoadSegment
from repro.sim.track import build_highway_map
from repro.sim.vehicle import EgoVehicle
from repro.sim.world import World

DT = 0.01


class TestFrenetOnCurves:
    def test_matched_curvature_keeps_lane(self):
        """Steering exactly for the road curvature holds d ~ 0."""
        road = Road([RoadSegment(2000.0, 1.0 / 300.0)])
        ego = EgoVehicle(road, s=0.0, d=0.0, speed=20.0)
        steer = math.atan(ego.params.wheelbase / 300.0)
        ego.apply_controls(0.3, steer)
        ego.steer = steer  # pre-steered into the curve
        for _ in range(1500):
            ego.step(DT)
        assert abs(ego.d) < 0.25
        assert abs(ego.psi) < 0.05

    def test_no_steering_on_curve_drifts_outward(self):
        road = Road([RoadSegment(2000.0, 1.0 / 300.0)])  # left curve
        ego = EgoVehicle(road, s=0.0, d=0.0, speed=20.0)
        ego.apply_controls(0.0, 0.0)
        for _ in range(300):
            ego.step(DT)
        assert ego.d < -0.3  # tangential travel = drift to the right

    def test_arc_length_progress_on_curve(self):
        road = Road([RoadSegment(2000.0, 1.0 / 300.0)])
        ego = EgoVehicle(road, s=0.0, d=0.0, speed=20.0)
        steer = math.atan(ego.params.wheelbase / 300.0)
        ego.apply_controls(0.0, steer)
        ego.steer = steer
        for _ in range(500):
            ego.step(DT)
        # 5 s at 20 m/s with matched curvature: s advances ~100 m.
        assert ego.s == pytest.approx(100.0, abs=4.0)

    def test_inner_offset_speeds_arc_progress(self):
        # With d < 0 on a left curve (outside), 1 - d*k > 1 so s_dot < v.
        road = Road([RoadSegment(2000.0, 1.0 / 300.0)])
        inner = EgoVehicle(road, s=0.0, d=1.0, speed=20.0)
        outer = EgoVehicle(road, s=0.0, d=-1.0, speed=20.0)
        for veh in (inner, outer):
            veh.apply_controls(0.0, math.atan(veh.params.wheelbase / 300.0))
            veh.steer = math.atan(veh.params.wheelbase / 300.0)
            for _ in range(200):
                veh.step(DT)
        assert inner.s > outer.s


class TestHighwayMapDriving:
    def test_full_map_traverse_with_matched_steering(self):
        """Driving the whole evaluation map with per-step curvature-matched
        steering stays within a lane width of centre."""
        road = build_highway_map()
        ego = EgoVehicle(road, s=10.0, d=0.0, speed=22.0)
        max_offset = 0.0
        for _ in range(12_000):
            k = road.curvature_at(ego.s + 15.0)
            steer_ff = math.atan(ego.params.wheelbase * k)
            correction = -0.02 * ego.d - 0.4 * ego.psi
            ego.apply_controls(0.2, steer_ff + correction)
            ego.step(DT)
            max_offset = max(max_offset, abs(ego.d))
        assert ego.s > 2500.0
        assert max_offset < 1.0


class TestCollisionGeometry:
    def test_no_collision_without_overlap(self):
        road = build_highway_map()
        ego = EgoVehicle(road, s=100.0, d=0.0, speed=0.0)
        world = World(road, ego)
        from repro.sim.agents import AgentBinding
        from repro.sim.vehicle import KinematicActor

        near_miss = KinematicActor(road, s=100.0, d=1.9, speed=0.0, name="n")
        world.add_agent(AgentBinding(near_miss, None))
        world.step(DT)
        assert world.collision is None  # 1.9 m > 1.85 m body overlap bound

    def test_collision_with_overlap(self):
        road = build_highway_map()
        ego = EgoVehicle(road, s=100.0, d=0.0, speed=0.0)
        world = World(road, ego)
        from repro.sim.agents import AgentBinding
        from repro.sim.vehicle import KinematicActor

        brushing = KinematicActor(road, s=102.0, d=1.5, speed=0.0, name="b")
        world.add_agent(AgentBinding(brushing, None))
        world.step(DT)
        assert world.collision is not None
        assert world.collision.lateral

    def test_collision_latched_once(self):
        road = build_highway_map()
        ego = EgoVehicle(road, s=100.0, d=0.0, speed=5.0)
        world = World(road, ego)
        from repro.sim.agents import AgentBinding
        from repro.sim.vehicle import KinematicActor

        wall = KinematicActor(road, s=104.0, d=0.0, speed=0.0, name="wall")
        world.add_agent(AgentBinding(wall, None))
        for _ in range(200):
            world.step(DT)
        first = world.collision
        world.step(DT)
        assert world.collision is first
