"""Pluggable cache-backend tests.

Covers the :class:`CacheBackend` split — directory backend byte-compat
with the historical ``CampaignCache``, the in-memory LRU, read-through
``TieredCache`` composition — plus the environment fail-fast behaviour
of ``default_cache`` and the ``repro cache`` maintenance helpers
(inventory / verify / gc).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.attacks.campaign import CampaignSpec
from repro.attacks.fi import FaultType
from repro.core.cache import (
    CacheBackend,
    CampaignCache,
    DirectoryCacheBackend,
    MemoryCacheBackend,
    TieredCache,
    cache_entries,
    campaign_digest,
    default_cache,
    episode_from_canonical,
    canonical_episode,
    canonical_interventions,
    gc_cache,
    interventions_from_canonical,
    verify_cache,
)
from repro.core.experiment import run_campaign
from repro.core.metrics import save_results
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig
from repro.sim.weather import FRICTION_CONDITIONS
from tests.conftest import episode

SPEC = CampaignSpec(
    fault_types=[FaultType.NONE],
    scenario_ids=("S1",),
    initial_gaps=(60.0,),
    repetitions=2,
    seed=3,
)
CFG = InterventionConfig()

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


@pytest.fixture(scope="module")
def results():
    return run_campaign(SPEC, CFG, cache=False, max_steps=200).results


class TestCanonicalRoundTrip:
    def test_episode_round_trip(self):
        spec = episode(fault=FaultType.MIXED, seed=99)
        assert episode_from_canonical(canonical_episode(spec)) == spec

    def test_episode_round_trip_with_friction_and_params(self):
        spec = episode()
        spec = type(spec)(
            scenario_id="friction-sweep",
            initial_gap=80.0,
            fault_type=FaultType.RELATIVE_DISTANCE,
            repetition=2,
            seed=17,
            friction=FRICTION_CONDITIONS["50% off"],
            params=(("mu", 0.55), ("lead_mph", 50.0)),
        )
        rebuilt = episode_from_canonical(canonical_episode(spec))
        assert rebuilt == spec
        assert rebuilt.params == (("mu", 0.55), ("lead_mph", 50.0))

    def test_interventions_round_trip(self):
        cfg = InterventionConfig(
            driver=True,
            safety_check=True,
            aeb=AebsConfig.INDEPENDENT,
            driver_reaction_time=1.5,
            aeb_overrides_driver=False,
            name="custom",
        )
        assert interventions_from_canonical(canonical_interventions(cfg)) == cfg

    def test_missing_key_is_a_clear_error(self):
        with pytest.raises(ValueError, match="missing key"):
            episode_from_canonical({"scenario_id": "S1"})


class TestDirectoryBackend:
    def test_campaign_cache_is_the_directory_backend(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        assert isinstance(cache, DirectoryCacheBackend)
        assert isinstance(cache, CacheBackend)
        assert cache.directory == str(tmp_path)

    def test_layout_unchanged(self, tmp_path, results):
        # The on-disk exchange format: <digest>.jsonl, loadable by every
        # JSONL consumer — the byte-compat contract of the backend split.
        cache = DirectoryCacheBackend(str(tmp_path))
        key = campaign_digest(SPEC, CFG, max_steps=200)
        path = cache.put(key, results)
        assert path == os.path.join(str(tmp_path), f"{key}.jsonl")
        assert cache.get(key) == results
        assert cache.entry_count(key) == len(results)
        assert cache.keys() == [key]

    def test_missing_directory_reads_as_empty(self, tmp_path):
        cache = DirectoryCacheBackend(str(tmp_path / "never"), create=False)
        assert cache.keys() == []
        assert len(cache) == 0
        assert KEY_A not in cache


class TestMemoryBackend:
    def test_put_get_round_trip(self, results):
        cache = MemoryCacheBackend()
        cache.put(KEY_A, results)
        assert cache.get(KEY_A) == results
        assert cache.entry_count(KEY_A) == len(results)
        assert cache.get(KEY_B) is None
        assert cache.keys() == [KEY_A]

    def test_lru_eviction_order(self, results):
        cache = MemoryCacheBackend(max_entries=2)
        cache.put(KEY_A, results)
        cache.put(KEY_B, results)
        cache.get(KEY_A)  # refresh A: B is now least recently used
        cache.put(KEY_C, results)
        assert cache.get(KEY_B) is None
        assert cache.get(KEY_A) is not None
        assert cache.get(KEY_C) is not None

    def test_returned_list_is_isolated(self, results):
        cache = MemoryCacheBackend()
        cache.put(KEY_A, results)
        hit = cache.get(KEY_A)
        hit.clear()  # a caller mutating its copy must not corrupt the cache
        assert cache.get(KEY_A) == results

    def test_invalid_capacity_and_keys(self, results):
        with pytest.raises(ValueError, match="max_entries"):
            MemoryCacheBackend(max_entries=0)
        cache = MemoryCacheBackend()
        with pytest.raises(ValueError, match="lowercase hex"):
            cache.put("NOT-HEX", results)


class TestTieredCache:
    def test_write_through_all_tiers(self, tmp_path, results):
        memory = MemoryCacheBackend()
        directory = DirectoryCacheBackend(str(tmp_path))
        tiered = TieredCache(memory, directory)
        tiered.put(KEY_A, results)
        assert memory.get(KEY_A) == results
        assert directory.get(KEY_A) == results

    def test_read_through_promotes_into_faster_tier(self, tmp_path, results):
        memory = MemoryCacheBackend()
        directory = DirectoryCacheBackend(str(tmp_path))
        directory.put(KEY_A, results)
        tiered = TieredCache(memory, directory)
        assert memory.get(KEY_A) is None
        assert tiered.get(KEY_A) == results
        assert memory.get(KEY_A) == results  # promoted

        # A promoted entry is served even after the slow tier loses it.
        os.remove(directory.path(KEY_A))
        assert tiered.get(KEY_A) == results

    def test_entry_count_and_keys_merge_tiers(self, tmp_path, results):
        memory = MemoryCacheBackend()
        directory = DirectoryCacheBackend(str(tmp_path))
        memory.put(KEY_A, results)
        directory.put(KEY_B, results)
        tiered = TieredCache(memory, directory)
        assert tiered.keys() == sorted([KEY_A, KEY_B])
        assert tiered.entry_count(KEY_A) == len(results)
        assert tiered.entry_count(KEY_B) == len(results)
        assert tiered.entry_count(KEY_C) is None
        assert tiered.directory == str(tmp_path)

    def test_requires_a_tier(self):
        with pytest.raises(ValueError, match="at least one"):
            TieredCache()

    def test_run_campaign_accepts_tiered_cache(self, tmp_path, results):
        tiered = TieredCache(
            MemoryCacheBackend(), DirectoryCacheBackend(str(tmp_path))
        )
        first = run_campaign(SPEC, CFG, cache=tiered, max_steps=200)
        assert first.results == results
        # Second run is a pure memory hit: delete the directory tier's
        # entry and the campaign must still be served without executing.
        key = campaign_digest(SPEC, CFG, max_steps=200)
        os.remove(DirectoryCacheBackend(str(tmp_path)).path(key))
        again = run_campaign(SPEC, CFG, cache=tiered, max_steps=200)
        assert again.results == results


class TestDefaultCacheEnvironment:
    def test_unset_is_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache() is None

    def test_value_names_a_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cache = default_cache()
        assert isinstance(cache, CampaignCache)

    def test_file_value_fails_fast_naming_the_variable(
        self, tmp_path, monkeypatch
    ):
        bogus = tmp_path / "a-file"
        bogus.write_text("not a directory")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(bogus))
        with pytest.raises(ValueError, match="REPRO_CACHE_DIR") as excinfo:
            default_cache()
        assert str(bogus) in str(excinfo.value)

    def test_nested_under_file_fails_fast(self, tmp_path, monkeypatch):
        bogus = tmp_path / "a-file"
        bogus.write_text("not a directory")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(bogus / "sub"))
        with pytest.raises(ValueError, match="REPRO_CACHE_DIR"):
            default_cache()


class TestMaintenance:
    def seeded(self, tmp_path, results):
        cache = CampaignCache(str(tmp_path))
        cache.put(KEY_A, results)
        cache.put(KEY_B, results)
        return cache

    def test_inventory_reports_counts_sizes_ages(self, tmp_path, results):
        cache = self.seeded(tmp_path, results)
        entries = cache_entries(cache, now=time.time() + 10)
        assert [e.key for e in entries] == [KEY_A, KEY_B]
        for entry in entries:
            assert entry.episodes == len(results)
            assert entry.size_bytes == os.path.getsize(entry.path)
            assert entry.age_seconds >= 10

    def test_verify_reports_corruption_without_deleting(
        self, tmp_path, results
    ):
        cache = self.seeded(tmp_path, results)
        with open(cache.path(KEY_A), "a") as handle:
            handle.write('{"truncated":')
        report = verify_cache(cache)
        assert report[KEY_B] is None
        assert report[KEY_A] is not None
        # Read-only: the corrupt entry is still there for inspection.
        assert os.path.exists(cache.path(KEY_A))

    def test_verify_flags_mixed_labels(self, tmp_path, results):
        cache = CampaignCache(str(tmp_path))
        other = run_campaign(
            SPEC, InterventionConfig(driver=True), cache=False, max_steps=200
        ).results
        save_results(results + other, cache.path(KEY_A))
        report = verify_cache(cache)
        assert "mixed intervention labels" in report[KEY_A]

    def test_gc_removes_only_old_entries(self, tmp_path, results):
        cache = self.seeded(tmp_path, results)
        old = time.time() - 10 * 86400
        os.utime(cache.path(KEY_A), (old, old))
        removed, reclaimed = gc_cache(cache, keep_days=7)
        assert removed == [KEY_A]
        assert reclaimed > 0
        assert not os.path.exists(cache.path(KEY_A))
        assert os.path.exists(cache.path(KEY_B))

    def test_gc_sweeps_orphaned_temp_files(self, tmp_path, results):
        cache = self.seeded(tmp_path, results)
        orphan = os.path.join(cache.root, f".{KEY_A[:16]}-dead.tmp")
        with open(orphan, "w") as handle:
            handle.write("half-written")
        old = time.time() - 86400
        os.utime(orphan, (old, old))
        removed, reclaimed = gc_cache(cache, keep_days=0.5)
        assert removed == []  # entries are fresh
        assert reclaimed > 0
        assert not os.path.exists(orphan)

    def test_gc_rejects_negative_keep_days(self, tmp_path, results):
        cache = self.seeded(tmp_path, results)
        with pytest.raises(ValueError, match="keep_days"):
            gc_cache(cache, keep_days=-1)
