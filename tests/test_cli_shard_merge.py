"""CLI tests for ``repro campaign --shard``, ``repro merge`` and resume.

Exercises the argparse-level ``--shard`` validation (0-based indices,
out-of-range indices and malformed strings must be rejected before any
simulation starts), the campaign/merge round trip, merge's refusal of
mixed-intervention and overlapping shard files, and the ``--resume`` /
``--cache-dir`` flags end to end.
"""

import pytest

from repro.attacks.campaign import ShardSpec
from repro.cli import build_parser, main
from repro.core.metrics import EpisodeResult, save_results

#: One-fault, one-rep grid capped at 300 steps: 12 quick episodes.
CAMPAIGN_ARGS = ["campaign", "--fault", "none", "--reps", "1", "--seed", "7",
                 "--max-steps", "300"]


class TestShardFlagValidation:
    def test_parses_valid_shards(self):
        args = build_parser().parse_args(CAMPAIGN_ARGS + ["--shard", "2/4"])
        assert args.shard == ShardSpec(index=2, count=4)
        assert build_parser().parse_args(
            CAMPAIGN_ARGS + ["--shard", "2/2"]
        ).shard == ShardSpec(2, 2)

    @pytest.mark.parametrize(
        "text",
        ["0/2", "3/2", "-1/4", "1/0", "a/b", "1", "1/2/3", "", "1/", "/2"],
    )
    def test_rejects_invalid_shards(self, text, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(CAMPAIGN_ARGS + ["--shard", text])
        assert "--shard" in capsys.readouterr().err

    def test_default_is_unsharded(self):
        assert build_parser().parse_args(CAMPAIGN_ARGS).shard is None


class TestCampaignCommand:
    def test_shard_merge_round_trip_matches_serial(self, tmp_path, capsys):
        serial = tmp_path / "serial.jsonl"
        assert main(CAMPAIGN_ARGS + ["-o", str(serial)]) == 0
        shards = []
        for index in (1, 2):
            path = tmp_path / f"s{index}.jsonl"
            rc = main(CAMPAIGN_ARGS + ["--shard", f"{index}/2", "-o", str(path)])
            assert rc == 0
            shards.append(str(path))
        merged = tmp_path / "merged.jsonl"
        assert main(["merge", *shards, "-o", str(merged)]) == 0
        assert merged.read_bytes() == serial.read_bytes()
        assert "merged 2 shards (12 episodes" in capsys.readouterr().out

    def test_default_output_names(self):
        args = build_parser().parse_args(CAMPAIGN_ARGS)
        assert args.output is None  # resolved to campaign.jsonl in main()
        sharded = build_parser().parse_args(CAMPAIGN_ARGS + ["--shard", "1/2"])
        assert sharded.output is None

    def test_resume_flag_completes_partial_output(self, tmp_path, capsys):
        out = tmp_path / "resumable.jsonl"
        assert main(CAMPAIGN_ARGS + ["-o", str(out)]) == 0
        reference = out.read_bytes()
        # Keep only the first 5 records, then resume.
        out.write_bytes(b"".join(reference.splitlines(keepends=True)[:5]))
        assert main(CAMPAIGN_ARGS + ["-o", str(out), "--resume"]) == 0
        assert out.read_bytes() == reference

    def test_resume_refuses_different_conditions(self, tmp_path, capsys):
        """Regression: a campaign saved at --max-steps 50 must not be
        absorbed by a --resume run at other step limits (the digest sidecar
        written next to the output records the run's inputs)."""
        out = tmp_path / "short.jsonl"
        short_args = ["campaign", "--fault", "none", "--reps", "1", "--seed",
                      "7", "--max-steps", "50"]
        assert main(short_args + ["-o", str(out)]) == 0
        assert (tmp_path / "short.jsonl.digest").exists()
        rc = main(CAMPAIGN_ARGS + ["-o", str(out), "--resume"])
        assert rc == 2
        assert "different inputs" in capsys.readouterr().err

    def test_resume_refuses_foreign_file(self, tmp_path, capsys):
        out = tmp_path / "foreign.jsonl"
        save_results([EpisodeResult(seed=1, intervention="driver")], out)
        rc = main(CAMPAIGN_ARGS + ["-o", str(out), "--resume"])
        assert rc == 2
        assert "refusing to resume" in capsys.readouterr().err

    def test_cache_dir_round_trip(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        base = CAMPAIGN_ARGS + ["--cache-dir", str(cache_dir)]
        assert main(base + ["-o", str(first)]) == 0
        assert len(list(cache_dir.glob("*.jsonl"))) == 1
        assert main(base + ["-o", str(second)]) == 0
        assert second.read_bytes() == first.read_bytes()


class TestMergeCommand:
    def test_refuses_mixed_interventions(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        save_results([EpisodeResult(seed=1, intervention="none")], a)
        save_results([EpisodeResult(seed=2, intervention="driver")], b)
        assert main(["merge", str(a), str(b), "-o", str(tmp_path / "o.jsonl")]) == 2
        assert "mixed intervention labels" in capsys.readouterr().err

    def test_refuses_overlapping_shards(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        record = EpisodeResult(scenario_id="S1", initial_gap=60.0, seed=9)
        save_results([record], a)
        save_results([record], b)
        assert main(["merge", str(a), str(b), "-o", str(tmp_path / "o.jsonl")]) == 2
        assert "overlapping shards" in capsys.readouterr().err

    def test_refuses_truncated_shard(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        save_results([EpisodeResult(seed=1), EpisodeResult(seed=2)], a)
        a.write_bytes(a.read_bytes()[:-15])
        assert main(["merge", str(a), "-o", str(tmp_path / "o.jsonl")]) == 2
        assert "partial or corrupt shard" in capsys.readouterr().err

    def test_missing_shard_file_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["merge", str(tmp_path / "nope.jsonl"), "-o",
                   str(tmp_path / "o.jsonl")])
        assert rc == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_refuses_default_named_shards_out_of_order(self, tmp_path, capsys):
        a = tmp_path / "campaign-shard-1-of-2.jsonl"
        b = tmp_path / "campaign-shard-2-of-2.jsonl"
        save_results([EpisodeResult(seed=1)], a)
        save_results([EpisodeResult(seed=2)], b)
        rc = main(["merge", str(b), str(a), "-o", str(tmp_path / "o.jsonl")])
        assert rc == 2
        assert "shard-index order" in capsys.readouterr().err
        # in index order the same files merge fine
        assert main(["merge", str(a), str(b), "-o", str(tmp_path / "o.jsonl")]) == 0

    def test_refuses_default_named_shards_of_mixed_counts(self, tmp_path, capsys):
        a = tmp_path / "campaign-shard-1-of-2.jsonl"
        b = tmp_path / "campaign-shard-2-of-3.jsonl"
        save_results([EpisodeResult(seed=1)], a)
        save_results([EpisodeResult(seed=2)], b)
        rc = main(["merge", str(a), str(b), "-o", str(tmp_path / "o.jsonl")])
        assert rc == 2
        assert "different shard counts" in capsys.readouterr().err

    def test_refuses_incomplete_default_named_shard_set(self, tmp_path, capsys):
        a = tmp_path / "campaign-shard-1-of-3.jsonl"
        c = tmp_path / "campaign-shard-3-of-3.jsonl"
        save_results([EpisodeResult(seed=1)], a)
        save_results([EpisodeResult(seed=3)], c)
        rc = main(["merge", str(a), str(c), "-o", str(tmp_path / "o.jsonl")])
        assert rc == 2
        assert "missing shard(s) 2/3" in capsys.readouterr().err

    def test_custom_names_skip_the_order_heuristic(self, tmp_path):
        # Custom-named shards: the caller owns ordering; merge still runs.
        a, b = tmp_path / "east.jsonl", tmp_path / "west.jsonl"
        save_results([EpisodeResult(seed=1)], a)
        save_results([EpisodeResult(seed=2)], b)
        assert main(["merge", str(b), str(a), "-o", str(tmp_path / "o.jsonl")]) == 0

    def test_requires_output_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["merge", "a.jsonl"])


class TestGridCommandFlags:
    def test_grid_commands_accept_resume_and_cache_flags(self):
        for name in ("episode", "table4", "table6", "table7", "table8", "report"):
            args = build_parser().parse_args(
                [name, "--resume", "statedir", "--cache-dir", "cachedir"]
            )
            assert args.resume == "statedir"
            assert args.cache_dir == "cachedir"

    def test_table4_resume_dir_populated_and_reused(self, tmp_path, capsys,
                                                    monkeypatch):
        monkeypatch.chdir(tmp_path)
        resume_dir = tmp_path / "state"
        argv = ["table4", "--reps", "1", "--seed", "9", "--resume",
                str(resume_dir)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        files = list(resume_dir.glob("*.jsonl"))
        assert len(files) == 1  # digest-named per-campaign file
        stamp = files[0].read_bytes()
        # Re-run: the campaign resumes from the complete file (0 episodes)
        # and renders identical tables from identical results.
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert files[0].read_bytes() == stamp


class TestProfileFlag:
    ARGS = CAMPAIGN_ARGS + ["--scenario", "S1", "--driver"]

    def test_profile_prints_breakdown_and_keeps_output_identical(
        self, tmp_path, capsys
    ):
        plain = tmp_path / "plain.jsonl"
        profiled = tmp_path / "profiled.jsonl"
        assert main(self.ARGS + ["--executor", "batch", "-o", str(plain)]) == 0
        capsys.readouterr()
        rc = main(
            self.ARGS
            + ["--executor", "batch", "--profile", "-o", str(profiled)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-phase wall-clock over" in out
        assert "control" in out
        assert "dynamics" in out
        assert "post-step tail" in out
        # Profiling only reads the clock: the campaign bytes are unchanged.
        assert profiled.read_bytes() == plain.read_bytes()

    def test_profile_refuses_parallel_executor(self, tmp_path, capsys):
        rc = main(
            self.ARGS
            + ["--jobs", "2", "--profile", "-o", str(tmp_path / "x.jsonl")]
        )
        assert rc == 2
        assert "parallel executor" in capsys.readouterr().err

    def test_profile_refuses_batch_jobs_hybrid(self, tmp_path, capsys):
        rc = main(
            self.ARGS
            + [
                "--executor", "batch", "--jobs", "2", "--profile",
                "-o", str(tmp_path / "x.jsonl"),
            ]
        )
        assert rc == 2
        err = capsys.readouterr().err
        # The refusal must name both conflicting flags, not just one.
        assert "--profile" in err
        assert "--jobs" in err

    def test_batch_jobs_cli_output_byte_identical_to_serial(self, tmp_path):
        serial = tmp_path / "serial.jsonl"
        hybrid = tmp_path / "hybrid.jsonl"
        assert main(
            self.ARGS + ["--executor", "serial", "-o", str(serial)]
        ) == 0
        assert main(
            self.ARGS
            + ["--executor", "batch", "--jobs", "2", "-o", str(hybrid)]
        ) == 0
        assert hybrid.read_bytes() == serial.read_bytes()

    def test_profile_refuses_scheduled_backend(self, tmp_path, capsys):
        rc = main(
            self.ARGS
            + [
                "--backend", "subprocess", "--profile",
                "--workdir", str(tmp_path / "wd"),
                "-o", str(tmp_path / "x.jsonl"),
            ]
        )
        assert rc == 2
        assert "--profile" in capsys.readouterr().err
