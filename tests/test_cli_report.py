"""Tests for the CLI and the report generator."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_episode_defaults(self):
        args = build_parser().parse_args(["episode"])
        assert args.scenario == "S1"
        assert args.fault == "relative_distance"
        assert args.aeb == "disabled"

    def test_intervention_flags(self):
        args = build_parser().parse_args(
            ["episode", "--driver", "--check", "--aeb", "independent"]
        )
        assert args.driver and args.check
        assert args.aeb == "independent"

    def test_rejects_unknown_fault(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["episode", "--fault", "gps"])


class TestCommands:
    def test_episode_command_runs(self, capsys):
        rc = main(["episode", "--scenario", "S1", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "outcome:" in out
        assert "min TTC:" in out

    def test_episode_with_aeb_prevents(self, capsys):
        rc = main(
            ["episode", "--fault", "relative_distance", "--aeb", "independent"]
        )
        assert rc == 0
        assert "prevented:  True" in capsys.readouterr().out

    def test_fig6_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "fig6.csv"
        rc = main(["fig6", "--csv", str(csv_path)])
        assert rc == 0
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("time,ego_speed")


class TestReport:
    def test_small_report_contains_all_tables(self, tmp_path):
        from repro.analysis.report import ReportConfig, generate_report

        text = generate_report(
            ReportConfig(repetitions=1, seed=5, reaction_times=(2.5,))
        )
        for marker in ("Table IV", "Table V", "Table VI", "Table VII",
                       "Table VIII", "Fig. 5", "Fig. 6"):
            assert marker in text, marker
