"""Cross-module integration grid: scenarios x faults x interventions.

Broad-but-shallow sweep asserting the platform never produces physically
impossible results under any configuration: speeds stay non-negative,
terminal accidents match the latched world events, prevention bookkeeping
is consistent, and identical seeds reproduce identical outcomes across the
intervention axis (the identical-episode comparison Table VI relies on).
"""

import pytest

from repro.attacks.campaign import EpisodeSpec
from repro.attacks.fi import FaultType
from repro.core.hazards import AccidentType
from repro.core.platform import SimulationPlatform
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig

GRID_CONFIGS = [
    InterventionConfig(),
    InterventionConfig(driver=True),
    InterventionConfig(safety_check=True),
    InterventionConfig(aeb=AebsConfig.COMPROMISED),
    InterventionConfig(aeb=AebsConfig.INDEPENDENT),
    InterventionConfig(driver=True, safety_check=True, aeb=AebsConfig.INDEPENDENT),
]


@pytest.mark.parametrize("scenario_id", ["S1", "S2", "S3", "S4", "S5", "S6"])
@pytest.mark.parametrize(
    "fault",
    [FaultType.NONE, FaultType.RELATIVE_DISTANCE, FaultType.MIXED],
)
def test_grid_sanity(scenario_id, fault):
    spec = EpisodeSpec(
        scenario_id=scenario_id,
        initial_gap=60.0,
        fault_type=fault,
        repetition=0,
        seed=4242,
    )
    cfg = InterventionConfig(driver=True, aeb=AebsConfig.INDEPENDENT)
    platform = SimulationPlatform(spec, cfg, max_steps=5000)
    result = platform.run()

    # Physical sanity.
    assert platform.world.ego.speed >= 0.0
    assert result.max_speed <= 30.0  # never far beyond the 22.35 set speed
    assert result.steps <= 5000
    assert result.duration == pytest.approx(result.steps * 0.01)

    # Accident bookkeeping consistency.
    if result.accident is AccidentType.A1:
        assert platform.world.collision is not None
        assert not platform.world.collision.lateral
    if result.accident is None:
        assert result.accident_time is None
    else:
        assert result.accident_time is not None
        assert result.accident_time <= result.duration + 1e-9

    # Prevention only defined for activated attacks.
    if fault is FaultType.NONE:
        assert not result.attack_activated
        assert not result.prevented
    elif result.prevented:
        assert result.accident is None


@pytest.mark.parametrize("config", GRID_CONFIGS, ids=lambda c: c.label())
def test_identical_seed_identical_episode(config):
    """Each intervention config sees the exact same attack episode."""
    spec = EpisodeSpec(
        scenario_id="S2",
        initial_gap=60.0,
        fault_type=FaultType.RELATIVE_DISTANCE,
        repetition=0,
        seed=31337,
    )
    first = SimulationPlatform(spec, config, max_steps=4000).run()
    second = SimulationPlatform(spec, config, max_steps=4000).run()
    assert first.accident == second.accident
    assert first.min_ttc == second.min_ttc
    assert first.attack_first_activation == second.attack_first_activation


def test_attack_onset_invariant_across_interventions():
    """The attack trigger depends on true geometry, so until the control
    loops diverge, every configuration sees the same onset."""
    spec = EpisodeSpec(
        scenario_id="S1",
        initial_gap=60.0,
        fault_type=FaultType.RELATIVE_DISTANCE,
        repetition=0,
        seed=99,
    )
    onsets = set()
    for cfg in (InterventionConfig(), InterventionConfig(safety_check=True)):
        result = SimulationPlatform(spec, cfg, max_steps=3000).run()
        onsets.add(result.attack_first_activation)
    assert len(onsets) == 1


def test_interventions_never_hurt_fault_free_runs():
    """Safety mechanisms must not cause accidents in benign episodes."""
    for sid in ("S1", "S2", "S3", "S5", "S6"):
        spec = EpisodeSpec(
            scenario_id=sid,
            initial_gap=60.0,
            fault_type=FaultType.NONE,
            repetition=0,
            seed=777,
        )
        cfg = InterventionConfig(
            driver=True, safety_check=True, aeb=AebsConfig.INDEPENDENT
        )
        result = SimulationPlatform(spec, cfg).run()
        assert result.accident is None, sid


def test_aeb_trigger_rate_low_in_benign_runs():
    """The AEBS must not fire on most benign approaches (its thresholds sit
    at the boundary of the stack's normal approach TTC)."""
    triggers = 0
    for seed in range(5):
        spec = EpisodeSpec(
            scenario_id="S1",
            initial_gap=60.0,
            fault_type=FaultType.NONE,
            repetition=0,
            seed=1000 + seed,
        )
        result = SimulationPlatform(
            spec, InterventionConfig(aeb=AebsConfig.INDEPENDENT)
        ).run()
        triggers += result.aeb.triggered
    assert triggers <= 3
