"""Determinism properties of the digest/canonical layer.

Two attack surfaces the lint rules police statically are proven
dynamically here:

* **dict insertion order** — ``campaign_digest`` serialises with
  ``sort_keys``, so the order platform kwargs are supplied in must never
  reach the digest bytes (hypothesis drives permutations);
* **``PYTHONHASHSEED``** — string hash randomisation reorders every set
  and dict-iteration in the process, so byte-equal digests across two
  interpreter runs with different hash seeds prove no set-ordering leak
  survives on the digest path (subprocess pair).
"""

import math
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.attacks.campaign import CampaignSpec
from repro.attacks.fi import FaultType
from repro.core.cache import campaign_digest
from repro.safety.arbitration import InterventionConfig
from repro.sim.families import param_token
from repro.utils.canonical import canonical_scalar

SPEC = CampaignSpec(
    fault_types=[FaultType.RELATIVE_DISTANCE, FaultType.NONE],
    scenario_ids=("S1", "S2"),
    initial_gaps=(40.0, 60.0),
    repetitions=2,
    seed=11,
)
CFG = InterventionConfig()

#: Plausible platform-override items a campaign might carry.
PLATFORM_ITEMS = [
    ("max_steps", 300),
    ("dt", 0.01),
    ("sensor_noise", 0.002),
    ("label", "prop"),
    ("warmup_steps", 25),
]


@settings(max_examples=25, deadline=None)
@given(st.permutations(PLATFORM_ITEMS))
def test_digest_insensitive_to_kwargs_insertion_order(items):
    reference = campaign_digest(SPEC, CFG, **dict(PLATFORM_ITEMS))
    assert campaign_digest(SPEC, CFG, **dict(items)) == reference


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["initial_gap", "mu", "offset", "speed"]),
            st.floats(allow_nan=False, allow_infinity=False),
        ),
        min_size=1,
        max_size=4,
    )
)
def test_param_token_round_trips_every_value(params):
    token = param_token(tuple(params))
    rendered = token.split(",")
    assert len(rendered) == len(params)
    for (name, value), part in zip(params, rendered):
        text_name, _, text_value = part.partition("=")
        assert text_name == name
        assert float(text_value) == value  # full precision survives


@settings(max_examples=50, deadline=None)
@given(st.floats(allow_nan=False, allow_infinity=False))
def test_canonical_scalar_is_repr_exact_for_floats(value):
    assert float(canonical_scalar(value)) == value


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_canonical_scalar_rejects_non_finite(bad):
    with pytest.raises(ValueError, match="non-finite"):
        canonical_scalar(bad)


#: Computes one digest (spec enumeration + canonical forms + JSON), the
#: full path a set-ordering leak would poison.
_DIGEST_SCRIPT = textwrap.dedent(
    """\
    from repro.attacks.campaign import CampaignSpec
    from repro.attacks.fi import FaultType
    from repro.core.cache import campaign_digest
    from repro.safety.arbitration import InterventionConfig

    spec = CampaignSpec(
        fault_types=[FaultType.RELATIVE_DISTANCE, FaultType.NONE],
        scenario_ids=("S1", "S2"),
        initial_gaps=(40.0, 60.0),
        repetitions=2,
        seed=11,
    )
    print(
        campaign_digest(
            spec, InterventionConfig(), max_steps=300, dt=0.01, label="prop"
        ),
        end="",
    )
    """
)


def _digest_under_hash_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    result = subprocess.run(
        [sys.executable, "-c", _DIGEST_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    digest = result.stdout.strip()
    assert len(digest) == 64, f"unexpected digest output: {result.stdout!r}"
    return digest


def test_digest_identical_across_hash_seeds():
    # Hash randomisation reorders sets/dicts differently under the two
    # seeds; equal bytes prove no iteration order reaches the digest.
    assert _digest_under_hash_seed("0") == _digest_under_hash_seed("1")


def test_digest_in_process_matches_subprocess():
    # The in-process digest (whatever hash seed pytest runs under) must
    # match the pinned-seed subprocesses too.
    expected = campaign_digest(
        SPEC, CFG, max_steps=300, dt=0.01, label="prop"
    )
    assert _digest_under_hash_seed("0") == expected


def test_param_token_uses_canonical_scalar():
    # The refactor is byte-identical to the historical f-string form:
    # labels, seeds and digests must not have moved.
    assert param_token((("initial_gap", 60.0),)) == "initial_gap=60.0"
    assert param_token((("mu", 0.35), ("reps", 3))) == "mu=0.35,reps=3"
