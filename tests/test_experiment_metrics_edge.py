"""Edge-case tests for metrics aggregation and experiment plumbing."""

import pytest

from repro.core.hazards import AccidentType, HazardMonitor
from repro.core.metrics import EpisodeResult, aggregate, group_by
from repro.sim.agents import AgentBinding, CruiseBehavior
from repro.sim.track import build_straight_map
from repro.sim.vehicle import EgoVehicle, KinematicActor
from repro.sim.world import World


class TestHazardMonitor:
    def make_world(self, gap=40.0, ego_speed=20.0, lead_speed=13.0):
        road = build_straight_map()
        ego = EgoVehicle(road, s=50.0, d=0.0, speed=ego_speed)
        world = World(road, ego)
        lead = KinematicActor(
            road, s=ego.front_s + gap + 2.35, d=0.0, speed=lead_speed, name="LV"
        )
        world.add_agent(AgentBinding(lead, CruiseBehavior(lead_speed)))
        return world

    def test_h1_on_low_ttc(self):
        world = self.make_world(gap=10.0, ego_speed=20.0, lead_speed=13.0)
        monitor = HazardMonitor()
        world.step(0.01)
        monitor.update(world)
        assert monitor.h1.occurred  # ttc = 10/7 = 1.4 s < 2.5 s

    def test_h1_on_tight_headway(self):
        world = self.make_world(gap=5.0, ego_speed=20.0, lead_speed=20.0)
        monitor = HazardMonitor()
        world.step(0.01)
        monitor.update(world)
        assert monitor.h1.occurred  # 5 m < 0.35 * 20

    def test_h2_on_lane_line_proximity(self):
        world = self.make_world()
        world.ego.d = 0.88  # body within 0.1 m of the left line
        monitor = HazardMonitor()
        world.step(0.01)
        monitor.update(world)
        assert monitor.h2.occurred

    def test_no_hazard_when_nominal(self):
        world = self.make_world(gap=40.0, ego_speed=14.0, lead_speed=13.4)
        monitor = HazardMonitor()
        world.step(0.01)
        monitor.update(world)
        assert not monitor.any_hazard

    def test_a2_implies_h2_latched(self):
        world = self.make_world()
        world.ego.d = -3.2  # off the road to the right
        monitor = HazardMonitor()
        world.step(0.01)
        accident = monitor.update(world)
        assert accident is AccidentType.A2
        assert monitor.h2.occurred

    def test_accident_is_terminal_and_stable(self):
        world = self.make_world()
        world.ego.d = -3.2
        monitor = HazardMonitor()
        world.step(0.01)
        first = monitor.update(world)
        world.ego.d = 0.0  # "recovers" — but the accident already latched
        world.step(0.01)
        second = monitor.update(world)
        assert first is second is AccidentType.A2
        assert monitor.accident_time is not None

    def test_first_time_recorded_once(self):
        world = self.make_world(gap=10.0)
        monitor = HazardMonitor()
        world.step(0.01)
        monitor.update(world)
        t_first = monitor.h1.first_time
        world.step(0.01)
        monitor.update(world)
        assert monitor.h1.first_time == t_first

    # The four edge cases below pin the exact scalar semantics the batch
    # screen (repro.sim.batch_hazards) must reproduce: what a latched
    # accident short-circuits, what a zero ego speed does to the headway
    # rule, which collisions latch A1 vs A2, and which hazard an accident
    # latch marks.

    def test_zero_speed_headway_never_fires(self):
        # headway threshold = 0.35 * 0 = 0 and gap is clamped >= 0, so a
        # standing ego can violate no headway no matter how close the lead.
        world = self.make_world(gap=0.5, ego_speed=0.0, lead_speed=0.0)
        monitor = HazardMonitor()
        world.step(0.01)
        monitor.update(world)
        assert not monitor.h1.occurred

    def test_latched_accident_short_circuits_hazard_marks(self):
        # Latch A2 (off-road) under nominal H1 conditions, then create a
        # blatant H1 situation: update() must return early and mark nothing.
        world = self.make_world(gap=40.0, ego_speed=14.0, lead_speed=13.4)
        world.ego.d = -3.2
        monitor = HazardMonitor()
        world.step(0.01)
        assert monitor.update(world) is AccidentType.A2
        assert not monitor.h1.occurred
        world.ego.d = 0.0
        world.ego.speed = 20.0
        lead = world.agents[0].actor
        lead.s = world.ego.front_s + 3.0 + 0.5 * lead.params.length
        lead.speed = 0.0
        world.step(0.01)
        assert monitor.update(world) is AccidentType.A2
        assert not monitor.h1.occurred  # short-circuit: no new marks

    def test_forward_collision_latches_a1_and_marks_h1(self):
        # Standing ego overlapping a standing in-lane actor: neither H1
        # rule can fire (closing = 0, headway threshold = 0), so h1 is
        # marked by the A1 latch alone, stamped with the collision time.
        world = self.make_world(gap=5.0, ego_speed=0.0, lead_speed=0.0)
        lead = world.agents[0].actor
        lead.s = world.ego.s  # full longitudinal overlap, same lane
        world.step(0.01)
        monitor = HazardMonitor()
        accident = monitor.update(world)
        assert accident is AccidentType.A1
        assert world.collision is not None and not world.collision.lateral
        assert monitor.h1.occurred
        assert monitor.h1.first_time == world.collision.time
        assert not monitor.h2.occurred

    def test_lateral_collision_latches_a2_and_marks_h2(self):
        # Same overlap but offset past 60% of the lane half-width: the
        # collision is lateral, so it latches A2 (and marks h2, not h1).
        world = self.make_world(gap=5.0, ego_speed=0.0, lead_speed=0.0)
        lead = world.agents[0].actor
        lead.s = world.ego.s
        lead.d = 1.5  # > 0.6 * lane_half, < body-overlap width
        world.step(0.01)
        monitor = HazardMonitor()
        accident = monitor.update(world)
        assert accident is AccidentType.A2
        assert world.collision is not None and world.collision.lateral
        assert monitor.h2.occurred
        assert monitor.h2.first_time == world.collision.time
        assert not monitor.h1.occurred


class TestGrouping:
    def results(self):
        r1 = EpisodeResult(scenario_id="S1", fault_type="mixed")
        r2 = EpisodeResult(scenario_id="S1", fault_type="none")
        r3 = EpisodeResult(scenario_id="S2", fault_type="mixed")
        return [r1, r2, r3]

    def test_group_by_scenario(self):
        groups = group_by(self.results(), "scenario_id")
        assert len(groups["S1"]) == 2
        assert len(groups["S2"]) == 1

    def test_group_by_fault(self):
        groups = group_by(self.results(), "fault_type")
        assert set(groups) == {"mixed", "none"}


class TestAggregateEdgeCases:
    def test_no_attacked_episodes_prevented_zero(self):
        stats = aggregate([EpisodeResult()])
        assert stats.prevented_rate == 0.0

    def test_mitigation_time_none_when_never_triggered(self):
        stats = aggregate([EpisodeResult()])
        assert stats.aeb_mitigation_time is None
        assert stats.driver_brake_mitigation_time is None

    def test_following_distance_none_when_never_following(self):
        stats = aggregate([EpisodeResult()])
        assert stats.mean_following_distance is None

    def test_min_over_episodes(self):
        a = EpisodeResult()
        a.min_ttc = 3.0
        b = EpisodeResult()
        b.min_ttc = 1.5
        assert aggregate([a, b]).min_ttc == 1.5

    def test_hazard_rate(self):
        a = EpisodeResult()
        a.h1 = True
        b = EpisodeResult()
        assert aggregate([a, b]).hazard_rate == 0.5
