"""Unit tests for repro.sim.road and repro.sim.track."""

import math

import pytest

from repro.sim.road import Road, RoadSegment, _advance
from repro.sim.track import build_highway_map, build_straight_map


class TestRoadSegment:
    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            RoadSegment(0.0, 0.0)

    def test_rejects_extreme_curvature(self):
        with pytest.raises(ValueError):
            RoadSegment(100.0, 0.5)


class TestRoadGeometry:
    def test_total_length(self):
        road = Road([RoadSegment(100.0, 0.0), RoadSegment(50.0, 0.01)])
        assert road.length == pytest.approx(150.0)

    def test_requires_segments(self):
        with pytest.raises(ValueError):
            Road([])

    def test_curvature_lookup(self):
        road = Road([RoadSegment(100.0, 0.0), RoadSegment(50.0, 0.01)])
        assert road.curvature_at(50.0) == 0.0
        assert road.curvature_at(120.0) == 0.01

    def test_curvature_clamps_ends(self):
        road = Road([RoadSegment(100.0, 0.002)])
        assert road.curvature_at(-5.0) == 0.002
        assert road.curvature_at(500.0) == 0.002

    def test_curvature_ahead_averages_across_boundary(self):
        road = Road([RoadSegment(100.0, 0.0), RoadSegment(100.0, 0.01)])
        ahead = road.curvature_ahead(95.0, 10.0)
        assert 0.0 < ahead < 0.01

    def test_lane_centers(self):
        road = Road([RoadSegment(100.0, 0.0)], num_lanes=2, lane_width=3.7)
        assert road.lane_center(0) == 0.0
        assert road.lane_center(1) == pytest.approx(3.7)

    def test_lane_center_bounds_check(self):
        road = Road([RoadSegment(100.0, 0.0)], num_lanes=2)
        with pytest.raises(ValueError):
            road.lane_center(2)

    def test_lane_bounds(self):
        road = Road([RoadSegment(100.0, 0.0)], lane_width=3.7)
        right, left = road.lane_bounds(0)
        assert right == pytest.approx(-1.85)
        assert left == pytest.approx(1.85)

    def test_road_bounds_two_lanes(self):
        road = Road([RoadSegment(100.0, 0.0)], num_lanes=2, lane_width=3.7)
        right, left = road.road_bounds()
        assert right == pytest.approx(-1.85)
        assert left == pytest.approx(5.55)

    def test_nearest_lane_assignment(self):
        road = Road([RoadSegment(100.0, 0.0)], num_lanes=2, lane_width=3.7)
        assert road.nearest_lane(0.0) == 0
        assert road.nearest_lane(1.8) == 0
        assert road.nearest_lane(1.9) == 1
        assert road.nearest_lane(3.7) == 1
        # clamped beyond the outermost lanes
        assert road.nearest_lane(10.0) == 1
        assert road.nearest_lane(-10.0) == 0

    def test_world_pose_straight(self):
        road = Road([RoadSegment(100.0, 0.0)])
        x, y, heading = road.world_pose(50.0, 0.0)
        assert (x, y, heading) == pytest.approx((50.0, 0.0, 0.0))

    def test_world_pose_lateral_offset(self):
        road = Road([RoadSegment(100.0, 0.0)])
        x, y, heading = road.world_pose(10.0, 2.0)
        assert y == pytest.approx(2.0)

    def test_advance_full_circle(self):
        # advancing a full circle returns to the start
        radius = 100.0
        x, y, h = _advance(0.0, 0.0, 0.0, 2 * math.pi * radius, 1.0 / radius)
        assert x == pytest.approx(0.0, abs=1e-6)
        assert y == pytest.approx(0.0, abs=1e-6)
        assert h == pytest.approx(2 * math.pi)


class TestMaps:
    def test_highway_length_covers_episode(self):
        road = build_highway_map()
        # 100 s at 50 mph = ~2.24 km; map must be longer.
        assert road.length > 2500.0

    def test_highway_has_both_curve_directions(self):
        road = build_highway_map()
        curvatures = [seg.curvature for seg in road.segments]
        assert any(c > 0 for c in curvatures)
        assert any(c < 0 for c in curvatures)
        assert any(c == 0 for c in curvatures)

    def test_highway_first_curve_after_opening_straight(self):
        road = build_highway_map()
        assert road.curvature_at(200.0) == 0.0
        assert road.curvature_at(500.0) != 0.0

    def test_highway_curve_radii_are_highway_scale(self):
        road = build_highway_map()
        for seg in road.segments:
            if seg.curvature != 0.0:
                assert abs(1.0 / seg.curvature) >= 250.0

    def test_straight_map(self):
        road = build_straight_map(length=1000.0)
        assert road.length == 1000.0
        assert all(seg.curvature == 0.0 for seg in road.segments)
