"""Edge-case tests for the report persistence glue.

``ReportConfig.resume_path_for`` and ``_run_report_campaign`` are the
seams between the report generator and PR 2's cache/resume layer; these
cover the corners the incremental engine leans on: a resume file
truncated mid-record, the cache and resume directory disagreeing, and a
complete resume file served without execution.
"""

import os

import pytest

from repro.analysis.report import ReportConfig, _run_report_campaign
from repro.attacks.campaign import CampaignSpec, as_episode_list
from repro.attacks.fi import FaultType
from repro.core.cache import (
    campaign_digest,
    resume_file_for,
    write_digest_sidecar,
)
from repro.core.metrics import EpisodeResult, save_results
from repro.safety.arbitration import InterventionConfig

#: Two fast fault-free episodes: big enough to resume, small enough to run.
SMALL = CampaignSpec(
    fault_types=[FaultType.NONE],
    scenario_ids=("S1",),
    initial_gaps=(60.0,),
    repetitions=2,
    seed=11,
)
CFG = InterventionConfig()


def fake_results(campaign, label):
    return [
        EpisodeResult(
            scenario_id=e.scenario_id,
            initial_gap=e.initial_gap,
            fault_type=e.fault_type.value,
            seed=e.seed,
            intervention=label,
        )
        for e in as_episode_list(campaign)
    ]


@pytest.fixture(autouse=True)
def _no_env_cache(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


class TestResumePathFor:
    def test_none_without_resume_dir(self):
        assert ReportConfig().resume_path_for("ab" * 32) is None

    def test_digest_named_file_and_directory_creation(self, tmp_path):
        resume_dir = tmp_path / "resume" / "nested"
        config = ReportConfig(resume_dir=str(resume_dir))
        digest = "ab" * 32
        path = config.resume_path_for(digest)
        assert os.path.basename(path) == f"{digest[:16]}.jsonl"
        assert os.path.isdir(resume_dir)  # created on first use

    def test_same_digest_same_file_as_cli_helper(self, tmp_path):
        """The report and the CLI grid commands must resume from the same
        file for the same campaign."""
        config = ReportConfig(resume_dir=str(tmp_path))
        digest = campaign_digest(SMALL, CFG)
        assert config.resume_path_for(digest) == resume_file_for(tmp_path, digest)


class TestRunReportCampaignResume:
    def test_truncated_mid_line_resume_completes(self, tmp_path):
        """A resume file cut mid-record (process killed during a write)
        loads as its valid prefix; the re-run executes only the remainder
        and converges on the full campaign."""
        config = ReportConfig(resume_dir=str(tmp_path))
        full = _run_report_campaign(config, SMALL, CFG)
        assert len(full.results) == 2

        path = config.resume_path_for(campaign_digest(SMALL, CFG))
        size = os.path.getsize(path)
        with open(path, "rb+") as handle:
            handle.truncate(size - 25)  # cut the final record mid-line

        with pytest.warns(RuntimeWarning, match="malformed final record"):
            resumed = _run_report_campaign(config, SMALL, CFG)
        assert resumed.results == full.results
        # The file is whole again: a third run loads it without warnings.
        again = _run_report_campaign(config, SMALL, CFG)
        assert again.results == full.results

    def test_complete_resume_file_is_served_without_execution(self, tmp_path):
        """Distinctive fake records (steps=0, no measurements) coming back
        verbatim proves no episode was executed."""
        config = ReportConfig(resume_dir=str(tmp_path))
        digest = campaign_digest(SMALL, CFG)
        path = resume_file_for(config.resume_dir, digest)
        fakes = fake_results(SMALL, "none")
        save_results(fakes, path)
        write_digest_sidecar(path, digest)
        result = _run_report_campaign(config, SMALL, CFG)
        assert result.results == fakes


class TestCacheResumeDisagreement:
    def test_cache_hit_refuses_foreign_resume_file(self, tmp_path):
        """Cache says 'complete', the resume file holds a different
        campaign: the disagreement must surface, not silently resolve in
        the cache's favour by clobbering the file."""
        config = ReportConfig(
            cache_dir=str(tmp_path / "cache"), resume_dir=str(tmp_path / "resume")
        )
        digest = campaign_digest(SMALL, CFG)
        config.cache().put(digest, fake_results(SMALL, "none"))
        path = resume_file_for(config.resume_dir, digest)
        save_results([EpisodeResult(seed=1, intervention="driver")], path)
        stamp = open(path, "rb").read()
        with pytest.raises(ValueError, match="refusing to resume"):
            _run_report_campaign(config, SMALL, CFG)
        assert open(path, "rb").read() == stamp  # untouched

    def test_cache_hit_fills_missing_resume_file(self, tmp_path):
        """No disagreement when the resume file simply does not exist yet:
        the hit is served and materialised as a (complete) resume file."""
        config = ReportConfig(
            cache_dir=str(tmp_path / "cache"), resume_dir=str(tmp_path / "resume")
        )
        digest = campaign_digest(SMALL, CFG)
        fakes = fake_results(SMALL, "none")
        config.cache().put(digest, fakes)
        result = _run_report_campaign(config, SMALL, CFG)
        assert result.results == fakes
        path = resume_file_for(config.resume_dir, digest)
        assert os.path.exists(path)
        assert len(open(path).read().splitlines()) == len(fakes)

    def test_resume_ahead_of_cache_repopulates_cache(self, tmp_path):
        """A complete resume file with an empty cache: the campaign is
        served from the file and the cache entry is written back."""
        config = ReportConfig(
            cache_dir=str(tmp_path / "cache"), resume_dir=str(tmp_path / "resume")
        )
        digest = campaign_digest(SMALL, CFG)
        path = resume_file_for(config.resume_dir, digest)
        fakes = fake_results(SMALL, "none")
        save_results(fakes, path)
        write_digest_sidecar(path, digest)
        result = _run_report_campaign(config, SMALL, CFG)
        assert result.results == fakes
        assert config.cache().get(digest) == fakes
