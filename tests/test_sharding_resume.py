"""Determinism tests for campaign sharding and resume.

Property-style coverage of the two invariants the distribution layer rests
on: (1) for any grid size and any shard count, the union of the shard
slices is exactly the unsharded enumeration — and end-to-end, merged shard
JSONL files are byte-identical to the unsharded campaign file; (2) resume
from *any* truncation point of a campaign JSONL, including a write cut
mid-line, reproduces the full result bit for bit while executing only the
missing episodes.
"""

import random

import pytest

from repro.attacks.campaign import (
    CampaignSpec,
    ShardSpec,
    enumerate_campaign,
)
from repro.attacks.fi import FaultType
from repro.core.executor import SerialExecutor
from repro.core.experiment import merge_shards, run_campaign
from repro.core.metrics import EpisodeResult, load_results, save_results
from repro.safety.arbitration import InterventionConfig

#: 4-episode campaign shared by the simulation-backed tests below.
SMALL_SPEC = CampaignSpec(
    fault_types=[FaultType.NONE],
    scenario_ids=("S1", "S4"),
    initial_gaps=(60.0,),
    repetitions=2,
    seed=11,
)
CFG = InterventionConfig()
MAX_STEPS = 300


class CountingExecutor(SerialExecutor):
    """Serial backend that records how many episodes actually execute."""

    def __init__(self):
        self.executed = 0

    def run(self, tasks, progress=None):
        self.executed += len(tasks)
        return super().run(tasks, progress)


class TestShardSpec:
    def test_parse_valid(self):
        assert ShardSpec.parse("1/1") == ShardSpec(1, 1)
        assert ShardSpec.parse("2/4") == ShardSpec(2, 4)
        assert ShardSpec.parse("4/4") == ShardSpec(4, 4)
        assert str(ShardSpec.parse("3/7")) == "3/7"

    @pytest.mark.parametrize(
        "text",
        ["0/2", "3/2", "-1/2", "1/0", "1/-1", "a/b", "1", "1/2/3", "", "2/"],
    )
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            ShardSpec.parse(text)

    def test_constructor_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="1-based"):
            ShardSpec(0, 2)
        with pytest.raises(ValueError, match="1-based"):
            ShardSpec(5, 4)
        with pytest.raises(ValueError, match="count"):
            ShardSpec(1, 0)

    def test_partition_properties_random_sizes(self):
        """For random totals and any N: shards are a contiguous, ordered,
        balanced partition — the property every multi-machine run relies on."""
        rng = random.Random(0)
        cases = [(rng.randrange(0, 60), rng.randrange(1, 12)) for _ in range(200)]
        cases += [(0, 1), (0, 5), (1, 5), (5, 5), (7, 3)]
        for total, count in cases:
            items = list(range(total))
            shards = [ShardSpec(i, count).slice(items) for i in range(1, count + 1)]
            # union in index order == the original list (completeness,
            # contiguity and order in one assertion)
            assert sum(shards, []) == items, (total, count)
            # balance: sizes differ by at most one
            sizes = [len(s) for s in shards]
            assert max(sizes) - min(sizes) <= 1, (total, count)

    def test_enumerate_campaign_shard_is_contiguous_slice(self):
        full = enumerate_campaign(SMALL_SPEC)
        rng = random.Random(1)
        for count in [1, 2, 3, len(full), len(full) + 3, rng.randrange(1, 9)]:
            shards = [
                enumerate_campaign(SMALL_SPEC, shard=ShardSpec(i, count))
                for i in range(1, count + 1)
            ]
            assert sum(shards, []) == full, count


class TestShardedCampaignEquivalence:
    def test_shard_union_bit_identical_to_unsharded(self, tmp_path):
        """The acceptance invariant: shard 1/2 + shard 2/2 + merge produces
        a JSONL byte-identical to the unsharded campaign."""
        full = run_campaign(SMALL_SPEC, CFG, cache=False, max_steps=MAX_STEPS)
        full_path = tmp_path / "full.jsonl"
        full.save(full_path)

        shard_paths = []
        for index in (1, 2):
            episodes = enumerate_campaign(SMALL_SPEC, shard=ShardSpec(index, 2))
            path = tmp_path / f"shard{index}.jsonl"
            run_campaign(episodes, CFG, cache=False, max_steps=MAX_STEPS).save(path)
            shard_paths.append(path)

        merged_path = tmp_path / "merged.jsonl"
        merged = merge_shards(shard_paths, output=merged_path)
        assert merged_path.read_bytes() == full_path.read_bytes()
        assert merged.results == full.results
        assert merged.intervention == full.intervention

    def test_more_shards_than_episodes(self, tmp_path):
        """Tiny campaigns sharded wide produce (valid) empty shards."""
        full = run_campaign(SMALL_SPEC, CFG, cache=False, max_steps=MAX_STEPS)
        count = len(full.results) + 2
        paths = []
        for index in range(1, count + 1):
            episodes = enumerate_campaign(SMALL_SPEC, shard=ShardSpec(index, count))
            path = tmp_path / f"s{index}.jsonl"
            run_campaign(episodes, CFG, cache=False, max_steps=MAX_STEPS).save(path)
            paths.append(path)
        merged = merge_shards(paths)
        assert merged.results == full.results


class TestMergeValidation:
    def _save(self, path, results):
        save_results(results, path)
        return path

    def test_rejects_empty_path_list(self):
        with pytest.raises(ValueError, match="at least one shard"):
            merge_shards([])

    def test_rejects_mixed_interventions(self, tmp_path):
        a = self._save(tmp_path / "a.jsonl", [EpisodeResult(seed=1, intervention="none")])
        b = self._save(tmp_path / "b.jsonl", [EpisodeResult(seed=2, intervention="driver")])
        with pytest.raises(ValueError, match="mixed intervention labels"):
            merge_shards([a, b])

    def test_rejects_overlapping_shards(self, tmp_path):
        record = EpisodeResult(scenario_id="S1", initial_gap=60.0, seed=7)
        a = self._save(tmp_path / "a.jsonl", [record])
        b = self._save(tmp_path / "b.jsonl", [record])
        with pytest.raises(ValueError, match="overlapping shards"):
            merge_shards([a, b])

    def test_rejects_truncated_shard(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        save_results([EpisodeResult(seed=1), EpisodeResult(seed=2)], path)
        text = path.read_text()
        path.write_text(text[: len(text) - 20])  # cut the final line mid-record
        with pytest.raises(ValueError, match="partial or corrupt shard"):
            merge_shards([path])

    def test_empty_files_merge_cleanly(self, tmp_path):
        a = tmp_path / "a.jsonl"
        a.write_text("")
        merged = merge_shards([a])
        assert merged.results == []
        assert merged.intervention == "none"


class TestAppendSafety:
    def test_append_trims_dangling_partial_line(self, tmp_path):
        """Appending after a write died mid-record must not fuse two
        records into one malformed interior line."""
        path = tmp_path / "dangling.jsonl"
        save_results([EpisodeResult(seed=1), EpisodeResult(seed=2)], path)
        text = path.read_text()
        path.write_text(text[:-30])  # kill the final record mid-line
        save_results([EpisodeResult(seed=3)], path, append=True)
        loaded = load_results(path)  # no warning: every line is complete
        assert [r.seed for r in loaded] == [1, 3]

    def test_append_to_clean_file_matches_one_shot_save(self, tmp_path):
        results = [EpisodeResult(seed=s) for s in (1, 2, 3)]
        one_shot, streamed = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        save_results(results, one_shot)
        save_results(results[:2], streamed)
        save_results(results[2:], streamed, append=True)
        assert streamed.read_bytes() == one_shot.read_bytes()

    def test_append_creates_missing_file(self, tmp_path):
        path = tmp_path / "fresh.jsonl"
        save_results([EpisodeResult(seed=4)], path, append=True)
        assert [r.seed for r in load_results(path)] == [4]


class TestResume:
    @pytest.fixture(scope="class")
    def reference(self):
        """The campaign run start-to-finish, once per class."""
        return run_campaign(SMALL_SPEC, CFG, cache=False, max_steps=MAX_STEPS)

    def test_resume_from_every_record_boundary(self, tmp_path, reference):
        total = len(reference.results)
        for keep in range(total + 1):
            path = tmp_path / f"resume{keep}.jsonl"
            save_results(reference.results[:keep], path)
            backend = CountingExecutor()
            resumed = run_campaign(
                SMALL_SPEC,
                CFG,
                executor=backend,
                resume_path=path,
                cache=False,
                max_steps=MAX_STEPS,
            )
            assert resumed.results == reference.results, keep
            assert backend.executed == total - keep, keep
            # the file is rewritten complete
            assert len(path.read_text().splitlines()) == total

    def test_resume_from_mid_line_corruption(self, tmp_path, reference):
        """A write killed mid-record leaves a malformed final line; resume
        must drop it, re-run that episode and still match bit for bit."""
        full_path = tmp_path / "full.jsonl"
        save_results(reference.results, full_path)
        text = full_path.read_text()
        line_starts = [0] + [i + 1 for i, c in enumerate(text) if c == "\n"][:-1]
        # cut inside record 2 and inside the final record
        for cut_line in (1, len(line_starts) - 1):
            cut = line_starts[cut_line] + 25
            path = tmp_path / f"cut{cut_line}.jsonl"
            path.write_text(text[:cut])
            backend = CountingExecutor()
            with pytest.warns(RuntimeWarning, match="malformed final record"):
                resumed = run_campaign(
                    SMALL_SPEC,
                    CFG,
                    executor=backend,
                    resume_path=path,
                    cache=False,
                    max_steps=MAX_STEPS,
                )
            assert resumed.results == reference.results
            # only the corrupt record onward re-executes
            assert backend.executed == len(reference.results) - cut_line
            assert path.read_bytes() == full_path.read_bytes()

    def test_fully_complete_file_executes_nothing(self, tmp_path, reference):
        path = tmp_path / "done.jsonl"
        save_results(reference.results, path)
        backend = CountingExecutor()
        resumed = run_campaign(
            SMALL_SPEC,
            CFG,
            executor=backend,
            resume_path=path,
            cache=False,
            max_steps=MAX_STEPS,
        )
        assert backend.executed == 0
        assert resumed.results == reference.results

    def test_missing_file_is_a_fresh_run(self, tmp_path, reference):
        path = tmp_path / "fresh.jsonl"
        resumed = run_campaign(
            SMALL_SPEC, CFG, resume_path=path, cache=False, max_steps=MAX_STEPS
        )
        assert resumed.results == reference.results
        assert path.exists()

    def test_progress_spans_full_campaign_under_resume(self, tmp_path, reference):
        path = tmp_path / "progress.jsonl"
        save_results(reference.results[:2], path)
        calls = []
        run_campaign(
            SMALL_SPEC,
            CFG,
            resume_path=path,
            cache=False,
            progress=lambda done, total: calls.append((done, total)),
            max_steps=MAX_STEPS,
        )
        total = len(reference.results)
        assert calls[0] == (2, total)  # skipped episodes reported up front
        assert calls[-1] == (total, total)
        dones = [d for d, _ in calls]
        assert dones == sorted(dones)

    def test_rejects_mismatched_intervention(self, tmp_path, reference):
        path = tmp_path / "mismatch.jsonl"
        save_results(reference.results[:2], path)
        with pytest.raises(ValueError, match="intervention"):
            run_campaign(
                SMALL_SPEC,
                InterventionConfig(driver=True),
                resume_path=path,
                cache=False,
                max_steps=MAX_STEPS,
            )

    def test_rejects_mismatched_episode_identity(self, tmp_path, reference):
        shuffled = list(reversed(reference.results))
        path = tmp_path / "shuffled.jsonl"
        save_results(shuffled[:2], path)
        with pytest.raises(ValueError, match="mismatched file"):
            run_campaign(
                SMALL_SPEC, CFG, resume_path=path, cache=False, max_steps=MAX_STEPS
            )

    def test_rejects_resume_under_different_platform_conditions(
        self, tmp_path, reference
    ):
        """A file recorded at another max_steps must be refused, not
        absorbed as a complete campaign (the digest sidecar catches what
        per-record identity checks cannot — seeds don't encode conditions)."""
        path = tmp_path / "short.jsonl"
        run_campaign(SMALL_SPEC, CFG, resume_path=path, cache=False, max_steps=50)
        with pytest.raises(ValueError, match="different inputs"):
            run_campaign(
                SMALL_SPEC, CFG, resume_path=path, cache=False, max_steps=MAX_STEPS
            )

    def test_interrupted_run_leaves_resumable_prefix(self, tmp_path):
        """Results stream to the resume file as batches complete, so a
        crash mid-campaign leaves the finished batches on disk instead of
        nothing — resume then runs only what is missing."""

        class ExplodingExecutor(SerialExecutor):
            """Completes the first dispatched batch, dies on the second."""

            def __init__(self):
                self.calls = 0

            def run(self, tasks, progress=None):
                self.calls += 1
                if self.calls > 1:
                    raise RuntimeError("simulated crash")
                return super().run(tasks, progress)

        # 10 episodes (2 scenarios x 5 reps) at the minimum batch size of 8
        # -> batches of 8 and 2; the crash lands in the second batch.
        spec = CampaignSpec(
            fault_types=[FaultType.NONE],
            scenario_ids=("S1", "S4"),
            initial_gaps=(60.0,),
            repetitions=5,
            seed=11,
        )
        path = tmp_path / "interrupted.jsonl"
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_campaign(
                spec, CFG, executor=ExplodingExecutor(), resume_path=path,
                cache=False, max_steps=50,
            )
        assert len(path.read_text().splitlines()) == 8  # first batch persisted
        backend = CountingExecutor()
        resumed = run_campaign(
            spec, CFG, executor=backend, resume_path=path, cache=False, max_steps=50
        )
        assert backend.executed == 2
        reference = run_campaign(spec, CFG, cache=False, max_steps=50)
        assert resumed.results == reference.results

    def test_rejects_oversized_resume_file(self, tmp_path, reference):
        path = tmp_path / "oversized.jsonl"
        save_results(reference.results + [reference.results[-1]], path)
        with pytest.raises(ValueError, match="refusing to resume"):
            run_campaign(
                SMALL_SPEC, CFG, resume_path=path, cache=False, max_steps=MAX_STEPS
            )

    def test_resume_a_shard_file(self, tmp_path, reference):
        """Shard runs resume exactly like full campaigns."""
        episodes = enumerate_campaign(SMALL_SPEC, shard=ShardSpec(1, 2))
        path = tmp_path / "shard-resume.jsonl"
        save_results(reference.results[:1], path)
        backend = CountingExecutor()
        resumed = run_campaign(
            episodes,
            CFG,
            executor=backend,
            resume_path=path,
            cache=False,
            max_steps=MAX_STEPS,
        )
        assert resumed.results == reference.results[: len(episodes)]
        assert backend.executed == len(episodes) - 1
