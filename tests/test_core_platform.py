"""Integration tests: hazards, metrics, the closed-loop platform."""

import pytest

from repro.attacks.campaign import CampaignSpec, EpisodeSpec
from repro.attacks.fi import FaultType
from repro.core.experiment import run_campaign, run_episode
from repro.core.hazards import AccidentType, HazardMonitor
from repro.core.metrics import EpisodeResult, InterventionActivity, aggregate
from repro.core.platform import SimulationPlatform
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig
from tests.conftest import episode


class TestInterventionActivity:
    def test_records_first_activation(self):
        act = InterventionActivity()
        act.record(False, 0.0, 0.01)
        act.record(True, 1.0, 0.01)
        assert act.triggered
        assert act.first_time == 1.0

    def test_duration_accumulates(self):
        act = InterventionActivity()
        for i in range(100):
            act.record(True, i * 0.01, 0.01)
        assert act.active_duration == pytest.approx(1.0)

    def test_mean_activation_duration(self):
        act = InterventionActivity()
        for i in range(50):
            act.record(True, i * 0.01, 0.01)
        for i in range(50, 60):
            act.record(False, i * 0.01, 0.01)
        for i in range(60, 90):
            act.record(True, i * 0.01, 0.01)
        assert act.activation_count == 2
        assert act.mean_activation_duration == pytest.approx(0.4)

    def test_zero_when_never_active(self):
        assert InterventionActivity().mean_activation_duration == 0.0


class TestAggregate:
    def make_results(self):
        ok = EpisodeResult(fault_type="relative_distance")
        ok.attack_activated = True
        crash = EpisodeResult(fault_type="relative_distance")
        crash.attack_activated = True
        crash.accident = AccidentType.A1
        return [ok, crash]

    def test_rates(self):
        stats = aggregate(self.make_results())
        assert stats.a1_rate == 0.5
        assert stats.a2_rate == 0.0
        assert stats.prevented_rate == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate([])


class TestPlatformValidation:
    def test_ml_requires_controller(self):
        with pytest.raises(ValueError):
            SimulationPlatform(episode(), InterventionConfig(ml=True))

    def test_dt_validation(self):
        with pytest.raises(ValueError):
            SimulationPlatform(episode(), InterventionConfig(), dt=0.0)

    def test_max_steps_validation(self):
        with pytest.raises(ValueError):
            SimulationPlatform(episode(), InterventionConfig(), max_steps=0)


class TestFaultFreeEpisodes:
    def test_s1_completes_without_accident(self):
        result = run_episode(episode("S1"), InterventionConfig())
        assert result.accident is None
        assert result.steps == 10_000
        assert result.following_distance is not None
        assert 20.0 < result.following_distance < 40.0

    def test_min_tfcw_formula(self):
        # min t_fcw = 2.5 + v_min/4.9 must be below the cruise-speed value.
        result = run_episode(episode("S1"), InterventionConfig())
        assert result.min_tfcw < 2.5 + 22.352 / 4.9

    def test_hardest_brake_moderate_in_s1(self):
        result = run_episode(episode("S1"), InterventionConfig())
        assert 0.15 < result.hardest_brake_fraction < 0.6

    def test_lane_keeping_in_benign_run(self):
        result = run_episode(episode("S1"), InterventionConfig())
        assert result.min_lane_distance > 0.1
        assert not result.h2

    def test_s4_is_dangerous_even_without_attack(self):
        crashes = 0
        for seed in range(6):
            r = run_episode(episode("S4", seed=seed * 17), InterventionConfig())
            crashes += r.crashed
        assert crashes >= 1  # the paper: 10/20 S4 accidents fault-free

    def test_no_attack_activation_recorded(self):
        result = run_episode(episode("S1"), InterventionConfig())
        assert not result.attack_activated
        assert not result.prevented


class TestAttackEpisodes:
    def test_rd_attack_causes_forward_collision(self):
        result = run_episode(
            episode("S1", fault=FaultType.RELATIVE_DISTANCE), InterventionConfig()
        )
        assert result.accident is AccidentType.A1
        assert result.attack_activated

    def test_curvature_attack_causes_lane_departure(self):
        result = run_episode(
            episode("S1", fault=FaultType.DESIRED_CURVATURE), InterventionConfig()
        )
        assert result.accident is AccidentType.A2

    def test_mixed_attack_is_lateral_dominated(self):
        a2 = 0
        for seed in (1, 2, 3, 4):
            r = run_episode(
                episode("S1", fault=FaultType.MIXED, seed=seed * 101),
                InterventionConfig(),
            )
            if r.accident is AccidentType.A2:
                a2 += 1
        assert a2 >= 3

    def test_aeb_independent_prevents_rd_attack(self):
        result = run_episode(
            episode("S1", fault=FaultType.RELATIVE_DISTANCE),
            InterventionConfig(aeb=AebsConfig.INDEPENDENT),
        )
        assert result.accident is None
        assert result.prevented
        assert result.aeb.triggered

    def test_aeb_compromised_fails_rd_attack(self):
        result = run_episode(
            episode("S1", fault=FaultType.RELATIVE_DISTANCE),
            InterventionConfig(aeb=AebsConfig.COMPROMISED),
        )
        assert result.accident is AccidentType.A1

    def test_fcw_raised_under_attack_with_driver(self):
        result = run_episode(
            episode("S1", fault=FaultType.RELATIVE_DISTANCE),
            InterventionConfig(driver=True),
        )
        assert result.driver_brake.triggered

    def test_attack_timing_recorded(self):
        result = run_episode(
            episode("S1", gap=230.0, fault=FaultType.RELATIVE_DISTANCE),
            InterventionConfig(),
        )
        # At a 230 m initial gap the 80 m trigger cannot fire immediately.
        assert result.attack_first_activation is not None
        assert result.attack_first_activation > 5.0


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        spec = episode("S3", fault=FaultType.MIXED, seed=777)
        a = run_episode(spec, InterventionConfig(driver=True))
        b = run_episode(spec, InterventionConfig(driver=True))
        assert a.accident == b.accident
        assert a.accident_time == b.accident_time
        assert a.min_ttc == b.min_ttc
        assert a.hardest_brake_fraction == b.hardest_brake_fraction

    def test_different_seeds_differ(self):
        a = run_episode(episode("S1", seed=1), InterventionConfig())
        b = run_episode(episode("S1", seed=2), InterventionConfig())
        assert a.min_ttc != b.min_ttc


class TestTrace:
    def test_trace_recorded_when_requested(self):
        platform = SimulationPlatform(
            episode("S1"), InterventionConfig(), record_trace=True, trace_every=10,
            max_steps=1000,
        )
        platform.run()
        assert platform.trace is not None
        assert len(platform.trace.time) == 100
        assert len(platform.trace.ego_speed) == len(platform.trace.time)

    def test_no_trace_by_default(self):
        platform = SimulationPlatform(episode("S1"), InterventionConfig(), max_steps=100)
        platform.run()
        assert platform.trace is None


class TestCampaignRunner:
    def test_reduced_campaign_runs(self):
        spec = CampaignSpec(
            fault_types=[FaultType.RELATIVE_DISTANCE],
            scenario_ids=["S1"],
            initial_gaps=[60.0],
            repetitions=2,
        )
        campaign = run_campaign(spec, InterventionConfig(), max_steps=4000)
        assert len(campaign.results) == 2
        assert campaign.intervention == "none"

    def test_ml_requires_factory(self):
        spec = CampaignSpec(repetitions=1)
        with pytest.raises(ValueError):
            run_campaign(spec, InterventionConfig(ml=True))

    def test_progress_callback(self):
        calls = []
        spec = CampaignSpec(
            fault_types=[FaultType.NONE], scenario_ids=["S1"],
            initial_gaps=[60.0], repetitions=2,
        )
        run_campaign(
            spec, InterventionConfig(), progress=lambda d, t: calls.append((d, t)),
            max_steps=200,
        )
        assert calls == [(1, 2), (2, 2)]

    def test_by_fault_type_grouping(self):
        spec = CampaignSpec(
            scenario_ids=["S1"], initial_gaps=[60.0], repetitions=1,
        )
        campaign = run_campaign(spec, InterventionConfig(), max_steps=3000)
        groups = campaign.by_fault_type()
        assert set(groups) == {"relative_distance", "desired_curvature", "mixed"}
