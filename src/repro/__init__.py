"""repro — reproduction of "Safety Interventions against Adversarial Patches
in an Open-Source Driver Assistance System" (DSN 2025).

A from-scratch closed-loop ADAS evaluation platform: an OpenPilot-substitute
control stack in the loop with a MetaDrive-substitute highway simulator, a
source-level fault-injection engine emulating adversarial-patch perception
attacks, layered safety interventions (AEBS/FCW, firmware safety checks,
simulated human driver), and an LSTM+CUSUM ML mitigation baseline.

Quickstart::

    from repro import (
        EpisodeSpec, FaultType, InterventionConfig, AebsConfig, run_episode,
    )

    spec = EpisodeSpec(
        scenario_id="S1", initial_gap=60.0,
        fault_type=FaultType.RELATIVE_DISTANCE, repetition=0, seed=7,
    )
    safety = InterventionConfig(driver=True, aeb=AebsConfig.INDEPENDENT)
    result = run_episode(spec, safety)
    print(result.accident, result.prevented)
"""

from repro.attacks import (
    CampaignSpec,
    EpisodeSpec,
    FaultInjectionEngine,
    FaultType,
    ShardSpec,
    enumerate_campaign,
)
from repro.core import (
    AccidentType,
    CacheBackend,
    CampaignCache,
    CampaignExecutor,
    CampaignPlan,
    CampaignResult,
    DirectoryCacheBackend,
    EpisodeResult,
    MemoryCacheBackend,
    ParallelExecutor,
    SerialExecutor,
    SimulationPlatform,
    TieredCache,
    WorkerBackend,
    aggregate,
    campaign_digest,
    default_cache,
    dispatch_campaign,
    load_results,
    make_backend,
    merge_shards,
    registered_backends,
    run_campaign,
    run_episode,
    save_results,
)
from repro.safety import AebsConfig, InterventionConfig
from repro.sim import (
    SCENARIO_IDS,
    FRICTION_CONDITIONS,
    ParamSpec,
    ScenarioConfig,
    ScenarioFamily,
    UnknownScenarioError,
    build_scenario,
    family_catalog,
    get_family,
    register_family,
    registered_families,
)

__version__ = "1.0.0"

__all__ = [
    "CampaignSpec",
    "EpisodeSpec",
    "FaultInjectionEngine",
    "FaultType",
    "ShardSpec",
    "enumerate_campaign",
    "AccidentType",
    "CacheBackend",
    "CampaignCache",
    "CampaignPlan",
    "DirectoryCacheBackend",
    "MemoryCacheBackend",
    "TieredCache",
    "WorkerBackend",
    "dispatch_campaign",
    "make_backend",
    "registered_backends",
    "CampaignExecutor",
    "CampaignResult",
    "EpisodeResult",
    "ParallelExecutor",
    "SerialExecutor",
    "SimulationPlatform",
    "aggregate",
    "campaign_digest",
    "default_cache",
    "load_results",
    "merge_shards",
    "run_campaign",
    "run_episode",
    "save_results",
    "AebsConfig",
    "InterventionConfig",
    "SCENARIO_IDS",
    "FRICTION_CONDITIONS",
    "ParamSpec",
    "ScenarioConfig",
    "ScenarioFamily",
    "UnknownScenarioError",
    "build_scenario",
    "family_catalog",
    "get_family",
    "register_family",
    "registered_families",
    "__version__",
]
