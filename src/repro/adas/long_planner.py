"""ACC longitudinal planner.

Reproduces the qualitative longitudinal behaviour the paper measures on
OpenPilot v0.9.7:

* **stable following** at ``min_gap + time_gap * v`` behind the lead
  (Table IV's 23.7-29.9 m following distances at ~30 mph leads);
* **aggressive late braking when approaching** — cruise is held until the
  kinematically-required deceleration toward the desired gap exceeds a
  trigger level, then the planner demands (a margin above) that required
  deceleration.  This is the "speed suddenly drops from about 21.7 m/s to
  9.6 m/s ... within 4.7 seconds" profile of Fig. 5;
* **panic braking** beyond the ISO comfort envelope when TTC collapses
  (Table IV's 86.7 % hardest-brake value in S4) — note the firmware safety
  checker, when enabled, clamps this back to -3.5 m/s^2, mirroring the
  PANDA/ISO 22179 conservative design tension the paper discusses;
* **full re-acceleration when no lead is tracked** — combined with the
  perception blind spot this is what drives the Fig. 6 collision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adas.lead_tracker import TrackedLead
from repro.utils.mathx import clamp
from repro.utils.npmath import np_clamp, np_min_pair


@dataclass(frozen=True)
class LongPlannerParams:
    """Tuning constants for :class:`LongPlanner`.

    Attributes:
        time_gap: desired following time gap [s].
        min_gap: desired standstill gap [m].
        cruise_gain: P gain of the cruise speed loop [1/s].
        cruise_accel_limit: max acceleration while cruising [m/s^2].
        approach_trigger_decel: required deceleration that switches the
            planner from cruising to braking [m/s^2] — the *lateness* knob.
        approach_margin: multiplier applied to the required deceleration
            once braking (slightly over-braking, hence the Fig. 5
            oscillation).
        comfort_brake_limit: deceleration cap outside panic mode [m/s^2].
        panic_ttc: TTC below which panic braking engages [s].
        panic_decel: panic braking command [m/s^2].
        max_accel: command ceiling [m/s^2].
    """

    time_gap: float = 1.45
    min_gap: float = 6.0
    cruise_gain: float = 0.45
    cruise_accel_limit: float = 1.6
    approach_trigger_decel: float = 2.9
    approach_margin: float = 1.10
    comfort_brake_limit: float = 3.5
    panic_ttc: float = 1.3
    panic_decel: float = 9.0
    max_accel: float = 2.0


class LongPlanner:
    """Maps (ego speed, cruise set-speed, tracked lead) to an accel command."""

    def __init__(self, set_speed: float, params: LongPlannerParams | None = None) -> None:
        if set_speed <= 0.0:
            raise ValueError(f"set_speed must be positive, got {set_speed}")
        self.set_speed = set_speed
        self.params = params or LongPlannerParams()
        self._braking = False  # hysteresis on the approach-braking phase

    def reset(self) -> None:
        """Clear the braking-phase latch (start of an episode)."""
        self._braking = False

    def desired_gap(self, speed: float) -> float:
        """Target following gap at ``speed`` [m]."""
        return self.params.min_gap + self.params.time_gap * speed

    def plan(self, speed: float, lead: TrackedLead) -> float:
        """Compute the longitudinal acceleration command [m/s^2].

        Args:
            speed: ego speed [m/s].
            lead: current lead track (possibly invalid).
        """
        p = self.params
        cruise_accel = clamp(
            p.cruise_gain * (self.set_speed - speed),
            -p.comfort_brake_limit,
            p.cruise_accel_limit,
        )
        if not lead.valid:
            self._braking = False
            return clamp(cruise_accel, -p.comfort_brake_limit, p.max_accel)

        gap, closing = lead.rd, lead.rs
        target_gap = self.desired_gap(speed)

        # Panic: TTC below the threshold means the comfort envelope cannot
        # avoid contact any more — demand everything the brakes have.
        if closing > 0.5 and gap / closing < p.panic_ttc:
            self._braking = True
            return -p.panic_decel

        follow_accel = self._follow_accel(gap, closing, target_gap, cruise_accel)
        return clamp(min(cruise_accel, follow_accel), -p.comfort_brake_limit, p.max_accel)

    def _follow_accel(
        self, gap: float, closing: float, target_gap: float, cruise_accel: float
    ) -> float:
        """Following/approach law (see module docstring)."""
        p = self.params
        margin = gap - target_gap
        if closing > 0.15:
            if margin <= 0.5:
                required = p.comfort_brake_limit
            else:
                # Constant-deceleration kinematics: wipe out the closing
                # speed exactly when reaching the desired gap.
                required = (closing * closing) / (2.0 * margin)
            if self._braking or required > p.approach_trigger_decel:
                self._braking = True
                return -min(required * p.approach_margin, p.comfort_brake_limit)
            # Far away and closing slowly: keep cruising (the "late" part).
            return cruise_accel
        # Not closing: regulate the gap with a soft PD toward the target.
        self._braking = False
        gap_accel = 0.08 * margin - 0.45 * closing
        return clamp(gap_accel, -p.comfort_brake_limit, p.max_accel)


def long_plan_arrays(
    speed: np.ndarray,
    lead_valid: np.ndarray,
    lead_rd: np.ndarray,
    lead_rs: np.ndarray,
    braking: np.ndarray,
    set_speed: np.ndarray,
    time_gap: np.ndarray,
    min_gap: np.ndarray,
    cruise_gain: np.ndarray,
    cruise_accel_limit: np.ndarray,
    approach_trigger_decel: np.ndarray,
    approach_margin: np.ndarray,
    comfort_brake_limit: np.ndarray,
    panic_ttc: np.ndarray,
    panic_decel: np.ndarray,
    max_accel: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :meth:`LongPlanner.plan`, bit-exact per lane.

    ``braking`` is the per-lane hysteresis latch entering the step;
    returns ``(accel_command, braking_next)``.
    """
    cruise = np_clamp(
        cruise_gain * (set_speed - speed), -comfort_brake_limit, cruise_accel_limit
    )
    no_lead = np_clamp(cruise, -comfort_brake_limit, max_accel)

    gap, closing = lead_rd, lead_rs
    target_gap = min_gap + time_gap * speed
    margin = gap - target_gap
    closing_fast = closing > 0.15
    with np.errstate(divide="ignore", invalid="ignore"):
        # Guarded divisions: the scalar path only evaluates these behind
        # `closing > 0.5` / `margin > 0.5`; unselected rows may be inf/nan
        # and are masked out below.
        ttc = gap / closing
        required_kin = (closing * closing) / (2.0 * margin)
    panic = lead_valid & (closing > 0.5) & (ttc < panic_ttc)
    required = np.where(margin <= 0.5, comfort_brake_limit, required_kin)
    brake_now = braking | (required > approach_trigger_decel)
    capped = required * approach_margin
    brake_cmd = -np_min_pair(capped, comfort_brake_limit)
    approach = np.where(brake_now, brake_cmd, cruise)
    gap_accel = 0.08 * margin - 0.45 * closing
    pd_cmd = np_clamp(gap_accel, -comfort_brake_limit, max_accel)
    follow = np.where(closing_fast, approach, pd_cmd)
    with_lead = np_clamp(
        np_min_pair(cruise, follow), -comfort_brake_limit, max_accel
    )

    accel = np.where(
        ~lead_valid, no_lead, np.where(panic, -panic_decel, with_lead)
    )
    braking_next = np.where(
        ~lead_valid,
        False,
        np.where(panic, True, np.where(closing_fast, brake_now, False)),
    )
    return accel, braking_next
