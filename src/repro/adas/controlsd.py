"""The 100 Hz control-loop glue (OpenPilot's ``controlsd``).

Feeds one perception frame (after any fault injection) through the lead
tracker and both planners and emits the engaged ADAS actuator command.
The safety layers (:mod:`repro.safety`) and the arbitration logic sit
*outside* this module, exactly as PANDA/AEBS sit outside OpenPilot's
control process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adas.lat_planner import LatPlanner, LatPlannerParams
from repro.adas.lead_tracker import LeadTracker, TrackedLead
from repro.adas.long_planner import LongPlanner, LongPlannerParams
from repro.adas.perception import PerceptionOutput


@dataclass(frozen=True)
class AdasCommand:
    """The engaged ADAS actuator command for one control step.

    Attributes:
        accel: longitudinal acceleration command [m/s^2].
        steer: road-wheel steering angle command [rad].
    """

    accel: float
    steer: float


class ControlsD:
    """OpenPilot-style control loop: perception frame in, command out."""

    def __init__(
        self,
        set_speed: float,
        long_params: LongPlannerParams | None = None,
        lat_params: LatPlannerParams | None = None,
    ) -> None:
        self.long_planner = LongPlanner(set_speed, long_params)
        self.lat_planner = LatPlanner(lat_params)
        self.tracker = LeadTracker()
        self.last_command = AdasCommand(0.0, 0.0)
        self.last_lead = TrackedLead(False, 0.0, 0.0)

    def reset(self) -> None:
        """Reset all controller state (start of an episode)."""
        self.long_planner.reset()
        self.lat_planner.reset()
        self.tracker.reset()
        self.last_command = AdasCommand(0.0, 0.0)
        self.last_lead = TrackedLead(False, 0.0, 0.0)

    def update(self, perception: PerceptionOutput, ego_speed: float, dt: float) -> AdasCommand:
        """Run one control step and return the actuator command."""
        lead = self.tracker.update(perception, dt)
        accel = self.long_planner.plan(ego_speed, lead)
        steer = self.lat_planner.plan(perception.desired_curvature, dt)
        self.last_lead = lead
        self.last_command = AdasCommand(accel=accel, steer=steer)
        return self.last_command
