"""Perception surrogate — the DNN-output stand-in and the FI tap point.

The paper injects faults *at the output of the perception module* ("we
directly emulate the effect of the patches by injecting attacks into the DNN
output"), so reproducing the experiments requires a module whose outputs are
behaviour-equivalent to OpenPilot's supercombo heads, not a neural network:

* **lead**: relative distance RD and relative speed RS to the in-lane lead;
* **lane lines**: body-side distances to the left/right lane lines;
* **desired curvature**: the end-to-end lateral output OpenPilot's lateral
  planner tracks; here a curvature feed-forward from the visible road plus
  a lane-centring feedback term, which is what the e2e model effectively
  learns.

Two documented OpenPilot pathologies are modelled because the paper's
results depend on them:

1. **Close-range blind spot** — "once the ego vehicle gets within a certain
   range, such as 2 meters, OpenPilot is unable to detect the lead vehicle
   through the camera" (paper, Fig. 6).  Below ``blind_range`` the lead
   output is dropped, which under an RD attack makes the ego re-accelerate
   just before impact.
2. **Imperfect lane centring** — weak centring gains plus output noise and
   feed-forward latency produce the 0.07-0.63 m minimum lane-line distances
   of Table V, including degradation on high-speed curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.sim.sensors import GroundTruthSensor
from repro.utils.mathx import clamp
from repro.utils.npmath import np_clamp
from repro.utils.rng import RngStreams


@dataclass(frozen=True)
class PerceptionOutput:
    """One 100 Hz frame of DNN-surrogate outputs.

    This is exactly the record the fault-injection engine rewrites.

    Attributes:
        lead_valid: True if a lead vehicle is detected.
        lead_rd: perceived relative distance RD to the lead [m].
        lead_rs: perceived relative (closing) speed RS [m/s].
        lane_left: body-side distance to the left lane line [m].
        lane_right: body-side distance to the right lane line [m].
        desired_curvature: curvature the lateral planner should track [1/m].
    """

    lead_valid: bool
    lead_rd: float
    lead_rs: float
    lane_left: float
    lane_right: float
    desired_curvature: float

    def with_lead(self, rd: float, rs: float | None = None) -> "PerceptionOutput":
        """Copy with a rewritten lead measurement (used by the FI engine)."""
        return replace(
            self, lead_rd=rd, lead_rs=self.lead_rs if rs is None else rs
        )

    def with_curvature(self, curvature: float) -> "PerceptionOutput":
        """Copy with a rewritten desired curvature (used by the FI engine)."""
        return replace(self, desired_curvature=curvature)


@dataclass(frozen=True)
class PerceptionParams:
    """Tuning constants for :class:`PerceptionModel`.

    Attributes:
        detection_range: camera lead-detection range [m].
        blind_range: RD below which the camera loses the lead [m].
        centering_gain: curvature feedback per metre of lateral offset
            [1/m per m].
        heading_gain: curvature feedback per radian of relative heading.
        curvature_lookahead: metres of road ahead averaged for the
            curvature feed-forward.
        ff_lag: first-order lag of the curvature feed-forward [s] (model
            latency entering/leaving curves).
        rd_noise: std of RD output noise [m].
        rs_noise: std of RS output noise [m/s].
        lane_noise: std of lane-line distance noise [m].
        curvature_noise: std of desired-curvature noise [1/m].
        max_curvature: output saturation for desired curvature [1/m].
    """

    detection_range: float = 120.0
    blind_range: float = 2.0
    centering_gain: float = 0.0010
    heading_gain: float = 0.05
    curvature_lookahead: float = 25.0
    ff_lag: float = 0.25
    rd_noise: float = 0.15
    rs_noise: float = 0.05
    lane_noise: float = 0.02
    curvature_noise: float = 2.0e-5
    max_curvature: float = 0.13


class PerceptionModel:
    """Produces :class:`PerceptionOutput` frames from ground truth."""

    def __init__(
        self,
        sensor: GroundTruthSensor,
        streams: RngStreams,
        params: PerceptionParams | None = None,
    ) -> None:
        self.sensor = sensor
        self.params = params or PerceptionParams()
        self._rng = streams.get("perception")
        self._ff_curvature = 0.0  # lagged feed-forward state

    def run(self, dt: float) -> PerceptionOutput:
        """Produce one perception frame (call once per control step)."""
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        p = self.params
        world = self.sensor.world
        ego = world.ego

        # --- Lead head -------------------------------------------------
        lead = self.sensor.lead()
        lead_valid = (
            lead is not None
            and lead.gap <= p.detection_range
            and lead.gap >= p.blind_range
        )
        if lead_valid and lead is not None:
            rd = lead.gap + float(self._rng.normal(0.0, p.rd_noise))
            rs = lead.relative_speed + float(self._rng.normal(0.0, p.rs_noise))
            rd = max(rd, 0.0)
        else:
            rd, rs = 0.0, 0.0

        # --- Lane-line head --------------------------------------------
        dist_right, dist_left = self.sensor.lane_line_distances()
        lane_left = dist_left + float(self._rng.normal(0.0, p.lane_noise))
        lane_right = dist_right + float(self._rng.normal(0.0, p.lane_noise))

        # --- Desired-curvature head ------------------------------------
        # Feed-forward: lagged view of the road ahead (model latency).
        k_road = self.sensor.road_curvature(p.curvature_lookahead)
        alpha = dt / (p.ff_lag + dt)
        self._ff_curvature += alpha * (k_road - self._ff_curvature)
        # Feedback: the e2e model steers back toward the centre of the
        # lane it currently detects itself in (the *nearest* lane — after
        # drifting fully into the adjacent lane the model re-centres
        # there, exactly like a camera-based lane detector).
        lane = world.road.nearest_lane(ego.d)
        offset = ego.d - world.road.lane_center(lane)
        k_des = (
            self._ff_curvature
            - p.centering_gain * offset
            - p.heading_gain * ego.psi
            + float(self._rng.normal(0.0, p.curvature_noise))
        )
        k_des = clamp(k_des, -p.max_curvature, p.max_curvature)

        return PerceptionOutput(
            lead_valid=lead_valid,
            lead_rd=rd,
            lead_rs=rs,
            lane_left=lane_left,
            lane_right=lane_right,
            desired_curvature=k_des,
        )

    def reset(self) -> None:
        """Clear the feed-forward lag state (start of an episode)."""
        self._ff_curvature = 0.0


def perception_head_arrays(
    dt: float,
    lead_present: "np.ndarray",
    gap: "np.ndarray",
    rel_speed: "np.ndarray",
    noise: "np.ndarray",
    dist_right: "np.ndarray",
    dist_left: "np.ndarray",
    k_road: "np.ndarray",
    offset: "np.ndarray",
    psi: "np.ndarray",
    ff_curvature: "np.ndarray",
    detection_range: "np.ndarray",
    blind_range: "np.ndarray",
    centering_gain: "np.ndarray",
    heading_gain: "np.ndarray",
    ff_lag: "np.ndarray",
    rd_noise: "np.ndarray",
    rs_noise: "np.ndarray",
    lane_noise: "np.ndarray",
    curvature_noise: "np.ndarray",
    max_curvature: "np.ndarray",
) -> tuple[
    "np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray",
    "np.ndarray", "np.ndarray",
]:
    """Vectorized :meth:`PerceptionModel.run`, bit-exact per lane.

    One row per lane.  ``noise`` is an ``(n, 5)`` array of *standard
    normal* draws laid out ``[rd, rs, lane_left, lane_right, curvature]``;
    rows for lanes without a valid lead carry draws only in columns 2..4
    (the scalar path draws nothing for the lead head there).  The caller
    owns the per-lane draw-order bookkeeping (see
    :class:`repro.sim.batch_control.BatchControlStack`).

    Returns ``(lead_valid, rd, rs, lane_left, lane_right,
    desired_curvature, ff_curvature_next)``.
    """
    lead_valid = lead_present & (gap <= detection_range) & (gap >= blind_range)
    # rng.normal(0.0, s) computes 0.0 + s * standard_normal(); keep the
    # `0.0 +` so a negative-zero draw normalises exactly like the scalar.
    rd = gap + (0.0 + rd_noise * noise[:, 0])
    rd = np.where(rd < 0.0, 0.0, rd)  # max(rd, 0.0): rd wins ties
    rd = np.where(lead_valid, rd, 0.0)
    rs = np.where(lead_valid, rel_speed + (0.0 + rs_noise * noise[:, 1]), 0.0)

    lane_left = dist_left + (0.0 + lane_noise * noise[:, 2])
    lane_right = dist_right + (0.0 + lane_noise * noise[:, 3])

    alpha = dt / (ff_lag + dt)
    ff_next = ff_curvature + alpha * (k_road - ff_curvature)
    k_des = (
        ff_next
        - centering_gain * offset
        - heading_gain * psi
        + (0.0 + curvature_noise * noise[:, 4])
    )
    k_des = np_clamp(k_des, -max_curvature, max_curvature)
    return lead_valid, rd, rs, lane_left, lane_right, k_des, ff_next
