"""OpenPilot-substitute ADAS control software.

The stack mirrors OpenPilot's end-to-end architecture at the granularity the
paper's experiments need:

* :mod:`repro.adas.perception` — the "supercombo" surrogate: produces the
  DNN outputs (lead relative distance/speed, lane-line distances, desired
  curvature) that the paper's fault-injection engine tampers with.  Includes
  the close-range detection failure the paper documents (lead lost below
  ~2 m) and the camera's finite detection range.
* :mod:`repro.adas.lead_tracker` — alpha-beta filter over perceived lead
  state with brief coasting over dropouts.
* :mod:`repro.adas.long_planner` — ACC: cruise + following + approach
  braking with OpenPilot's documented aggressive late-braking profile.
* :mod:`repro.adas.lat_planner` — ALC: desired curvature to road-wheel
  steering angle with model-latency lag.
* :mod:`repro.adas.controlsd` — the 100 Hz glue joining them into the
  engaged ADAS command (acceleration, steering).
"""

from repro.adas.perception import PerceptionModel, PerceptionOutput
from repro.adas.lead_tracker import LeadTracker, TrackedLead
from repro.adas.long_planner import LongPlanner, LongPlannerParams
from repro.adas.lat_planner import LatPlanner, LatPlannerParams
from repro.adas.controlsd import AdasCommand, ControlsD

__all__ = [
    "PerceptionModel",
    "PerceptionOutput",
    "LeadTracker",
    "TrackedLead",
    "LongPlanner",
    "LongPlannerParams",
    "LatPlanner",
    "LatPlannerParams",
    "AdasCommand",
    "ControlsD",
]
