"""ALC lateral planner: desired curvature to road-wheel steering angle.

OpenPilot's lateral stack tracks the model's *desired curvature* output.
The planner here applies a short first-order smoothing (the lateral MPC's
effective bandwidth) and converts curvature to a road-wheel angle through
the bicycle-model relation ``steer = atan(wheelbase * curvature)``.

Lane-centring *feedback* intentionally lives in the perception surrogate's
desired-curvature head (see :mod:`repro.adas.perception`) — that is where
the end-to-end model computes it, and it is the quantity the paper's
curvature fault injection biases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.mathx import clamp
from repro.utils.npmath import np_clamp


@dataclass(frozen=True)
class LatPlannerParams:
    """Tuning constants for :class:`LatPlanner`.

    Attributes:
        smoothing: first-order time constant on the tracked curvature [s].
        wheelbase: bicycle-model wheelbase [m] (must match the vehicle).
        max_steer: road-wheel angle saturation [rad].
    """

    smoothing: float = 0.08
    wheelbase: float = 2.7
    max_steer: float = 0.5


class LatPlanner:
    """Maps desired curvature to a steering-angle command."""

    def __init__(self, params: LatPlannerParams | None = None) -> None:
        self.params = params or LatPlannerParams()
        self._curvature = 0.0

    def reset(self) -> None:
        """Clear the smoothing state (start of an episode)."""
        self._curvature = 0.0

    @property
    def tracked_curvature(self) -> float:
        """The smoothed curvature currently being tracked [1/m]."""
        return self._curvature

    def plan(self, desired_curvature: float, dt: float) -> float:
        """Compute the road-wheel steering command [rad].

        Args:
            desired_curvature: the perception head output (post-FI) [1/m].
            dt: control period [s].
        """
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        p = self.params
        alpha = dt / (p.smoothing + dt)
        self._curvature += alpha * (desired_curvature - self._curvature)
        steer = math.atan(p.wheelbase * self._curvature)
        return clamp(steer, -p.max_steer, p.max_steer)


def lat_plan_arrays(
    curvature: np.ndarray,
    desired_curvature: np.ndarray,
    dt: float,
    smoothing: np.ndarray,
    wheelbase: np.ndarray,
    max_steer: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :meth:`LatPlanner.plan`, bit-exact per lane.

    ``curvature`` is the smoothing state entering the step; returns
    ``(steer_command, curvature_next)``.  ``atan`` stays a per-lane
    :mod:`math` call — libm transcendentals are the only operations NumPy
    does not guarantee bit-identical elementwise.
    """
    alpha = dt / (smoothing + dt)
    curv_next = curvature + alpha * (desired_curvature - curvature)
    product = wheelbase * curv_next
    steer = np.array([math.atan(v) for v in product.tolist()])
    return np_clamp(steer, -max_steer, max_steer), curv_next
