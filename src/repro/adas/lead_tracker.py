"""Lead tracking: an alpha-beta filter over the perceived lead state.

OpenPilot fuses model and radar leads into a smoothed track; here a compact
alpha-beta filter plays that role.  Two properties matter downstream:

* smoothing keeps single-frame perception noise out of the ACC command;
* on detection dropout the track *coasts* briefly (predicting RD forward
  with the last relative speed) before invalidating — so a one-frame flicker
  does not disengage following, but a sustained loss (e.g. the close-range
  blind spot) does, after ``coast_time`` seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adas.perception import PerceptionOutput


@dataclass(frozen=True)
class TrackedLead:
    """Smoothed lead state consumed by the ACC planner.

    Attributes:
        valid: True while the track is alive.
        rd: filtered relative distance [m].
        rs: filtered relative (closing) speed [m/s].
    """

    valid: bool
    rd: float
    rs: float


class LeadTracker:
    """Alpha-beta filter with dropout coasting.

    Args:
        alpha: position-correction gain (0..1).
        beta: velocity-correction gain (0..1).
        coast_time: seconds the track survives without a detection.
    """

    def __init__(self, alpha: float = 0.35, beta: float = 0.12, coast_time: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0 or not 0.0 < beta <= 1.0:
            raise ValueError("alpha and beta must be in (0, 1]")
        if coast_time < 0.0:
            raise ValueError(f"coast_time must be non-negative, got {coast_time}")
        self.alpha = alpha
        self.beta = beta
        self.coast_time = coast_time
        self._valid = False
        self._rd = 0.0
        self._rs = 0.0
        self._time_since_seen = 0.0

    def reset(self) -> None:
        """Drop the track (start of an episode)."""
        self._valid = False
        self._rd = 0.0
        self._rs = 0.0
        self._time_since_seen = 0.0

    def update(self, perception: PerceptionOutput, dt: float) -> TrackedLead:
        """Fold one perception frame into the track and return it."""
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        if perception.lead_valid:
            if not self._valid:
                # (Re)initialise directly on the measurement.
                self._rd = perception.lead_rd
                self._rs = perception.lead_rs
                self._valid = True
            else:
                predicted = self._rd - self._rs * dt
                residual = perception.lead_rd - predicted
                self._rd = max(0.0, predicted + self.alpha * residual)
                # RS is a closing speed, so a shrinking RD means positive RS:
                self._rs = self._rs - (self.beta / dt) * residual * dt
                self._rs += self.beta * (perception.lead_rs - self._rs)
            self._time_since_seen = 0.0
        elif self._valid:
            self._time_since_seen += dt
            if self._time_since_seen > self.coast_time:
                self._valid = False
            else:
                self._rd = max(0.0, self._rd - self._rs * dt)
        return self.current()

    def current(self) -> TrackedLead:
        """The current track without folding in a new frame."""
        return TrackedLead(valid=self._valid, rd=self._rd, rs=self._rs)


def tracker_step_arrays(
    valid: np.ndarray,
    rd: np.ndarray,
    rs: np.ndarray,
    time_since_seen: np.ndarray,
    lead_valid: np.ndarray,
    lead_rd: np.ndarray,
    lead_rs: np.ndarray,
    dt: float,
    alpha: np.ndarray,
    beta: np.ndarray,
    coast_time: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :meth:`LeadTracker.update`, bit-exact per lane.

    Inputs are the filter state plus one perception frame per lane;
    returns the new ``(valid, rd, rs, time_since_seen)`` state (which is
    also the :class:`TrackedLead` the scalar path returns).
    """
    init = lead_valid & ~valid
    fold = lead_valid & valid

    predicted = rd - rs * dt
    residual = lead_rd - predicted
    rd_fold = predicted + alpha * residual
    rd_fold = np.where(rd_fold > 0.0, rd_fold, 0.0)  # max(0.0, x)
    rs_fold = rs - ((beta / dt) * residual) * dt
    rs_fold = rs_fold + beta * (lead_rs - rs_fold)

    coast = ~lead_valid & valid
    tss_next = np.where(lead_valid, 0.0, np.where(coast, time_since_seen + dt, time_since_seen))
    dead = coast & (tss_next > coast_time)
    coasting = coast & ~dead
    rd_coast = rd - rs * dt
    rd_coast = np.where(rd_coast > 0.0, rd_coast, 0.0)  # max(0.0, x)

    new_rd = np.where(
        init, lead_rd, np.where(fold, rd_fold, np.where(coasting, rd_coast, rd))
    )
    new_rs = np.where(init, lead_rs, np.where(fold, rs_fold, rs))
    new_valid = np.where(lead_valid, True, np.where(dead, False, valid))
    return new_valid, new_rd, new_rs, tss_next
