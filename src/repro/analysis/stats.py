"""Statistical helpers for campaign results.

The paper reports point estimates over 10-repetition grids; for honest
comparison at reduced repetition counts the benches (and EXPERIMENTS.md)
want uncertainty estimates.  Provides:

* :func:`wilson_interval` — binomial confidence interval for prevention /
  accident rates (robust at the small n and extreme p of these campaigns,
  unlike the normal approximation);
* :func:`rate_difference_significant` — quick two-proportion z-test for
  "does intervention A beat intervention B on this grid";
* :func:`bootstrap_mean` — percentile bootstrap for mitigation-time means.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Args:
        successes: number of successes (0..trials).
        trials: number of trials (> 0).
        confidence: two-sided confidence level in (0, 1).

    Returns:
        ``(lower, upper)`` bounds in [0, 1].
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    z = _z_for(confidence)
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    spread = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return max(0.0, centre - spread), min(1.0, centre + spread)


def rate_difference_significant(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    confidence: float = 0.95,
) -> bool:
    """Two-proportion z-test: is rate A different from rate B?

    Uses the pooled-variance z statistic; returns True when the difference
    is significant at the requested confidence level.
    """
    if trials_a <= 0 or trials_b <= 0:
        raise ValueError("trials must be positive")
    p_a = successes_a / trials_a
    p_b = successes_b / trials_b
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    variance = pooled * (1 - pooled) * (1 / trials_a + 1 / trials_b)
    if variance == 0.0:
        return p_a != p_b
    z = abs(p_a - p_b) / math.sqrt(variance)
    return z > _z_for(confidence)


def bootstrap_mean(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Optional[Tuple[float, float]]:
    """Percentile-bootstrap confidence interval of the mean.

    Returns None for an empty sample (e.g. a mechanism that never fired).
    """
    if not values:
        return None
    rng = np.random.default_rng(seed)
    data = np.asarray(values, dtype=float)
    means = np.empty(resamples)
    for i in range(resamples):
        means[i] = rng.choice(data, size=len(data), replace=True).mean()
    alpha = (1.0 - confidence) / 2.0
    return float(np.quantile(means, alpha)), float(np.quantile(means, 1.0 - alpha))


def _z_for(confidence: float) -> float:
    """Two-sided standard-normal quantile for a confidence level.

    Small lookup with linear interpolation — avoids a scipy dependency in
    the core package (scipy is available in dev environments but the
    library only requires numpy).
    """
    table = (
        (0.80, 1.2816),
        (0.90, 1.6449),
        (0.95, 1.9600),
        (0.98, 2.3263),
        (0.99, 2.5758),
        (0.995, 2.8070),
        (0.999, 3.2905),
    )
    if confidence <= table[0][0]:
        return table[0][1]
    if confidence >= table[-1][0]:
        return table[-1][1]
    for (c0, z0), (c1, z1) in zip(table, table[1:]):
        if c0 <= confidence <= c1:
            t = (confidence - c0) / (c1 - c0)
            return z0 + t * (z1 - z0)
    raise AssertionError("unreachable")  # pragma: no cover
