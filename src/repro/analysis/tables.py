"""Table generators — one per evaluation table in the paper.

Each generator consumes campaign results (see
:mod:`repro.core.experiment`) and returns structured rows plus helpers for
plain-text rendering, mirroring the layout of the corresponding paper
table so side-by-side comparison is direct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.experiment import CampaignResult
from repro.core.metrics import EpisodeResult, aggregate, group_by
from repro.analysis.render import format_table
from repro.sim.scenarios import SCENARIO_IDS


# --------------------------------------------------------------------- #
# Table IV — fault-free driving performance
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Table4Row:
    """One scenario row of Table IV."""

    scenario_id: str
    hazard_count: int
    accident_count: int
    episodes: int
    following_distance: Optional[float]
    hardest_brake_pct: float
    min_ttc: Optional[float]
    min_tfcw: Optional[float]


def table4_driving_performance(campaign: CampaignResult) -> List[Table4Row]:
    """Reproduce Table IV (hardest-brake / TTC / following distance)."""
    rows: List[Table4Row] = []
    groups = group_by(campaign.results, "scenario_id")
    for sid in SCENARIO_IDS:
        results = groups.get(sid)
        if not results:
            continue
        stats = aggregate(results)
        rows.append(
            Table4Row(
                scenario_id=sid,
                hazard_count=sum(1 for r in results if r.h1 or r.h2),
                accident_count=sum(1 for r in results if r.crashed),
                episodes=len(results),
                following_distance=stats.mean_following_distance,
                hardest_brake_pct=100.0 * max(r.hardest_brake_fraction for r in results),
                min_ttc=stats.min_ttc,
                min_tfcw=stats.min_tfcw,
            )
        )
    return rows


def render_table4(rows: Sequence[Table4Row]) -> str:
    """Plain-text Table IV."""
    return format_table(
        ["Scenario", "Hazard", "Accident", "Follow Dist (m)", "Hard Brake", "min TTC (s)", "min tfcw (s)"],
        [
            [
                r.scenario_id,
                f"{r.hazard_count}/{r.episodes}",
                f"{r.accident_count}/{r.episodes}",
                r.following_distance,
                f"{r.hardest_brake_pct:.1f}%",
                r.min_ttc,
                r.min_tfcw,
            ]
            for r in rows
        ],
        title="Table IV: Driving performance without attacks",
    )


# --------------------------------------------------------------------- #
# Table V — minimal distance to lane lines
# --------------------------------------------------------------------- #


def table5_lane_distance(campaign: CampaignResult) -> Dict[str, Optional[float]]:
    """Reproduce Table V: per-scenario minimal lane-line distance [m].

    ``None`` marks scenarios whose episodes never produced a defined
    minimum (the ``inf`` accumulation sentinel never leaks out).
    """
    def scenario_min(results: Sequence[EpisodeResult]) -> Optional[float]:
        value = min(r.min_lane_distance for r in results)
        return value if math.isfinite(value) else None

    return {
        sid: scenario_min(results)
        for sid, results in sorted(group_by(campaign.results, "scenario_id").items())
    }


def render_table5(distances: Dict[str, Optional[float]]) -> str:
    """Plain-text Table V (undefined minima render as ``-``)."""
    sids = [s for s in SCENARIO_IDS if s in distances]
    return format_table(
        ["Scenario"] + sids,
        [["Distance to Lane Lines (m)"] + [distances[s] for s in sids]],
        title="Table V: Minimal distance to lane lines",
    )


# --------------------------------------------------------------------- #
# Table VI — fault injection with/without safety interventions
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Table6Row:
    """One (fault type, intervention) row of Table VI.

    Percentages in [0, 100]; mitigation times in seconds (None when the
    mechanism never triggered).
    """

    fault_type: str
    intervention: str
    a1_pct: float
    a2_pct: float
    prevented_pct: float
    aeb_time: Optional[float]
    driver_brake_time: Optional[float]
    driver_steer_time: Optional[float]
    aeb_trigger_pct: float
    driver_brake_trigger_pct: float
    driver_steer_trigger_pct: float


def table6_row(results: Sequence[EpisodeResult], intervention: str) -> Table6Row:
    """Aggregate one Table VI row from a homogeneous result set."""
    if not results:
        raise ValueError("cannot build a Table VI row from no results")
    stats = aggregate(results)
    fault_types = sorted({r.fault_type for r in results})
    fault = fault_types[0] if len(fault_types) == 1 else "mixed-set"
    return Table6Row(
        fault_type=fault,
        intervention=intervention,
        a1_pct=100.0 * stats.a1_rate,
        a2_pct=100.0 * stats.a2_rate,
        prevented_pct=100.0 * stats.prevented_rate,
        aeb_time=stats.aeb_mitigation_time,
        driver_brake_time=stats.driver_brake_mitigation_time,
        driver_steer_time=stats.driver_steer_mitigation_time,
        aeb_trigger_pct=100.0 * stats.aeb_trigger_rate,
        driver_brake_trigger_pct=100.0 * stats.driver_brake_trigger_rate,
        driver_steer_trigger_pct=100.0 * stats.driver_steer_trigger_rate,
    )


def table6_rows(
    campaigns: Sequence[Tuple[str, CampaignResult]]
) -> List[Table6Row]:
    """Build the full Table VI row set from per-intervention campaigns.

    Args:
        campaigns: ``(intervention label, campaign)`` pairs, one per
            Table VI arm (the label may differ from the campaign's own —
            e.g. the ML row renders as plain ``"ml"``).

    Returns:
        One row per (fault type, intervention), sorted the way the paper
        lays the table out.  Shared by the CLI ``table6`` command and the
        report pipeline so both always agree on row order.
    """
    rows: List[Table6Row] = []
    for label, campaign in campaigns:
        for fault, results in sorted(group_by(campaign.results, "fault_type").items()):
            rows.append(table6_row(results, label))
    rows.sort(key=lambda r: (r.fault_type, r.intervention))
    return rows


def render_table6(rows: Sequence[Table6Row]) -> str:
    """Plain-text Table VI."""
    return format_table(
        [
            "Fault",
            "Interventions",
            "A1",
            "A2",
            "Prevented",
            "t_AEB",
            "t_DrvBrake",
            "t_DrvSteer",
            "AEB trig",
            "Brake trig",
            "Steer trig",
        ],
        [
            [
                r.fault_type,
                r.intervention,
                f"{r.a1_pct:.1f}%",
                f"{r.a2_pct:.1f}%",
                f"{r.prevented_pct:.1f}%",
                r.aeb_time,
                r.driver_brake_time,
                r.driver_steer_time,
                f"{r.aeb_trigger_pct:.1f}%",
                f"{r.driver_brake_trigger_pct:.1f}%",
                f"{r.driver_steer_trigger_pct:.1f}%",
            ]
            for r in rows
        ],
        title="Table VI: Fault injection with/without safety interventions",
    )


# --------------------------------------------------------------------- #
# Table VII — prevention rate vs. driver reaction time
# --------------------------------------------------------------------- #


def table7_reaction_sweep(
    sweeps: Dict[float, CampaignResult]
) -> Dict[str, Dict[float, float]]:
    """Reproduce Table VII.

    Args:
        sweeps: reaction time [s] -> driver-only campaign result.

    Returns:
        fault type -> {reaction time -> prevention rate in [0, 100]}.
    """
    table: Dict[str, Dict[float, float]] = {}
    for rt, campaign in sorted(sweeps.items()):
        for fault, stats in campaign.by_fault_type().items():
            table.setdefault(fault, {})[rt] = 100.0 * stats.prevented_rate
    return table


def render_table7(table: Dict[str, Dict[float, float]]) -> str:
    """Plain-text Table VII."""
    times = sorted({rt for per_fault in table.values() for rt in per_fault})
    return format_table(
        ["Fault Type"] + [f"{t:.1f}s" for t in times],
        [
            [fault] + [f"{table[fault].get(t, float('nan')):.1f}%" for t in times]
            for fault in sorted(table)
        ],
        title="Table VII: Prevention rate vs driver reaction time",
    )


# --------------------------------------------------------------------- #
# Table VIII — hazard prevention rate vs. road friction
# --------------------------------------------------------------------- #


def table8_friction_sweep(
    sweeps: Dict[str, CampaignResult]
) -> Dict[str, Dict[str, float]]:
    """Reproduce Table VIII.

    Args:
        sweeps: friction label -> campaign result (driver + safety check +
            AEB-compromised, per the paper's footnote).

    Returns:
        fault type -> {friction label -> prevention rate in [0, 100]}.
    """
    table: Dict[str, Dict[str, float]] = {}
    for label, campaign in sweeps.items():
        for fault, stats in campaign.by_fault_type().items():
            table.setdefault(fault, {})[label] = 100.0 * stats.prevented_rate
    return table


def render_table8(
    table: Dict[str, Dict[str, float]], friction_order: Tuple[str, ...] = ("default", "25% off", "50% off", "75% off")
) -> str:
    """Plain-text Table VIII."""
    return format_table(
        ["Fault Type"] + list(friction_order),
        [
            [fault]
            + [f"{table[fault].get(f, float('nan')):.1f}%" for f in friction_order]
            for fault in sorted(table)
        ],
        title="Table VIII: Hazard prevention rate vs road friction",
    )


# --------------------------------------------------------------------- #
# Scenario-family sweeps (registry workloads beyond the paper grid)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class FamilySweepRow:
    """Aggregate of one parameter point of a scenario-family sweep."""

    point: str
    episodes: int
    a1_pct: float
    a2_pct: float
    prevented_pct: float
    aeb_trigger_pct: float


def family_sweep_rows(
    pairs: Sequence[Tuple[str, CampaignResult]]
) -> List[FamilySweepRow]:
    """Aggregate a family sweep: one row per ``(point label, campaign)``.

    Row order follows the input pairs (the sweep's declared axis order),
    not an alphabetical sort — ``mu=0.75, 0.5, 0.25`` should read in
    sweep order.
    """
    rows: List[FamilySweepRow] = []
    for point, campaign in pairs:
        stats = aggregate(campaign.results)
        rows.append(
            FamilySweepRow(
                point=point,
                episodes=len(campaign.results),
                a1_pct=100.0 * stats.a1_rate,
                a2_pct=100.0 * stats.a2_rate,
                prevented_pct=100.0 * stats.prevented_rate,
                aeb_trigger_pct=100.0 * stats.aeb_trigger_rate,
            )
        )
    return rows


def render_family_sweep(family_id: str, rows: Sequence[FamilySweepRow]) -> str:
    """Plain-text sweep table for one scenario family."""
    return format_table(
        ["Sweep point", "Episodes", "A1", "A2", "Prevented", "AEB trig"],
        [
            [
                r.point,
                r.episodes,
                f"{r.a1_pct:.1f}%",
                f"{r.a2_pct:.1f}%",
                f"{r.prevented_pct:.1f}%",
                f"{r.aeb_trigger_pct:.1f}%",
            ]
            for r in rows
        ],
        title=f"Scenario family sweep: {family_id}",
    )
