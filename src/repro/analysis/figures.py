"""Figure data extraction — Fig. 5 and Fig. 6 of the paper.

* **Fig. 5** — "Speed and Distance to Lane Lines when Approaching LV":
  fault-free episodes per scenario; shows the aggressive approach braking
  (S1: ~21.7 -> ~9.6 m/s) and the lane-centring quality.
* **Fig. 6** — "Speed and Relative Distance under Fault Injection": an RD
  attack episode; shows the perceived-vs-true gap divergence, the lead
  dropping out of perception at close range, the re-acceleration, and the
  collision.

Each helper runs the episode with trace recording and returns the series
plus CSV export; the benches print compact ASCII plots of the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.attacks.campaign import EpisodeSpec
from repro.attacks.fi import FaultType
from repro.core.platform import EpisodeTrace, SimulationPlatform
from repro.core.metrics import EpisodeResult
from repro.safety.arbitration import InterventionConfig


@dataclass
class FigureSeries:
    """One figure panel: a trace plus the episode's outcome."""

    scenario_id: str
    trace: EpisodeTrace
    result: EpisodeResult

    def to_csv(self) -> str:
        """Export the trace as CSV text."""
        header = (
            "time,ego_speed,true_gap,perceived_rd,accel,steer,"
            "lane_distance,lateral_offset,aeb_phase,fcw,attack_active"
        )
        lines = [header]
        t = self.trace
        for i in range(len(t.time)):
            lines.append(
                f"{t.time[i]:.2f},{t.ego_speed[i]:.3f},{t.true_gap[i]:.3f},"
                f"{t.perceived_rd[i]:.3f},{t.accel[i]:.3f},{t.steer[i]:.4f},"
                f"{t.lane_distance[i]:.3f},{t.lateral_offset[i]:.3f},"
                f"{t.aeb_phase[i]},{int(t.fcw[i])},{int(t.attack_active[i])}"
            )
        return "\n".join(lines)


def _run_traced(
    scenario_id: str,
    fault_type: FaultType,
    seed: int,
    initial_gap: float,
    interventions: Optional[InterventionConfig] = None,
    max_steps: int = 10_000,
) -> FigureSeries:
    spec = EpisodeSpec(
        scenario_id=scenario_id,
        initial_gap=initial_gap,
        fault_type=fault_type,
        repetition=0,
        seed=seed,
    )
    platform = SimulationPlatform(
        spec,
        interventions or InterventionConfig(),
        record_trace=True,
        trace_every=5,
        max_steps=max_steps,
    )
    result = platform.run()
    assert platform.trace is not None
    return FigureSeries(scenario_id=scenario_id, trace=platform.trace, result=result)


def fig5_series(
    seed: int = 2025, initial_gap: float = 60.0, max_steps: int = 10_000
) -> Dict[str, FigureSeries]:
    """Fig. 5: fault-free approach traces for every scenario."""
    return {
        sid: _run_traced(sid, FaultType.NONE, seed, initial_gap, max_steps=max_steps)
        for sid in ("S1", "S2", "S3", "S4", "S5", "S6")
    }


def fig6_series(
    scenario_id: str = "S1",
    seed: int = 2025,
    initial_gap: float = 60.0,
    max_steps: int = 10_000,
) -> FigureSeries:
    """Fig. 6: speed and relative distance under an RD attack."""
    return _run_traced(
        scenario_id, FaultType.RELATIVE_DISTANCE, seed, initial_gap, max_steps=max_steps
    )


def render_fig5_summary(drops: Dict[str, float]) -> str:
    """One-line Fig. 5 summary: per-scenario approach speed drops.

    Pure formatting (no simulation), so the report pipeline and the
    golden-file suite can exercise the exact report layout from
    precomputed data.
    """
    return ", ".join(f"{sid}: {drop:.1f}" for sid, drop in sorted(drops.items()))


def render_fig6_summary(result: EpisodeResult) -> str:
    """One-line Fig. 6 summary: attack-trace outcome and timing."""
    outcome = result.accident.value if result.accident else "none"
    return (
        f"outcome: {outcome} at t={result.accident_time}; "
        f"attack from t={result.attack_first_activation}"
    )


def speed_drop(series: FigureSeries) -> float:
    """Largest sustained speed drop in a trace [m/s].

    Used to verify the Fig. 5 shape (the paper quotes a 21.7 -> 9.6 m/s
    drop when approaching the lead in S1).
    """
    speeds: List[float] = series.trace.ego_speed
    if not speeds:
        return 0.0
    peak = speeds[0]
    drop = 0.0
    for v in speeds:
        peak = max(peak, v)
        drop = max(drop, peak - v)
    return drop
