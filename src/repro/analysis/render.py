"""Plain-text rendering helpers for tables and quick time-series plots.

The benchmarks print the reproduced tables with these helpers so the
paper-versus-measured comparison can be read straight off the pytest
output (and is captured into ``bench_output.txt``).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table.

    Args:
        headers: column headers.
        rows: cell values (converted with ``str``).
        title: optional title line printed above the table.
    """
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        # Undefined measurements (inf sentinels, NaN) must never render as
        # "inf"/"nan" in a paper table — they mean "no defined value".
        if not math.isfinite(cell):
            return "-"
        return f"{cell:.2f}"
    return str(cell)


def format_placeholder(title: str, lines: Sequence[str], note: str = "pending") -> str:
    """Render a not-yet-computable report artifact as a markdown stub.

    The incremental report emits one of these wherever a table's campaign
    inputs are still being computed, so the document stays structurally
    complete (every section present, in order) while showing exactly what
    is missing.

    Args:
        title: the artifact's section title.
        lines: one detail line per campaign arm (indented verbatim).
        note: short status tag appended to the title (``pending``,
            ``failed``, ...).
    """
    out = [f"## {title} — {note}", ""]
    out += [f"    {line}" for line in lines]
    return "\n".join(out)


def ascii_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 72,
    height: int = 14,
    label: str = "",
) -> str:
    """Render a single series as a compact ASCII plot.

    NaN samples are skipped (used for "lead not perceived" stretches in
    Fig. 6 traces).
    """
    pairs = [(x, y) for x, y in zip(xs, ys) if y == y]  # drop NaN
    if not pairs:
        return f"{label}: (no data)"
    xs_f = [p[0] for p in pairs]
    ys_f = [p[1] for p in pairs]
    x_lo, x_hi = min(xs_f), max(xs_f)
    y_lo, y_hi = min(ys_f), max(ys_f)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in pairs:
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = [f"{label}  [y: {y_lo:.2f}..{y_hi:.2f}, x: {x_lo:.1f}..{x_hi:.1f}]"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    return "\n".join(lines)
