"""Full experiment report: run every campaign and emit one markdown file.

``python -m repro report`` (see :mod:`repro.cli`) uses this to regenerate
the complete evaluation — Tables IV-VIII plus the Fig. 5/6 trace summaries
— into a single self-contained document, mirroring the paper's evaluation
section layout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.figures import fig5_series, fig6_series, speed_drop
from repro.analysis.tables import (
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
    table4_driving_performance,
    table5_lane_distance,
    table6_row,
    table7_reaction_sweep,
    table8_friction_sweep,
)
from repro.attacks.campaign import CampaignSpec, EpisodeSpec, enumerate_campaign
from repro.attacks.fi import FaultType
from repro.core.cache import (
    CampaignCache,
    campaign_digest,
    default_cache,
    resume_file_for,
)
from repro.core.experiment import CampaignResult, run_campaign
from repro.core.metrics import group_by
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig
from repro.sim.weather import FRICTION_CONDITIONS


@dataclass
class ReportConfig:
    """What to include and at which scale.

    Attributes:
        repetitions: campaign repetitions per grid cell (paper: 10).
        seed: master campaign seed.
        include_ml: include the ML baseline row (requires/uses the cached
            LSTM; training is triggered if no cache exists).
        reaction_times: Table VII sweep points.
        jobs: worker processes per campaign (None defers to the
            ``REPRO_JOBS`` environment variable, then serial); results are
            bit-identical across worker counts.
        cache_dir: campaign result cache directory (None defers to the
            ``REPRO_CACHE_DIR`` environment variable, then no caching).
            Cached campaigns — including the ML arm, keyed by its trainer
            configuration — are returned without executing any episodes.
        resume_dir: directory of per-campaign JSONL files keyed by content
            digest; an interrupted report re-run skips completed campaigns
            and resumes the partially-written one.
        log: progress sink (e.g. ``print``).
    """

    repetitions: int = 2
    seed: int = 2025
    include_ml: bool = False
    reaction_times: tuple = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5)
    jobs: Optional[int] = None
    cache_dir: Optional[str] = None
    resume_dir: Optional[str] = None
    log: Optional[Callable[[str], None]] = None

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def cache(self) -> Optional[CampaignCache]:
        """The effective result cache (explicit dir, then environment)."""
        if self.cache_dir:
            return CampaignCache(self.cache_dir)
        return default_cache()

    def resume_path_for(self, digest: str) -> Optional[str]:
        """Resume file for a campaign digest under ``resume_dir`` (or None)."""
        if not self.resume_dir:
            return None
        return resume_file_for(self.resume_dir, digest)


#: The Table VI intervention rows, in paper order.
TABLE6_CONFIGS = (
    InterventionConfig(name="none"),
    InterventionConfig(driver=True, safety_check=True, name="driver+check"),
    InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.COMPROMISED,
        name="driver+check+aeb_comp",
    ),
    InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.INDEPENDENT,
        name="driver+check+aeb_indep",
    ),
    InterventionConfig(aeb=AebsConfig.COMPROMISED, name="aeb_comp"),
    InterventionConfig(aeb=AebsConfig.INDEPENDENT, name="aeb_indep"),
    InterventionConfig(driver=True, name="driver"),
)


def _run_report_campaign(
    config: ReportConfig,
    campaign: Union[CampaignSpec, Sequence[EpisodeSpec]],
    interventions: InterventionConfig,
    ml_factory: Optional[Callable[[], object]] = None,
    ml_token: Optional[str] = None,
) -> CampaignResult:
    """One report campaign through the persistence layer (cache + resume)."""
    resume_path = None
    if config.resume_dir:
        resume_path = config.resume_path_for(
            campaign_digest(campaign, interventions, ml_token=ml_token)
        )
    cache = config.cache()
    return run_campaign(
        campaign,
        interventions,
        ml_factory=ml_factory,
        jobs=config.jobs,
        cache=cache if cache is not None else False,
        resume_path=resume_path,
    )


def generate_report(config: ReportConfig = ReportConfig()) -> str:
    """Run all campaigns and return the full markdown report."""
    started = time.time()
    sections: List[str] = [
        "# Reproduction report",
        "",
        f"repetitions per grid cell: {config.repetitions}; "
        f"campaign seed: {config.seed}",
        "",
    ]

    # ---- Tables IV & V (fault-free grid) --------------------------------
    config._say("running fault-free campaign (Tables IV, V) ...")
    benign = _run_report_campaign(
        config,
        CampaignSpec(
            fault_types=[FaultType.NONE],
            repetitions=config.repetitions,
            seed=config.seed,
        ),
        InterventionConfig(),
    )
    sections += ["```", render_table4(table4_driving_performance(benign)), "```", ""]
    sections += ["```", render_table5(table5_lane_distance(benign)), "```", ""]

    # ---- Fig. 5 / Fig. 6 summaries ---------------------------------------
    config._say("tracing Fig. 5 / Fig. 6 episodes ...")
    fig5 = fig5_series(seed=config.seed)
    drops = {sid: speed_drop(s) for sid, s in fig5.items()}
    sections += [
        "## Fig. 5 — approach speed drops [m/s]",
        "",
        ", ".join(f"{sid}: {drop:.1f}" for sid, drop in sorted(drops.items())),
        "",
    ]
    fig6 = fig6_series(seed=config.seed)
    outcome = fig6.result.accident.value if fig6.result.accident else "none"
    sections += [
        "## Fig. 6 — RD-attack trace",
        "",
        f"outcome: {outcome} at t={fig6.result.accident_time}; "
        f"attack from t={fig6.result.attack_first_activation}",
        "",
    ]

    # ---- Table VI ----------------------------------------------------------
    spec = CampaignSpec(repetitions=config.repetitions, seed=config.seed)
    rows = []
    for cfg in TABLE6_CONFIGS:
        config._say(f"running Table VI campaign: {cfg.label()} ...")
        campaign = _run_report_campaign(config, spec, cfg)
        for fault, results in sorted(group_by(campaign.results, "fault_type").items()):
            rows.append(table6_row(results, cfg.label()))
    if config.include_ml:
        config._say("running Table VI campaign: ml ...")
        from repro.ml import MitigationFactory, TrainerConfig, load_or_train_cached

        trainer_config = TrainerConfig()
        ml_cfg = InterventionConfig(ml=True, name="ml")
        # Key the ML campaign by its trainer configuration so a cache hit
        # short-circuits *before* weights are loaded or trained at all.
        ml_token = f"trainer:{trainer_config!r}"
        campaign = None
        cache = config.cache()
        if cache is not None:
            hit = cache.get(campaign_digest(spec, ml_cfg, ml_token=ml_token))
            if hit is not None and len(hit) == len(enumerate_campaign(spec)):
                config._say("  (cache hit — skipping training and execution)")
                campaign = CampaignResult(intervention=ml_cfg.label(), results=hit)
        if campaign is None:
            baseline = load_or_train_cached(trainer_config)
            # A picklable factory carrying the trained weights: the ML arm
            # fans out over worker processes and caches like any other arm
            # (a lambda here used to force the in-process fallback).
            campaign = _run_report_campaign(
                config,
                spec,
                ml_cfg,
                ml_factory=MitigationFactory(baseline, digest_token=ml_token),
                ml_token=ml_token,
            )
        for fault, results in sorted(group_by(campaign.results, "fault_type").items()):
            rows.append(table6_row(results, "ml"))
    rows.sort(key=lambda r: (r.fault_type, r.intervention))
    sections += ["```", render_table6(rows), "```", ""]

    # ---- Table VII ---------------------------------------------------------
    sweeps = {}
    for rt in config.reaction_times:
        config._say(f"running Table VII sweep: reaction time {rt} s ...")
        sweeps[rt] = _run_report_campaign(
            config, spec, InterventionConfig(driver=True, driver_reaction_time=rt)
        )
    sections += ["```", render_table7(table7_reaction_sweep(sweeps)), "```", ""]

    # ---- Table VIII ---------------------------------------------------------
    friction_sweeps = {}
    cfg8 = InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.COMPROMISED
    )
    for label, condition in FRICTION_CONDITIONS.items():
        config._say(f"running Table VIII sweep: {label} ...")
        friction_sweeps[label] = _run_report_campaign(
            config,
            CampaignSpec(
                fault_types=[FaultType.RELATIVE_DISTANCE, FaultType.DESIRED_CURVATURE],
                repetitions=config.repetitions,
                seed=config.seed,
                friction=condition,
            ),
            cfg8,
        )
    sections += ["```", render_table8(table8_friction_sweep(friction_sweeps)), "```", ""]

    sections.append(f"_generated in {time.time() - started:.0f} s_")
    return "\n".join(sections)
