"""Full experiment report: the paper's evaluation as an artifact DAG.

``python -m repro report`` (see :mod:`repro.cli`) uses this to regenerate
the complete evaluation — Tables IV-VIII plus the Fig. 5/6 trace
summaries — into a single self-contained markdown document, mirroring the
paper's evaluation section layout.

The report is declared as a DAG of
:class:`~repro.analysis.incremental.ReportArtifact`\\ s (see
:func:`build_report_artifacts`): each table/figure names the campaign arms
it consumes, and the
:class:`~repro.analysis.incremental.IncrementalReportEngine` resolves
those arms against the campaign cache and resume directory.  Two modes
fall out:

* **blocking** (:func:`generate_report`, the default) — execute every
  missing campaign, render everything; a failed arm raises
  :class:`~repro.analysis.incremental.ReportError` naming its digest.
* **incremental** (``repro report --incremental``) — render every
  artifact whose inputs are already complete, emit placeholders with
  per-arm episode counts for the rest, and return in seconds.  Once the
  cache is complete the incremental report is byte-identical to the
  blocking one.

The report body is deterministic in its inputs (no timestamps), which is
what makes the manifest sidecar's byte-level reuse — and the golden-file
regression suite — possible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.analysis.figures import (
    fig5_series,
    fig6_series,
    render_fig5_summary,
    render_fig6_summary,
    speed_drop,
)
from repro.analysis.incremental import (
    CampaignArm,
    IncrementalReportEngine,
    ReportArtifact,
    ReportError,
)
from repro.analysis.tables import (
    family_sweep_rows,
    render_family_sweep,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
    table4_driving_performance,
    table5_lane_distance,
    table6_rows,
    table7_reaction_sweep,
    table8_friction_sweep,
)
from repro.attacks.campaign import CampaignSpec, EpisodeSpec
from repro.attacks.fi import FaultType
from repro.sim.families import get_family, param_token
from repro.core.cache import (
    CampaignCache,
    campaign_digest,
    default_cache,
    resume_file_for,
)
from repro.core.experiment import CampaignResult, run_campaign
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig
from repro.sim.weather import FRICTION_CONDITIONS

__all__ = [
    "ReportConfig",
    "ReportError",
    "TABLE6_CONFIGS",
    "build_family_artifact",
    "build_report_artifacts",
    "generate_report",
]


@dataclass
class ReportConfig:
    """What to include and at which scale.

    Attributes:
        repetitions: campaign repetitions per grid cell (paper: 10).
        seed: master campaign seed.
        include_ml: include the ML baseline row (requires/uses the cached
            LSTM; training is triggered if no cache exists).
        reaction_times: Table VII sweep points.
        jobs: worker processes per campaign (None defers to the
            ``REPRO_JOBS`` environment variable, then serial); results are
            bit-identical across worker counts.
        executor: executor name for every report campaign (``repro report
            --executor``): ``"serial"``, ``"parallel"``, or ``"batch"``
            (vectorized lockstep, ML arm included; bit-identical
            results).  ``"batch"`` composes with ``jobs > 1`` into the
            batch×jobs hybrid — lane shards across workers, batch engine
            inside each.  ``None`` defers to ``jobs``.
        lanes: peak lockstep lane count for ``executor="batch"`` (``repro
            report --lanes``); ``None`` defers to the ``REPRO_BATCH_LANES``
            environment variable, then uncapped.
        cache_dir: campaign result cache directory (None defers to the
            ``REPRO_CACHE_DIR`` environment variable, then no caching).
            Cached campaigns — including the ML arm, keyed by its trainer
            configuration — are returned without executing any episodes.
        resume_dir: directory of per-campaign JSONL files keyed by content
            digest; an interrupted report re-run skips completed campaigns
            and resumes the partially-written one.
        extra_families: registered scenario-family ids to append as sweep
            artifacts after the paper tables (``repro report --family``);
            each family contributes one campaign arm per point of its
            declared ``report_axes`` sweep.
        backend: registered worker-backend name (``repro report
            --backend``); when set, every report campaign routes through
            the distributed scheduler (:mod:`repro.core.scheduler`), so
            shards execute on the worker fleet, land in the shared cache,
            and the incremental report fills in as they arrive.  ``None``
            keeps the historical direct ``run_campaign`` path (itself a
            single-shard plan).
        workers: worker count for the scheduler backend.
        workdir: shard work directory for the scheduler backend (reused
            across runs, it makes crashed report campaigns resume).
        log: progress sink (e.g. ``print``).
    """

    repetitions: int = 2
    seed: int = 2025
    include_ml: bool = False
    reaction_times: tuple = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5)
    jobs: Optional[int] = None
    executor: Optional[str] = None
    lanes: Optional[int] = None
    cache_dir: Optional[str] = None
    resume_dir: Optional[str] = None
    extra_families: tuple = ()
    backend: Optional[str] = None
    workers: Optional[int] = None
    workdir: Optional[str] = None
    log: Optional[Callable[[str], None]] = None

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def cache(self, create: bool = True) -> Optional[CampaignCache]:
        """The effective result cache (explicit dir, then environment).

        ``create=False`` yields a read-only handle that never materialises
        the directory — what status probes must use.
        """
        if self.cache_dir:
            return CampaignCache(self.cache_dir, create=create)
        return default_cache(create=create)

    def resume_path_for(self, digest: str) -> Optional[str]:
        """Resume file for a campaign digest under ``resume_dir`` (or None)."""
        if not self.resume_dir:
            return None
        return resume_file_for(self.resume_dir, digest)


#: The Table VI intervention rows, in paper order.
TABLE6_CONFIGS = (
    InterventionConfig(name="none"),
    InterventionConfig(driver=True, safety_check=True, name="driver+check"),
    InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.COMPROMISED,
        name="driver+check+aeb_comp",
    ),
    InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.INDEPENDENT,
        name="driver+check+aeb_indep",
    ),
    InterventionConfig(aeb=AebsConfig.COMPROMISED, name="aeb_comp"),
    InterventionConfig(aeb=AebsConfig.INDEPENDENT, name="aeb_indep"),
    InterventionConfig(driver=True, name="driver"),
)


def _run_report_campaign(
    config: ReportConfig,
    campaign: Union[CampaignSpec, Sequence[EpisodeSpec]],
    interventions: InterventionConfig,
    ml_factory: Optional[Callable[[], object]] = None,
    ml_token: Optional[str] = None,
) -> CampaignResult:
    """One report campaign through the persistence layer (cache + resume).

    With ``config.backend`` set, the campaign instead goes through the
    distributed scheduler's plan → dispatch → collect pipeline: shards
    execute on the configured worker fleet and the collected campaign is
    written through the shared cache under the same digest the report DAG
    resolves, so the incremental report sees it exactly as if it had run
    locally.
    """
    cache = config.cache()
    if config.backend:
        from repro.core.scheduler import dispatch_campaign

        return dispatch_campaign(
            campaign,
            interventions,
            backend=config.backend,
            workers=config.workers,
            workdir=config.workdir,
            ml_factory=ml_factory,
            jobs=config.jobs,
            executor=config.executor,
            lanes=config.lanes,
            cache=cache if cache is not None else False,
            log=config._say,
        )
    resume_path = None
    if config.resume_dir:
        resume_path = config.resume_path_for(
            campaign_digest(campaign, interventions, ml_token=ml_token)
        )
    return run_campaign(
        campaign,
        interventions,
        ml_factory=ml_factory,
        jobs=config.jobs,
        executor=config.executor,
        lanes=config.lanes,
        cache=cache if cache is not None else False,
        resume_path=resume_path,
    )


def _fenced(table: str) -> str:
    """A plain-text table wrapped in a markdown code fence."""
    return "\n".join(["```", table, "```"])


def build_report_artifacts(config: ReportConfig) -> List[ReportArtifact]:
    """The paper's report layout as an artifact DAG, in section order.

    Tables IV and V share the fault-free campaign arm; Table VI consumes
    one arm per intervention configuration (plus the ML arm when enabled);
    Tables VII/VIII consume one arm per sweep point.  The Fig. 5/6
    summaries trace single episodes directly (no campaign arms), so their
    freshness is tracked by the traced seed instead.
    """
    artifacts: List[ReportArtifact] = []

    # ---- Tables IV & V (one shared fault-free arm) ----------------------
    benign = CampaignArm(
        name="fault-free",
        campaign=CampaignSpec(
            fault_types=[FaultType.NONE],
            repetitions=config.repetitions,
            seed=config.seed,
        ),
        interventions=InterventionConfig(),
    )
    artifacts.append(
        ReportArtifact(
            "table4",
            "Table IV: Driving performance without attacks",
            (benign,),
            lambda results: _fenced(
                render_table4(table4_driving_performance(results["fault-free"]))
            ),
        )
    )
    artifacts.append(
        ReportArtifact(
            "table5",
            "Table V: Minimal distance to lane lines",
            (benign,),
            lambda results: _fenced(
                render_table5(table5_lane_distance(results["fault-free"]))
            ),
        )
    )

    # ---- Fig. 5 / Fig. 6 summaries (traced episodes, no campaign arms) --
    seed_input = f"traced-seed:{config.seed}"

    def render_fig5_artifact(results) -> str:
        config._say("tracing Fig. 5 episodes ...")
        series = fig5_series(seed=config.seed)
        drops = {sid: speed_drop(s) for sid, s in series.items()}
        return "\n".join(
            ["## Fig. 5 — approach speed drops [m/s]", "", render_fig5_summary(drops)]
        )

    artifacts.append(
        ReportArtifact(
            "fig5",
            "Fig. 5 — approach speed drops [m/s]",
            (),
            render_fig5_artifact,
            extra_inputs=(seed_input,),
        )
    )

    def render_fig6_artifact(results) -> str:
        config._say("tracing the Fig. 6 episode ...")
        series = fig6_series(seed=config.seed)
        return "\n".join(
            ["## Fig. 6 — RD-attack trace", "", render_fig6_summary(series.result)]
        )

    artifacts.append(
        ReportArtifact(
            "fig6",
            "Fig. 6 — RD-attack trace",
            (),
            render_fig6_artifact,
            extra_inputs=(seed_input,),
        )
    )

    # ---- Table VI (one arm per intervention configuration) --------------
    spec = CampaignSpec(repetitions=config.repetitions, seed=config.seed)
    table6_arms = [
        CampaignArm(name=f"table6:{cfg.label()}", campaign=spec, interventions=cfg)
        for cfg in TABLE6_CONFIGS
    ]
    if config.include_ml:
        from repro.ml import TrainerConfig

        # Key the ML campaign by its trainer configuration so a cache hit
        # short-circuits *before* weights are loaded or trained at all.
        table6_arms.append(
            CampaignArm(
                name="table6:ml",
                campaign=spec,
                interventions=InterventionConfig(ml=True, name="ml"),
                ml_token=f"trainer:{TrainerConfig()!r}",
            )
        )

    def render_table6_artifact(results) -> str:
        pairs = [
            (cfg.label(), results[f"table6:{cfg.label()}"]) for cfg in TABLE6_CONFIGS
        ]
        if config.include_ml:
            pairs.append(("ml", results["table6:ml"]))
        return _fenced(render_table6(table6_rows(pairs)))

    artifacts.append(
        ReportArtifact(
            "table6",
            "Table VI: Fault injection with/without safety interventions",
            tuple(table6_arms),
            render_table6_artifact,
        )
    )

    # ---- Table VII (one arm per reaction time) --------------------------
    table7_arms = tuple(
        CampaignArm(
            name=f"table7:rt={rt:g}",
            campaign=spec,
            interventions=InterventionConfig(driver=True, driver_reaction_time=rt),
        )
        for rt in config.reaction_times
    )

    def render_table7_artifact(results) -> str:
        sweeps = {
            rt: results[f"table7:rt={rt:g}"] for rt in config.reaction_times
        }
        return _fenced(render_table7(table7_reaction_sweep(sweeps)))

    artifacts.append(
        ReportArtifact(
            "table7",
            "Table VII: Prevention rate vs driver reaction time",
            table7_arms,
            render_table7_artifact,
        )
    )

    # ---- Table VIII (one arm per friction condition) --------------------
    cfg8 = InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.COMPROMISED
    )
    table8_arms = tuple(
        CampaignArm(
            name=f"table8:{label}",
            campaign=CampaignSpec(
                fault_types=[FaultType.RELATIVE_DISTANCE, FaultType.DESIRED_CURVATURE],
                repetitions=config.repetitions,
                seed=config.seed,
                friction=condition,
            ),
            interventions=cfg8,
        )
        for label, condition in FRICTION_CONDITIONS.items()
    )

    def render_table8_artifact(results) -> str:
        sweeps = {
            label: results[f"table8:{label}"] for label in FRICTION_CONDITIONS
        }
        return _fenced(render_table8(table8_friction_sweep(sweeps)))

    artifacts.append(
        ReportArtifact(
            "table8",
            "Table VIII: Hazard prevention rate vs road friction",
            table8_arms,
            render_table8_artifact,
        )
    )

    # ---- extra scenario-family sweeps (registry workloads) --------------
    for family_id in config.extra_families:
        artifacts.append(build_family_artifact(config, family_id))
    return artifacts


def build_family_artifact(config: ReportConfig, family_id: str) -> ReportArtifact:
    """A sweep artifact for one registered scenario family.

    One campaign arm per point of the family's declared ``report_axes``
    sweep (a single default-parameter arm when the family declares no
    sweep), each named ``<family>:<point>`` so incremental placeholders
    and ``report-status`` label the exact sweep point they await.  The
    campaign runs the paper's strongest non-ML intervention stack
    (driver + safety check + compromised AEB) under the relative-distance
    attack, over the family's default initial gaps.

    Raises:
        UnknownScenarioError: ``family_id`` names no registered family.
    """
    family = get_family(family_id)
    interventions = InterventionConfig(
        driver=True, safety_check=True, aeb=AebsConfig.COMPROMISED
    )
    points: List[tuple] = [()]
    if family.report_axes:
        names = [name for name, _ in family.report_axes]
        points = [
            tuple(zip(names, combo))
            for combo in itertools.product(
                *(values for _, values in family.report_axes)
            )
        ]
    labelled_arms = []
    for point in points:
        label = param_token(point) if point else "default"
        labelled_arms.append(
            (
                label,
                CampaignArm(
                    name=f"{family_id}:{label}",
                    campaign=CampaignSpec(
                        fault_types=(FaultType.RELATIVE_DISTANCE,),
                        scenario_ids=(family_id,),
                        initial_gaps=family.default_initial_gaps,
                        repetitions=config.repetitions,
                        seed=config.seed,
                        param_axes=tuple(
                            (name, (value,)) for name, value in point
                        ),
                    ),
                    interventions=interventions,
                ),
            )
        )

    def render_family_artifact(results) -> str:
        pairs = [
            (label, results[arm.name]) for label, arm in labelled_arms
        ]
        return _fenced(render_family_sweep(family_id, family_sweep_rows(pairs)))

    return ReportArtifact(
        f"family-{family_id}",
        f"Scenario family sweep: {family_id} — {family.title}",
        tuple(arm for _, arm in labelled_arms),
        render_family_artifact,
    )


def generate_report(
    config: ReportConfig = ReportConfig(),
    incremental: bool = False,
    manifest_path: Optional[str] = None,
) -> str:
    """Render the report markdown (blocking by default).

    Args:
        config: grid scale and persistence locations.
        incremental: render only artifacts whose campaign inputs are
            already complete and emit placeholders for the rest, instead
            of blocking on every campaign.
        manifest_path: freshness sidecar path; when given, artifacts whose
            input digest set is unchanged since the last run are reused
            from the manifest without re-rendering, and newly rendered
            bodies are recorded for the next run.

    Raises:
        ReportError: (blocking mode only) a campaign arm or renderer
            failed; the message names the arm and its campaign digest.
    """
    engine = IncrementalReportEngine(config, manifest_path=manifest_path)
    return engine.run(incremental=incremental).text
