"""Result analysis: the paper's tables and figures.

* :mod:`repro.analysis.render` — plain-text table and sparkline rendering.
* :mod:`repro.analysis.tables` — generators for Tables IV, V, VI, VII and
  VIII from campaign results.
* :mod:`repro.analysis.figures` — time-series extraction for Figs. 5 and 6
  (ASCII plots + CSV rows).
"""

from repro.analysis.render import ascii_plot, format_table
from repro.analysis.tables import (
    Table4Row,
    Table6Row,
    table4_driving_performance,
    table5_lane_distance,
    table6_row,
    table7_reaction_sweep,
    table8_friction_sweep,
)
from repro.analysis.figures import fig5_series, fig6_series

__all__ = [
    "ascii_plot",
    "format_table",
    "Table4Row",
    "Table6Row",
    "table4_driving_performance",
    "table5_lane_distance",
    "table6_row",
    "table7_reaction_sweep",
    "table8_friction_sweep",
    "fig5_series",
    "fig6_series",
]
