"""Result analysis: the paper's tables and figures.

* :mod:`repro.analysis.render` — plain-text table and sparkline rendering.
* :mod:`repro.analysis.tables` — generators for Tables IV, V, VI, VII and
  VIII from campaign results.
* :mod:`repro.analysis.figures` — time-series extraction for Figs. 5 and 6
  (ASCII plots + CSV rows).
* :mod:`repro.analysis.incremental` — the artifact DAG and the engine that
  resolves it against the campaign cache (incremental reports, staleness
  tracking, the ``report.manifest.json`` sidecar).
* :mod:`repro.analysis.report` — the paper's report layout declared as
  that DAG, plus the blocking ``generate_report`` entry point.
"""

from repro.analysis.render import ascii_plot, format_placeholder, format_table
from repro.analysis.tables import (
    Table4Row,
    Table6Row,
    table4_driving_performance,
    table5_lane_distance,
    table6_row,
    table6_rows,
    table7_reaction_sweep,
    table8_friction_sweep,
)
from repro.analysis.figures import (
    fig5_series,
    fig6_series,
    render_fig5_summary,
    render_fig6_summary,
)
from repro.analysis.incremental import (
    IncrementalReportEngine,
    ReportArtifact,
    ReportError,
)

__all__ = [
    "ascii_plot",
    "format_placeholder",
    "format_table",
    "Table4Row",
    "Table6Row",
    "table4_driving_performance",
    "table5_lane_distance",
    "table6_row",
    "table6_rows",
    "table7_reaction_sweep",
    "table8_friction_sweep",
    "fig5_series",
    "fig6_series",
    "render_fig5_summary",
    "render_fig6_summary",
    "IncrementalReportEngine",
    "ReportArtifact",
    "ReportError",
]
