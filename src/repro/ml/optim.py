"""Adam optimiser over a flat list of parameter arrays."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class Adam:
    """Standard Adam with bias correction and gradient clipping.

    Args:
        params: the arrays to update (shared references from the model).
        lr: learning rate.
        beta1, beta2: moment decay rates.
        eps: numerical floor.
        clip: global-norm gradient clip (None disables).
    """

    def __init__(
        self,
        params: Sequence[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        clip: float | None = 5.0,
    ) -> None:
        if lr <= 0.0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.clip = clip
        self._m: List[np.ndarray] = [np.zeros_like(p) for p in self.params]
        self._v: List[np.ndarray] = [np.zeros_like(p) for p in self.params]
        self._t = 0

    def step(self, grads: Sequence[np.ndarray]) -> None:
        """Apply one update from ``grads`` (aligned with ``params``)."""
        if len(grads) != len(self.params):
            raise ValueError("grads/params length mismatch")
        if self.clip is not None:
            total = np.sqrt(sum(float(np.sum(g * g)) for g in grads))
            if total > self.clip:
                scale = self.clip / (total + 1e-12)
                grads = [g * scale for g in grads]
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
