"""Training data: fault-free traces and 20-cycle windows.

The paper trains "on fault-free data spanning 20 control cycles (0.2
seconds at a 100 Hz control frequency)".  :func:`collect_fault_free_traces`
runs attack-free episodes across the scenario grid recording, per step, the
model inputs (ego speed, RD, lane-line positions, previous gas/steering)
and the OpenPilot outputs; :class:`TraceDataset` slices them into windows
and normalises features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.campaign import EpisodeSpec
from repro.attacks.fi import FaultType
from repro.core.platform import SimulationPlatform
from repro.safety.arbitration import InterventionConfig

#: Per-step feature vector layout (must match the platform's _ml_features).
FEATURE_NAMES = (
    "ego_speed",
    "relative_distance",
    "lane_left",
    "lane_right",
    "prev_accel",
    "prev_steer",
)

#: The paper's window length: 20 control cycles.
WINDOW = 20


@dataclass
class Trace:
    """One episode's recorded stream.

    Attributes:
        features: ``(steps, len(FEATURE_NAMES))``.
        targets: ``(steps, 2)`` — the OpenPilot (accel, steer) outputs.
    """

    features: np.ndarray
    targets: np.ndarray


def collect_fault_free_traces(
    scenario_ids: Sequence[str] = ("S1", "S2", "S3", "S5", "S6"),
    initial_gaps: Sequence[float] = (60.0, 230.0),
    seeds: Sequence[int] = (11, 12),
    max_steps: int = 6000,
) -> List[Trace]:
    """Run fault-free episodes and record (features, OP outputs) streams.

    S4 is excluded by default: it ends in a collision half the time, and
    the baseline should learn *nominal* behaviour.
    """
    traces: List[Trace] = []
    for sid in scenario_ids:
        for gap in initial_gaps:
            for seed in seeds:
                spec = EpisodeSpec(
                    scenario_id=sid,
                    initial_gap=gap,
                    fault_type=FaultType.NONE,
                    repetition=0,
                    seed=seed,
                )
                platform = SimulationPlatform(
                    spec, InterventionConfig(), max_steps=max_steps
                )
                feats: List[List[float]] = []
                targets: List[List[float]] = []
                recorder = _StepRecorder(platform, feats, targets)
                recorder.run()
                traces.append(
                    Trace(
                        features=np.asarray(feats, dtype=np.float64),
                        targets=np.asarray(targets, dtype=np.float64),
                    )
                )
    return traces


class _StepRecorder:
    """Runs a platform while logging features and ADAS outputs per step."""

    def __init__(self, platform: SimulationPlatform, feats, targets) -> None:
        self.platform = platform
        self.feats = feats
        self.targets = targets

    def run(self) -> None:
        platform = self.platform
        from repro.core.metrics import EpisodeResult

        result = EpisodeResult()
        for step in range(platform.max_steps):
            self.feats.append(platform._ml_features())
            aebs_state = platform._step(step, result)
            cmd = platform.controls.last_command
            self.targets.append([cmd.accel, cmd.steer])
            if platform.hazards.update(platform.world) is not None:
                break


class TraceDataset:
    """Windows + normalisation over a set of traces.

    Args:
        traces: recorded episodes.
        window: window length in control cycles (paper: 20).
        stride: sampling stride between window starts.
    """

    def __init__(
        self, traces: Sequence[Trace], window: int = WINDOW, stride: int = 5
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.window = window
        xs: List[np.ndarray] = []
        ys: List[np.ndarray] = []
        for trace in traces:
            steps = trace.features.shape[0]
            for start in range(0, steps - window, stride):
                xs.append(trace.features[start : start + window])
                ys.append(trace.targets[start + window - 1])
        if not xs:
            raise ValueError("no windows could be extracted")
        self.x = np.stack(xs)
        self.y = np.stack(ys)
        self.feature_mean = self.x.reshape(-1, self.x.shape[-1]).mean(axis=0)
        self.feature_std = self.x.reshape(-1, self.x.shape[-1]).std(axis=0) + 1e-6
        self.target_mean = self.y.mean(axis=0)
        self.target_std = self.y.std(axis=0) + 1e-6

    def __len__(self) -> int:
        return self.x.shape[0]

    def normalise_x(self, x: np.ndarray) -> np.ndarray:
        """Apply the feature scaler."""
        return (x - self.feature_mean) / self.feature_std

    def normalise_y(self, y: np.ndarray) -> np.ndarray:
        """Apply the target scaler."""
        return (y - self.target_mean) / self.target_std

    def denormalise_y(self, y: np.ndarray) -> np.ndarray:
        """Invert the target scaler."""
        return y * self.target_std + self.target_mean

    def batches(
        self, batch_size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Yield shuffled normalised mini-batches."""
        order = rng.permutation(len(self))
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.normalise_x(self.x[idx]), self.normalise_y(self.y[idx])

    def scaler_arrays(self) -> dict:
        """Scaler state for persistence."""
        return {
            "feature_mean": self.feature_mean,
            "feature_std": self.feature_std,
            "target_mean": self.target_mean,
            "target_std": self.target_std,
        }
