"""Training loop for the LSTM baseline, with on-disk caching.

The paper explored two-layer configurations 256-128, 256-64, 256-32,
128-64, 128-32 and 64-32 and selected **128-64**; adding a third layer did
not help.  ``TrainerConfig.hidden_sizes`` defaults accordingly and
:data:`EXPLORED_CONFIGS` records the full grid for the ablation bench.

Training a NumPy LSTM is the slowest single step of the whole pipeline, so
:func:`load_or_train_cached` persists the trained weights + scaler keyed by
a config hash under ``.ml_cache/``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.ml.dataset import FEATURE_NAMES, TraceDataset, collect_fault_free_traces
from repro.ml.lstm import LstmNetwork
from repro.ml.optim import Adam

#: The hidden-size grid the paper explored (two-layer LSTMs).
EXPLORED_CONFIGS: Tuple[Tuple[int, int], ...] = (
    (256, 128),
    (256, 64),
    (256, 32),
    (128, 64),
    (128, 32),
    (64, 32),
)


@dataclass(frozen=True)
class TrainerConfig:
    """Training hyper-parameters.

    Attributes:
        hidden_sizes: stacked LSTM widths (paper's best: 128-64).
        epochs: passes over the window set.
        batch_size: mini-batch size.
        lr: Adam learning rate.
        stride: window sampling stride (larger = fewer windows = faster).
        seed: init/shuffle seed.
    """

    hidden_sizes: Tuple[int, ...] = (128, 64)
    epochs: int = 4
    batch_size: int = 64
    lr: float = 2e-3
    stride: int = 8
    seed: int = 7


@dataclass
class TrainedBaseline:
    """A trained model plus its feature/target scalers."""

    network: LstmNetwork
    feature_mean: np.ndarray
    feature_std: np.ndarray
    target_mean: np.ndarray
    target_std: np.ndarray
    final_loss: float = float("nan")

    def predict(self, window: np.ndarray) -> np.ndarray:
        """Denormalised (accel, steer) prediction from a raw window."""
        x = (window - self.feature_mean) / self.feature_std
        y = self.network.predict_one(x)
        return y * self.target_std + self.target_mean

    def save(self, path: str) -> None:
        """Persist weights + scalers."""
        self.network.save(path + ".weights.npz")
        np.savez(
            path + ".scaler.npz",
            feature_mean=self.feature_mean,
            feature_std=self.feature_std,
            target_mean=self.target_mean,
            target_std=self.target_std,
            final_loss=np.array([self.final_loss]),
        )

    @classmethod
    def load(cls, path: str) -> "TrainedBaseline":
        """Load a baseline persisted with :meth:`save`."""
        network = LstmNetwork.load(path + ".weights.npz")
        data = np.load(path + ".scaler.npz")
        return cls(
            network=network,
            feature_mean=data["feature_mean"],
            feature_std=data["feature_std"],
            target_mean=data["target_mean"],
            target_std=data["target_std"],
            final_loss=float(data["final_loss"][0]),
        )


def train_baseline(
    config: TrainerConfig = TrainerConfig(),
    dataset: Optional[TraceDataset] = None,
    log: Optional[callable] = None,
) -> TrainedBaseline:
    """Collect traces (if needed), train, and return the baseline."""
    if dataset is None:
        traces = collect_fault_free_traces()
        dataset = TraceDataset(traces, stride=config.stride)
    network = LstmNetwork(
        input_size=len(FEATURE_NAMES),
        hidden_sizes=config.hidden_sizes,
        output_size=2,
        seed=config.seed,
    )
    optimiser = Adam(network.params(), lr=config.lr)
    rng = np.random.default_rng(config.seed)
    loss = float("nan")
    for epoch in range(config.epochs):
        losses: List[float] = []
        for x, y in dataset.batches(config.batch_size, rng):
            loss, grads = network.loss_and_grads(x, y)
            optimiser.step(grads)
            losses.append(loss)
        loss = float(np.mean(losses))
        if log is not None:
            log(f"epoch {epoch + 1}/{config.epochs}: loss={loss:.5f}")
    return TrainedBaseline(
        network=network,
        feature_mean=dataset.feature_mean,
        feature_std=dataset.feature_std,
        target_mean=dataset.target_mean,
        target_std=dataset.target_std,
        final_loss=loss,
    )


def _config_key(config: TrainerConfig) -> str:
    text = repr(config)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def load_or_train_cached(
    config: TrainerConfig = TrainerConfig(),
    cache_dir: str = ".ml_cache",
    log: Optional[callable] = None,
) -> TrainedBaseline:
    """Return a trained baseline, reusing an on-disk cache when present."""
    os.makedirs(cache_dir, exist_ok=True)
    path = os.path.join(cache_dir, f"baseline-{_config_key(config)}")
    if os.path.exists(path + ".weights.npz"):
        return TrainedBaseline.load(path)
    baseline = train_baseline(config, log=log)
    baseline.save(path)
    return baseline
