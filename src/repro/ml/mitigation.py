"""Algorithm 1 — CUSUM-activated ML hazard mitigation.

Per control cycle the trained LSTM predicts the expected (gas, steering)
from *fault-free* inputs (the paper assumes an independent/redundant
sensor); the discrepancy against the OpenPilot output feeds a CUSUM
accumulator:

    S(t+1) = max(0, S(t) + delta - b(t))         # line 9

Recovery mode activates when ``S > tau`` (line 10) and the ML output
drives the actuators until the discrepancy falls back within ``b`` (lines
12-16), at which point S resets.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.adas.controlsd import AdasCommand
from repro.ml.dataset import FEATURE_NAMES, WINDOW
from repro.ml.trainer import TrainedBaseline
from repro.utils.mathx import clamp


@dataclass(frozen=True)
class MitigationParams:
    """Algorithm 1 constants.

    Attributes:
        tau: CUSUM activation threshold.
        bias: the ``b(t) > 0`` drain keeping S at zero nominally.
        accel_weight: weight of the accel discrepancy in delta.
        steer_weight: weight of the steering discrepancy in delta
            (steering lives on a much smaller numeric scale).
        max_accel / min_accel: output clamps [m/s^2].
        max_steer: output clamp [rad].
    """

    tau: float = 3.0
    bias: float = 0.35
    accel_weight: float = 1.0
    steer_weight: float = 8.0
    max_accel: float = 2.0
    min_accel: float = -6.0
    max_steer: float = 0.45


class MitigationController:
    """The platform-facing ML layer (implements ``MlController``).

    Args:
        baseline: a trained LSTM baseline (weights + scalers).
        params: Algorithm 1 constants.
    """

    def __init__(
        self, baseline: TrainedBaseline, params: MitigationParams | None = None
    ) -> None:
        self.baseline = baseline
        self.params = params or MitigationParams()
        self.reset()

    def reset(self) -> None:
        """Clear the window buffer and the CUSUM state."""
        self._window: List[List[float]] = []
        self._s = 0.0
        self.recovery = False
        self.activations = 0

    @property
    def cusum(self) -> float:
        """Current accumulator value ``S(t)``."""
        return self._s

    def step(
        self, features: List[float], y_op: AdasCommand, dt: float
    ) -> Tuple[AdasCommand, bool]:
        """One control cycle of Algorithm 1.

        Args:
            features: fault-free per-step features (see FEATURE_NAMES).
            y_op: the OpenPilot output this cycle.
            dt: control period [s] (unused; kept for interface symmetry).

        Returns:
            ``(ml_command, recovery_mode)``.
        """
        if len(features) != len(FEATURE_NAMES):
            raise ValueError(
                f"expected {len(FEATURE_NAMES)} features, got {len(features)}"
            )
        p = self.params
        self._window.append(list(features))
        if len(self._window) > WINDOW:
            self._window.pop(0)
        if len(self._window) < WINDOW:
            # Not enough history yet: mirror the OP output, no detection.
            return y_op, False

        x = np.asarray(self._window, dtype=np.float64)
        accel_ml, steer_ml = self.baseline.predict(x)
        accel_ml = clamp(float(accel_ml), p.min_accel, p.max_accel)
        steer_ml = clamp(float(steer_ml), -p.max_steer, p.max_steer)
        ml_cmd = AdasCommand(accel=accel_ml, steer=steer_ml)

        delta = p.accel_weight * abs(accel_ml - y_op.accel) + p.steer_weight * abs(
            steer_ml - y_op.steer
        )
        self._s = max(0.0, self._s + delta - p.bias)

        if not self.recovery and self._s > p.tau:
            self.recovery = True
            self.activations += 1
        elif self.recovery and delta <= p.bias:
            self.recovery = False
            self._s = 0.0  # line 16: reset on exit

        return ml_cmd, self.recovery


class MitigationFactory:
    """Picklable per-episode :class:`MitigationController` factory.

    ``run_campaign`` takes a *factory* rather than a controller so CUSUM /
    window state can never leak across episodes.  A lambda closing over the
    baseline works serially but breaks the two properties large campaigns
    need: it cannot cross the process boundary (forcing the parallel
    executor's in-process fallback) and it has no stable identity for the
    result cache.  This class fixes both — it pickles with the trained
    weights inside, and exposes a ``digest_token`` that fingerprints those
    weights, so ML campaigns parallelise and cache exactly like the other
    intervention arms.

    Args:
        baseline: trained LSTM baseline (weights + scalers).
        params: Algorithm 1 constants (default :class:`MitigationParams`).
        digest_token: explicit cache-key component; defaults to a SHA-256
            over the network weights, scalers and params, so retrained
            weights invalidate cached campaigns automatically.
    """

    def __init__(
        self,
        baseline: TrainedBaseline,
        params: Optional[MitigationParams] = None,
        digest_token: Optional[str] = None,
    ) -> None:
        self.baseline = baseline
        self.params = params or MitigationParams()
        self.digest_token = (
            digest_token if digest_token is not None else self._weights_token()
        )

    def _weights_token(self) -> str:
        digest = hashlib.sha256()
        arrays = list(self.baseline.network.params()) + [
            self.baseline.feature_mean,
            self.baseline.feature_std,
            self.baseline.target_mean,
            self.baseline.target_std,
        ]
        for array in arrays:
            digest.update(np.ascontiguousarray(array, dtype=np.float64).tobytes())
        digest.update(repr(self.params).encode("utf-8"))
        return f"lstm:{digest.hexdigest()}"

    def __call__(self) -> MitigationController:
        """Build a fresh controller (fresh CUSUM state) for one episode."""
        return MitigationController(self.baseline, self.params)
