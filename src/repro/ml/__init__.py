"""ML-based mitigation baseline (the paper's Section IV-D and Algorithm 1).

A two-layer LSTM (best configuration 128-64, as in the paper) trained on
fault-free traces predicts the expected gas/steering outputs from the ego
speed, relative distance, lane-line positions and 20-cycle actuation
history.  A CUSUM detector on the discrepancy between the model's
predictions and the OpenPilot outputs activates recovery mode, during
which the model's outputs drive the actuators.

Everything is NumPy — no deep-learning framework is available offline, and
none is needed at this scale.

* :mod:`repro.ml.lstm` — LSTM layers, forward + BPTT.
* :mod:`repro.ml.optim` — Adam.
* :mod:`repro.ml.dataset` — trace collection and 20-cycle windowing.
* :mod:`repro.ml.trainer` — training loop and the hidden-size grid the
  paper explored (256-128 ... 64-32).
* :mod:`repro.ml.mitigation` — Algorithm 1 (CUSUM activation, recovery).
"""

from repro.ml.lstm import LstmNetwork
from repro.ml.dataset import TraceDataset, collect_fault_free_traces
from repro.ml.trainer import TrainerConfig, train_baseline, load_or_train_cached
from repro.ml.mitigation import (
    MitigationController,
    MitigationFactory,
    MitigationParams,
)

__all__ = [
    "LstmNetwork",
    "TraceDataset",
    "collect_fault_free_traces",
    "TrainerConfig",
    "train_baseline",
    "load_or_train_cached",
    "MitigationController",
    "MitigationFactory",
    "MitigationParams",
]
