"""NumPy LSTM: stacked layers, forward pass, truncated BPTT.

Implements exactly what the baseline needs — a stacked LSTM encoder over a
fixed 20-step window with a linear regression head on the last hidden
state — with gradients derived by hand.  Batched matrix work is the only
place NumPy is worth its overhead in this project.

Shapes: inputs are ``(batch, time, features)``; the head output is
``(batch, outputs)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class LstmLayer:
    """One LSTM layer with standard gate order (i, f, g, o)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        if input_size < 1 or hidden_size < 1:
            raise ValueError("sizes must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        scale = 1.0 / np.sqrt(input_size + hidden_size)
        self.w_x = rng.uniform(-scale, scale, (input_size, 4 * hidden_size))
        self.w_h = rng.uniform(-scale, scale, (hidden_size, 4 * hidden_size))
        self.b = np.zeros(4 * hidden_size)
        # Forget-gate bias of 1.0: the classic trick for gradient flow.
        self.b[hidden_size : 2 * hidden_size] = 1.0

    def params(self) -> List[np.ndarray]:
        """Trainable arrays (shared references)."""
        return [self.w_x, self.w_h, self.b]

    def forward(
        self, x: np.ndarray
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Run the layer over a window.

        Args:
            x: ``(batch, time, input_size)``.

        Returns:
            ``(hidden_states, cache)`` where hidden_states is
            ``(batch, time, hidden_size)`` and cache holds what backward
            needs.
        """
        batch, steps, _ = x.shape
        h = np.zeros((batch, self.hidden_size))
        c = np.zeros((batch, self.hidden_size))
        hs = np.zeros((batch, steps, self.hidden_size))
        gates_i = np.zeros((batch, steps, self.hidden_size))
        gates_f = np.zeros((batch, steps, self.hidden_size))
        gates_g = np.zeros((batch, steps, self.hidden_size))
        gates_o = np.zeros((batch, steps, self.hidden_size))
        cells = np.zeros((batch, steps, self.hidden_size))
        prev_cells = np.zeros((batch, steps, self.hidden_size))
        prev_hs = np.zeros((batch, steps, self.hidden_size))
        H = self.hidden_size
        for t in range(steps):
            prev_hs[:, t] = h
            prev_cells[:, t] = c
            z = x[:, t] @ self.w_x + h @ self.w_h + self.b
            i = _sigmoid(z[:, :H])
            f = _sigmoid(z[:, H : 2 * H])
            g = np.tanh(z[:, 2 * H : 3 * H])
            o = _sigmoid(z[:, 3 * H :])
            c = f * c + i * g
            h = o * np.tanh(c)
            hs[:, t] = h
            gates_i[:, t] = i
            gates_f[:, t] = f
            gates_g[:, t] = g
            gates_o[:, t] = o
            cells[:, t] = c
        cache = {
            "x": x,
            "hs": hs,
            "i": gates_i,
            "f": gates_f,
            "g": gates_g,
            "o": gates_o,
            "c": cells,
            "c_prev": prev_cells,
            "h_prev": prev_hs,
        }
        return hs, cache

    def backward(
        self, d_hs: np.ndarray, cache: Dict[str, np.ndarray]
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Backprop through time.

        Args:
            d_hs: gradient w.r.t. every hidden state ``(batch, time, H)``.
            cache: the forward cache.

        Returns:
            ``(d_x, grads)`` — gradient w.r.t. the inputs and the
            parameter gradients aligned with :meth:`params`.
        """
        x = cache["x"]
        batch, steps, _ = x.shape
        H = self.hidden_size
        d_wx = np.zeros_like(self.w_x)
        d_wh = np.zeros_like(self.w_h)
        d_b = np.zeros_like(self.b)
        d_x = np.zeros_like(x)
        d_h_next = np.zeros((batch, H))
        d_c_next = np.zeros((batch, H))
        for t in reversed(range(steps)):
            i = cache["i"][:, t]
            f = cache["f"][:, t]
            g = cache["g"][:, t]
            o = cache["o"][:, t]
            c = cache["c"][:, t]
            c_prev = cache["c_prev"][:, t]
            h_prev = cache["h_prev"][:, t]
            tanh_c = np.tanh(c)
            d_h = d_hs[:, t] + d_h_next
            d_o = d_h * tanh_c * o * (1 - o)
            d_c = d_h * o * (1 - tanh_c * tanh_c) + d_c_next
            d_i = d_c * g * i * (1 - i)
            d_f = d_c * c_prev * f * (1 - f)
            d_g = d_c * i * (1 - g * g)
            d_z = np.concatenate([d_i, d_f, d_g, d_o], axis=1)
            d_wx += x[:, t].T @ d_z
            d_wh += h_prev.T @ d_z
            d_b += d_z.sum(axis=0)
            d_x[:, t] = d_z @ self.w_x.T
            d_h_next = d_z @ self.w_h.T
            d_c_next = d_c * f
        return d_x, [d_wx, d_wh, d_b]


class LstmNetwork:
    """Stacked LSTM with a linear head on the final hidden state.

    Args:
        input_size: per-step feature count.
        hidden_sizes: stacked layer widths, e.g. ``(128, 64)`` — the
            paper's best configuration.
        output_size: regression targets (gas, steering -> 2).
        seed: weight-init seed.
    """

    def __init__(
        self,
        input_size: int,
        hidden_sizes: Tuple[int, ...] = (128, 64),
        output_size: int = 2,
        seed: int = 0,
    ) -> None:
        if not hidden_sizes:
            raise ValueError("need at least one hidden layer")
        rng = np.random.default_rng(seed)
        self.input_size = input_size
        self.hidden_sizes = tuple(hidden_sizes)
        self.output_size = output_size
        self.layers: List[LstmLayer] = []
        prev = input_size
        for width in hidden_sizes:
            self.layers.append(LstmLayer(prev, width, rng))
            prev = width
        scale = 1.0 / np.sqrt(prev)
        self.w_out = rng.uniform(-scale, scale, (prev, output_size))
        self.b_out = np.zeros(output_size)

    def params(self) -> List[np.ndarray]:
        """All trainable arrays (shared references)."""
        out: List[np.ndarray] = []
        for layer in self.layers:
            out.extend(layer.params())
        out.extend([self.w_out, self.b_out])
        return out

    def forward(
        self, x: np.ndarray, keep_cache: bool = False
    ) -> np.ndarray | Tuple[np.ndarray, list]:
        """Predict from a window batch ``(batch, time, input_size)``."""
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ValueError(f"bad input shape {x.shape}")
        h = x
        caches = []
        for layer in self.layers:
            h, cache = layer.forward(h)
            caches.append(cache)
        y = h[:, -1] @ self.w_out + self.b_out
        if keep_cache:
            return y, caches + [h]
        return y

    def loss_and_grads(
        self, x: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, List[np.ndarray]]:
        """MSE loss and gradients for one batch."""
        y, state = self.forward(x, keep_cache=True)
        caches, last_h = state[:-1], state[-1]
        batch = x.shape[0]
        diff = y - targets
        loss = float(np.mean(diff * diff))
        d_y = 2.0 * diff / (batch * self.output_size)
        d_wout = last_h[:, -1].T @ d_y
        d_bout = d_y.sum(axis=0)
        d_hs = np.zeros_like(last_h)
        d_hs[:, -1] = d_y @ self.w_out.T
        grads_rev: List[np.ndarray] = []
        d = d_hs
        for layer, cache in zip(reversed(self.layers), reversed(caches)):
            d, layer_grads = layer.backward(d, cache)
            grads_rev = layer_grads + grads_rev
        return loss, grads_rev + [d_wout, d_bout]

    def predict_one(self, window: np.ndarray) -> np.ndarray:
        """Predict from a single ``(time, input_size)`` window."""
        return self.forward(window[None, :, :])[0]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, path: str) -> None:
        """Save weights + architecture to an .npz file."""
        arrays = {f"p{i}": p for i, p in enumerate(self.params())}
        np.savez(
            path,
            meta=np.array(
                [self.input_size, self.output_size, len(self.hidden_sizes)]
                + list(self.hidden_sizes)
            ),
            **arrays,
        )

    @classmethod
    def load(cls, path: str) -> "LstmNetwork":
        """Load a network saved with :meth:`save`."""
        data = np.load(path)
        meta = data["meta"].astype(int)
        input_size, output_size, n_layers = meta[0], meta[1], meta[2]
        hidden = tuple(meta[3 : 3 + n_layers])
        net = cls(input_size, hidden, output_size)
        for i, p in enumerate(net.params()):
            loaded = data[f"p{i}"]
            if loaded.shape != p.shape:
                raise ValueError(f"weight shape mismatch at p{i}")
            p[...] = loaded
        return net
