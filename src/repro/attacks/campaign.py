"""Campaign enumeration and sharding.

The paper's fault-injection grid (Section IV-B): *"Each configuration is
repeated 10 times, resulting in 360 simulations (3 fault types x 2 initial
positions x 6 driving scenarios)."*  :func:`enumerate_campaign` produces
exactly that grid (or the fault-free variant for Tables IV/V), with one
deterministic seed per episode derived from the campaign seed.

Because episode seeds are order-independent, the enumerated list can be
cut into contiguous slices and the slices run on different machines: a
:class:`ShardSpec` names one such slice (``repro campaign --shard 2/4``),
and the union of all shards is exactly the unsharded enumeration — the
invariant ``repro merge`` and the sharding test suite rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, TypeVar, Union

from repro.attacks.fi import FaultType
from repro.sim.scenarios import INITIAL_GAPS, SCENARIO_IDS
from repro.sim.weather import FrictionCondition
from repro.utils.rng import derive_seed

#: The three attacked fault types of Table III.
ATTACK_FAULT_TYPES = (
    FaultType.RELATIVE_DISTANCE,
    FaultType.DESIRED_CURVATURE,
    FaultType.MIXED,
)

_T = TypeVar("_T")


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous slice of a campaign enumeration: shard ``index`` of
    ``count``, written ``index/count`` on the command line.

    Shards are 1-based (``1/4`` .. ``4/4``) and partition the episode list:
    every episode lands in exactly one shard, shards preserve enumeration
    order, and shard sizes differ by at most one episode.  Slicing is a pure
    function of ``(index, count, len(items))``, so every worker machine
    computes the same partition from the same :class:`CampaignSpec` with no
    coordination.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise ValueError(
                f"shard index must be in 1..{self.count} (shards are "
                f"1-based), got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``"I/N"`` (e.g. ``"2/4"``).

        Raises:
            ValueError: on malformed text or an out-of-range index.
        """
        parts = text.split("/")
        if len(parts) != 2:
            raise ValueError(f"expected shard as 'I/N' (e.g. '2/4'), got {text!r}")
        try:
            index, count = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(
                f"expected shard as 'I/N' with integer I and N, got {text!r}"
            ) from None
        return cls(index=index, count=count)

    def bounds(self, total: int) -> Tuple[int, int]:
        """Half-open ``[lo, hi)`` index range of this shard over ``total`` items."""
        lo = (self.index - 1) * total // self.count
        hi = self.index * total // self.count
        return lo, hi

    def slice(self, items: Sequence[_T]) -> List[_T]:
        """This shard's contiguous slice of ``items``."""
        lo, hi = self.bounds(len(items))
        return list(items[lo:hi])

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


@dataclass(frozen=True)
class EpisodeSpec:
    """One simulation to run.

    Attributes:
        scenario_id: S1-S6.
        initial_gap: 60 or 230 m.
        fault_type: the injected fault (or ``FaultType.NONE``).
        repetition: repetition index within the grid cell.
        seed: fully-determined episode seed.
        friction: road condition (None = dry).
    """

    scenario_id: str
    initial_gap: float
    fault_type: FaultType
    repetition: int
    seed: int
    friction: Optional[FrictionCondition] = None

    def label(self) -> str:
        """Compact human-readable identifier."""
        mu = "" if self.friction is None else f"/mu={self.friction.mu}"
        return (
            f"{self.scenario_id}/gap={self.initial_gap:.0f}"
            f"/{self.fault_type.value}/rep={self.repetition}{mu}"
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A full experimental grid.

    Attributes:
        fault_types: fault types to sweep.
        scenario_ids: scenarios to sweep (default S1-S6).
        initial_gaps: initial bumper gaps to sweep (default 60, 230).
        repetitions: repetitions per grid cell (paper: 10).
        seed: campaign master seed.
        friction: road condition applied to every episode.
    """

    fault_types: Sequence[FaultType] = field(default_factory=lambda: ATTACK_FAULT_TYPES)
    scenario_ids: Sequence[str] = SCENARIO_IDS
    initial_gaps: Sequence[float] = INITIAL_GAPS
    repetitions: int = 10
    seed: int = 2025
    friction: Optional[FrictionCondition] = None

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {self.repetitions}")
        if not self.fault_types:
            raise ValueError("fault_types must not be empty (use FaultType.NONE "
                             "for a fault-free campaign)")
        if not self.scenario_ids:
            raise ValueError("scenario_ids must not be empty")
        if not self.initial_gaps:
            raise ValueError("initial_gaps must not be empty")
        if len(set(self.fault_types)) != len(self.fault_types):
            raise ValueError(
                f"duplicate fault_types {[f.value for f in self.fault_types]}: "
                "duplicates would run identical episodes twice and skew "
                "aggregated rates"
            )
        if len(set(self.scenario_ids)) != len(self.scenario_ids):
            raise ValueError(
                f"duplicate scenario_ids {list(self.scenario_ids)}: duplicates "
                "would run identical episodes twice and skew aggregated rates"
            )
        if len(set(self.initial_gaps)) != len(self.initial_gaps):
            raise ValueError(
                f"duplicate initial_gaps {list(self.initial_gaps)}: duplicates "
                "would run identical episodes twice and skew aggregated rates"
            )
        for sid in self.scenario_ids:
            if sid not in SCENARIO_IDS:
                raise ValueError(f"unknown scenario {sid!r}")
        for gap in self.initial_gaps:
            if gap <= 0.0:
                raise ValueError(
                    f"initial_gaps must be positive bumper gaps [m], got {gap}"
                )


def as_episode_list(
    campaign: Union["CampaignSpec", Sequence[EpisodeSpec]]
) -> List[EpisodeSpec]:
    """Normalise a spec-or-episode-list campaign argument to an episode list.

    Every layer that accepts campaigns (execution, digesting, the report
    pipeline) takes either a :class:`CampaignSpec` or a pre-enumerated
    (possibly sharded) episode sequence; this is the single place that
    flattens the union, so all of them agree on what a campaign *is*.
    """
    if isinstance(campaign, CampaignSpec):
        return enumerate_campaign(campaign)
    return list(campaign)


def enumerate_campaign(
    spec: CampaignSpec, shard: Optional[ShardSpec] = None
) -> List[EpisodeSpec]:
    """Expand a :class:`CampaignSpec` into its ordered episode list.

    Episode seeds are derived from ``(campaign seed, scenario, gap, fault,
    repetition)`` — independent of enumeration order and of which other
    grid cells exist, so intervention configurations can be compared on
    *identical* episodes.

    Args:
        spec: the grid to expand.
        shard: when given, return only that contiguous slice of the full
            enumeration (see :class:`ShardSpec`); the union of all shards
            of a campaign is exactly the unsharded enumeration.
    """
    episodes: List[EpisodeSpec] = []
    for fault in spec.fault_types:
        for gap in spec.initial_gaps:
            for sid in spec.scenario_ids:
                for rep in range(spec.repetitions):
                    seed = derive_seed(spec.seed, sid, f"{gap:.0f}", fault.value, rep)
                    episodes.append(
                        EpisodeSpec(
                            scenario_id=sid,
                            initial_gap=gap,
                            fault_type=fault,
                            repetition=rep,
                            seed=seed,
                            friction=spec.friction,
                        )
                    )
    if shard is not None:
        return shard.slice(episodes)
    return episodes
