"""Campaign enumeration and sharding.

The paper's fault-injection grid (Section IV-B): *"Each configuration is
repeated 10 times, resulting in 360 simulations (3 fault types x 2 initial
positions x 6 driving scenarios)."*  :func:`enumerate_campaign` produces
exactly that grid (or the fault-free variant for Tables IV/V), with one
deterministic seed per episode derived from the campaign seed.

Scenarios are resolved through the family registry
(:mod:`repro.sim.families`): ``scenario_ids`` may name any registered
family, and ``param_axes`` sweeps a family's declared parameters the same
way ``initial_gaps`` sweeps the gap — each sweep point becomes part of
the episode identity (seed, label, digest).  The paper grid (parameter-
free S1-S6) enumerates byte-identically to the pre-registry code.

Because episode seeds are order-independent, the enumerated list can be
cut into contiguous slices and the slices run on different machines: a
:class:`ShardSpec` names one such slice (``repro campaign --shard 2/4``),
and the union of all shards is exactly the unsharded enumeration — the
invariant ``repro merge`` and the sharding test suite rely on.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple, TypeVar, Union

from repro.attacks.fi import FaultType
from repro.sim.families import ParamItems, get_family, param_token
from repro.sim.scenarios import INITIAL_GAPS, SCENARIO_IDS
from repro.sim.weather import FrictionCondition
from repro.utils.rng import derive_seed

#: The three attacked fault types of Table III.
ATTACK_FAULT_TYPES = (
    FaultType.RELATIVE_DISTANCE,
    FaultType.DESIRED_CURVATURE,
    FaultType.MIXED,
)

_T = TypeVar("_T")


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous slice of a campaign enumeration: shard ``index`` of
    ``count``, written ``index/count`` on the command line.

    Shards are 1-based (``1/4`` .. ``4/4``) and partition the episode list:
    every episode lands in exactly one shard, shards preserve enumeration
    order, and shard sizes differ by at most one episode.  Slicing is a pure
    function of ``(index, count, len(items))``, so every worker machine
    computes the same partition from the same :class:`CampaignSpec` with no
    coordination.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise ValueError(
                f"shard index must be in 1..{self.count} (shards are "
                f"1-based), got {self.index}"
            )

    @classmethod
    def partition(cls, count: int) -> List["ShardSpec"]:
        """All ``count`` shards of a campaign, in shard-index order.

        The scheduler's plan phase uses this to decompose one campaign
        into its complete, non-overlapping shard set: concatenating the
        slices of ``partition(n)`` reproduces the unsharded enumeration
        exactly.
        """
        return [cls(index=index, count=count) for index in range(1, count + 1)]

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``"I/N"`` (e.g. ``"2/4"``).

        Raises:
            ValueError: on malformed text or an out-of-range index.
        """
        parts = text.split("/")
        if len(parts) != 2:
            raise ValueError(f"expected shard as 'I/N' (e.g. '2/4'), got {text!r}")
        try:
            index, count = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(
                f"expected shard as 'I/N' with integer I and N, got {text!r}"
            ) from None
        return cls(index=index, count=count)

    def bounds(self, total: int) -> Tuple[int, int]:
        """Half-open ``[lo, hi)`` index range of this shard over ``total`` items."""
        lo = (self.index - 1) * total // self.count
        hi = self.index * total // self.count
        return lo, hi

    def slice(self, items: Sequence[_T]) -> List[_T]:
        """This shard's contiguous slice of ``items``."""
        lo, hi = self.bounds(len(items))
        return list(items[lo:hi])

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


@dataclass(frozen=True)
class EpisodeSpec:
    """One simulation to run.

    Attributes:
        scenario_id: a registered scenario-family id (paper: S1-S6).
        initial_gap: 60 or 230 m in the paper grid.
        fault_type: the injected fault (or ``FaultType.NONE``).
        repetition: repetition index within the grid cell.
        seed: fully-determined episode seed.
        friction: road condition (None = dry / family default).
        params: resolved family-parameter assignment (empty for
            parameter-free families such as the paper's S1-S6, keeping
            their identity byte-compatible with the pre-registry code).
    """

    scenario_id: str
    initial_gap: float
    fault_type: FaultType
    repetition: int
    seed: int
    friction: Optional[FrictionCondition] = None
    params: ParamItems = ()

    def label(self) -> str:
        """Compact human-readable identifier."""
        mu = "" if self.friction is None else f"/mu={self.friction.mu}"
        point = f"/{param_token(self.params)}" if self.params else ""
        return (
            # ``:.0f`` is shipped historical label identity — changing the
            # bytes would orphan every cache entry and golden digest.
            f"{self.scenario_id}/gap={self.initial_gap:.0f}{point}"  # repro-lint: disable=canonical-float-format
            f"/{self.fault_type.value}/rep={self.repetition}{mu}"
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A full experimental grid.

    Attributes:
        fault_types: fault types to sweep.
        scenario_ids: registered scenario families to sweep (default the
            paper's S1-S6).
        initial_gaps: initial bumper gaps to sweep (default 60, 230).
        repetitions: repetitions per grid cell (paper: 10).
        seed: campaign master seed.
        friction: road condition applied to every episode (overrides any
            family-default condition, e.g. the friction-sweep family's).
        param_axes: family-parameter sweep as ``(name, values)`` pairs
            (or a mapping); every axis must be declared by the selected
            family, and sweeping requires exactly one ``scenario_id`` —
            parameter schemas are per-family.  Axes are normalised to the
            family's declaration order, so two specs meaning the same
            sweep enumerate identically.
    """

    fault_types: Sequence[FaultType] = field(default_factory=lambda: ATTACK_FAULT_TYPES)
    scenario_ids: Sequence[str] = SCENARIO_IDS
    initial_gaps: Sequence[float] = INITIAL_GAPS
    repetitions: int = 10
    seed: int = 2025
    friction: Optional[FrictionCondition] = None
    param_axes: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {self.repetitions}")
        if not self.fault_types:
            raise ValueError("fault_types must not be empty (use FaultType.NONE "
                             "for a fault-free campaign)")
        if not self.scenario_ids:
            raise ValueError("scenario_ids must not be empty")
        if not self.initial_gaps:
            raise ValueError("initial_gaps must not be empty")
        if len(set(self.fault_types)) != len(self.fault_types):
            raise ValueError(
                f"duplicate fault_types {[f.value for f in self.fault_types]}: "
                "duplicates would run identical episodes twice and skew "
                "aggregated rates"
            )
        if len(set(self.scenario_ids)) != len(self.scenario_ids):
            raise ValueError(
                f"duplicate scenario_ids {list(self.scenario_ids)}: duplicates "
                "would run identical episodes twice and skew aggregated rates"
            )
        if len(set(self.initial_gaps)) != len(self.initial_gaps):
            raise ValueError(
                f"duplicate initial_gaps {list(self.initial_gaps)}: duplicates "
                "would run identical episodes twice and skew aggregated rates"
            )
        families = [get_family(sid) for sid in self.scenario_ids]
        for gap in self.initial_gaps:
            # NaN compares False against any bound — check finiteness
            # explicitly so it cannot reach the geometry.
            if not math.isfinite(gap) or gap <= 0.0:
                raise ValueError(
                    f"initial_gaps must be positive bumper gaps [m], got {gap}"
                )
        axes = self.param_axes
        if isinstance(axes, Mapping):
            axes = tuple(axes.items())
        axes = tuple((name, tuple(values)) for name, values in axes)
        if axes:
            if len(families) != 1:
                raise ValueError(
                    "param_axes sweeps are per-family: select exactly one "
                    f"scenario family, got {list(self.scenario_ids)}"
                )
            family = families[0]
            names = [name for name, _ in axes]
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate param axes {names}")
            validated = {}
            for name, values in axes:
                spec = family.param_spec(name)  # raises on undeclared axes
                if not values:
                    raise ValueError(f"param axis {name!r} must not be empty")
                canonical = tuple(spec.validate(v) for v in values)
                if len(set(canonical)) != len(canonical):
                    raise ValueError(
                        f"duplicate values {list(values)} on param axis "
                        f"{name!r}: duplicates would run identical episodes "
                        "twice and skew aggregated rates"
                    )
                validated[name] = canonical
            # Canonical axis order = family declaration order, so two
            # specs naming the same sweep enumerate (and digest) the same.
            axes = tuple(
                (p.name, validated[p.name]) for p in family.params if p.name in validated
            )
        object.__setattr__(self, "param_axes", axes)

    def sweep_points(self, scenario_id: str) -> List[ParamItems]:
        """The resolved parameter points of one scenario family's sweep.

        The cartesian product of ``param_axes`` (family declaration
        order, last axis fastest), each point completed with the
        family's defaults.  Parameter-free families yield a single empty
        point — preserving the pre-registry episode identity.
        """
        family = get_family(scenario_id)
        if not family.params:
            return [()]
        if not self.param_axes:
            return [family.resolve_params({})]
        names = [name for name, _ in self.param_axes]
        return [
            family.resolve_params(dict(zip(names, combo)))
            for combo in itertools.product(*(values for _, values in self.param_axes))
        ]


def as_episode_list(
    campaign: Union["CampaignSpec", Sequence[EpisodeSpec]]
) -> List[EpisodeSpec]:
    """Normalise a spec-or-episode-list campaign argument to an episode list.

    Every layer that accepts campaigns (execution, digesting, the report
    pipeline) takes either a :class:`CampaignSpec` or a pre-enumerated
    (possibly sharded) episode sequence; this is the single place that
    flattens the union, so all of them agree on what a campaign *is*.
    """
    if isinstance(campaign, CampaignSpec):
        return enumerate_campaign(campaign)
    return list(campaign)


def enumerate_campaign(
    spec: CampaignSpec, shard: Optional[ShardSpec] = None
) -> List[EpisodeSpec]:
    """Expand a :class:`CampaignSpec` into its ordered episode list.

    Episode seeds are derived from ``(campaign seed, scenario, gap,
    [param point,] fault, repetition)`` — independent of enumeration
    order and of which other grid cells exist, so intervention
    configurations can be compared on *identical* episodes.  Parameter-
    free families (the paper's S1-S6) omit the param-point component,
    keeping their seeds byte-identical to the pre-registry scheme.

    Args:
        spec: the grid to expand.
        shard: when given, return only that contiguous slice of the full
            enumeration (see :class:`ShardSpec`); the union of all shards
            of a campaign is exactly the unsharded enumeration.
    """
    episodes: List[EpisodeSpec] = []
    points = {sid: spec.sweep_points(sid) for sid in spec.scenario_ids}
    for fault in spec.fault_types:
        for gap in spec.initial_gaps:
            for sid in spec.scenario_ids:
                for point in points[sid]:
                    for rep in range(spec.repetitions):
                        # ``:.0f`` is shipped historical seed identity —
                        # changing the bytes would re-seed every episode
                        # and orphan all caches and golden digests.
                        if point:
                            seed = derive_seed(
                                spec.seed, sid, f"{gap:.0f}",  # repro-lint: disable=canonical-float-format
                                param_token(point), fault.value, rep,
                            )
                        else:
                            seed = derive_seed(
                                spec.seed, sid, f"{gap:.0f}", fault.value, rep  # repro-lint: disable=canonical-float-format
                            )
                        episodes.append(
                            EpisodeSpec(
                                scenario_id=sid,
                                initial_gap=gap,
                                fault_type=fault,
                                repetition=rep,
                                seed=seed,
                                friction=spec.friction,
                                params=point,
                            )
                        )
    if shard is not None:
        return shard.slice(episodes)
    return episodes
