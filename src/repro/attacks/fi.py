"""The fault-injection engine.

Sits between the perception surrogate and the ADAS control loop (the tap
point in the paper's Fig. 3) and rewrites perception outputs according to
the active attack.  Four parameters define every injection, exactly as in
the paper: (i) target state variable, (ii) error magnitude, (iii) trigger
condition, (iv) duration — all owned by the attack objects in
:mod:`repro.attacks.patches`; the engine evaluates triggers against the
*true* world state and applies the rewrites.

The engine also keeps activation bookkeeping (first-activation times,
active flags) that the metrics layer uses to compute prevention rates and
mitigation times relative to attack onset.

A deliberately-preserved physical constraint: the RD attack cannot resurrect
a lead the camera no longer sees.  Below the perception blind range the lead
output is already invalid, and the patch (on the lead's tailgate, filling
the camera frame) cannot restore detection — which is precisely the paper's
Fig. 6 failure cascade.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.adas.perception import PerceptionOutput
from repro.attacks.patches import (
    CurvaturePatchAttack,
    MixedAttack,
    RelativeDistanceAttack,
)
from repro.sim.sensors import GroundTruthSensor


#: Sentinel for "fetch the true lead gap from the sensor" — ``None`` is a
#: legitimate value (no lead in range), so a default of ``None`` cannot
#: distinguish "caller supplied no-lead" from "caller supplied nothing".
_QUERY_SENSOR = object()


class FaultType(enum.Enum):
    """Campaign fault types (paper Table III)."""

    NONE = "none"
    RELATIVE_DISTANCE = "relative_distance"
    DESIRED_CURVATURE = "desired_curvature"
    MIXED = "mixed"


class FaultInjectionEngine:
    """Applies one attack object to the perception stream."""

    def __init__(self, attack: object | None, sensor: GroundTruthSensor) -> None:
        self.sensor = sensor
        self._rd_attack: Optional[RelativeDistanceAttack] = None
        self._curv_attack: Optional[CurvaturePatchAttack] = None
        if isinstance(attack, RelativeDistanceAttack):
            self._rd_attack = attack
        elif isinstance(attack, CurvaturePatchAttack):
            self._curv_attack = attack
        elif isinstance(attack, MixedAttack):
            self._rd_attack = attack.rd
            self._curv_attack = attack.curvature
            self._linked = True
            self._curv_trigger_rd = attack.curvature_trigger_rd
        elif attack is not None:
            raise TypeError(f"unsupported attack object: {attack!r}")
        if not hasattr(self, "_linked"):
            self._linked = False
            self._curv_trigger_rd = 0.0
        self._curv_sign = 1.0
        self._curv_active_until: Optional[float] = None
        self.rd_active = False
        self.curvature_active = False
        self.first_activation: Optional[float] = None
        self.rd_first_activation: Optional[float] = None
        self.curvature_first_activation: Optional[float] = None

    @property
    def enabled(self) -> bool:
        """True if any attack is configured."""
        return self._rd_attack is not None or self._curv_attack is not None

    def set_curvature_sign(self, sign: float) -> None:
        """Set the road-patch pull direction (+1 left, -1 right)."""
        if sign not in (-1.0, 1.0):
            raise ValueError(f"sign must be +/-1, got {sign}")
        self._curv_sign = sign

    def apply(self, perception: PerceptionOutput, time: float) -> PerceptionOutput:
        """Rewrite one perception frame according to the active attack."""
        rd, curvature = self.apply_values(
            time,
            perception.lead_valid,
            perception.lead_rd,
            perception.desired_curvature,
        )
        out = perception
        if self.rd_active:
            out = out.with_lead(rd=rd)
        if self.curvature_active:
            out = out.with_curvature(curvature)
        return out

    def apply_values(
        self,
        time: float,
        lead_valid: bool,
        lead_rd: float,
        desired_curvature: float,
        true_gap: object = _QUERY_SENSOR,
        ego_s: float | None = None,
    ) -> tuple[float, float]:
        """Value-based form of :meth:`apply` (used by the batch engine).

        Takes the perception fields the attacks can touch and returns the
        rewritten ``(lead_rd, desired_curvature)`` pair, updating the
        activation bookkeeping exactly like :meth:`apply`.  The batch path
        passes the true lead ``gap`` (or ``None`` for no lead) and the true
        ``ego_s`` it already holds in arrays; when omitted they are fetched
        from the sensor, which is what the scalar path does.
        """
        rd_out = lead_rd
        curv_out = desired_curvature
        self.rd_active = False
        self.curvature_active = False

        if self._rd_attack is not None and lead_valid:
            if true_gap is _QUERY_SENSOR:
                true_lead = self.sensor.lead()
                true_gap = None if true_lead is None else true_lead.gap
            if true_gap is not None:
                offset = self._rd_attack.offset_for(true_gap)  # type: ignore[arg-type]
                if offset is not None:
                    rd_out = lead_rd + offset
                    self.rd_active = True
                    if self.rd_first_activation is None:
                        self.rd_first_activation = time
                    if self.first_activation is None:
                        self.first_activation = time

        if self._curv_attack is not None:
            if ego_s is None:
                ego_s = self.sensor.world.ego.s
            if self._curv_attack.covers(ego_s):
                self._curv_active_until = time + self._curv_attack.duration
            if self._linked and self.rd_active:
                # Mixed attack: once the ego is close enough that the
                # lead-rear patch dominates the camera frame, it perturbs
                # the curvature head too (Table III: "RD < 80m or ego
                # vehicle drives across patch").  rd_active implies the
                # true lead existed, so true_gap is a float here.
                if true_gap is _QUERY_SENSOR:
                    true_lead = self.sensor.lead()
                    true_gap = None if true_lead is None else true_lead.gap
                if true_gap is not None and true_gap < self._curv_trigger_rd:  # type: ignore[operator]
                    self._curv_active_until = max(self._curv_active_until or 0.0, time)
            if self._curv_active_until is not None and time <= self._curv_active_until:
                bias = self._curv_sign * self._curv_attack.curvature_bias
                curv_out = desired_curvature + bias
                self.curvature_active = True
                if self.curvature_first_activation is None:
                    self.curvature_first_activation = time
                if self.first_activation is None:
                    self.first_activation = time

        return rd_out, curv_out
