"""Attack models (the paper's Table III).

==========  ==================  =============================  ============
type        target variable     attack timing                  attack value
==========  ==================  =============================  ============
single      relative distance   RD < 80 m                      +38..10 m
single      desired curvature   ego drives over road patch     3 % deviation
mixed       RD & curvature      either condition               same
==========  ==================  =============================  ============

**Relative-distance attack** — an adversarial patch on the rear of the lead
vehicle, perceived once the ego is within 80 m.  The injected offsets are
the paper's: +10 m while the true RD is within 80 m, +15 m within 25 m and
+38 m within 20 m — the perceived gap therefore *stays comfortable* while
the true gap collapses, so the ACC never brakes.

**Curvature attack** — a dirty-road patch at a fixed arc length; driving
over it biases the desired-curvature output.  The paper quotes a "3 %
deviation in curvature output predictions", i.e. 3 % of the model's output
range (0.03 x 0.13 ~ 0.004 1/m), producing a lateral path offset worth up
to ~10 degrees of accumulated steering correction.  The bias direction is
drawn per episode (a patch can pull either way depending on its placement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.rng import RngStreams


@dataclass(frozen=True)
class RelativeDistanceAttack:
    """Rear-of-lead patch: inflates perceived RD by a range-keyed offset.

    Attributes:
        trigger_range: true RD below which the patch is perceived [m].
        offsets: ``(rd_threshold, offset)`` pairs evaluated most-specific
            first; the offset of the tightest matching threshold applies.
    """

    trigger_range: float = 80.0
    offsets: tuple = ((20.0, 38.0), (25.0, 15.0), (80.0, 10.0))

    def offset_for(self, true_rd: float) -> Optional[float]:
        """The RD offset injected at ``true_rd``, or None if out of range."""
        if true_rd >= self.trigger_range:
            return None
        for threshold, offset in self.offsets:
            if true_rd < threshold:
                return offset
        return None


@dataclass(frozen=True)
class CurvaturePatchAttack:
    """Dirty-road patch biasing the desired-curvature output.

    Attributes:
        patch_s: arc length where the patch starts [m].
        patch_length: longitudinal extent of the patch area [m].
        deviation_fraction: bias as a fraction of the curvature output
            range (paper: 3 %).
        curvature_range: the model's curvature output range [1/m].
        duration: seconds the misprediction persists once triggered (the
            patch stays in view / in the temporal context of the model).
    """

    patch_s: float = 450.0
    patch_length: float = 12.0
    deviation_fraction: float = 0.03
    curvature_range: float = 0.13
    duration: float = 9.0

    @property
    def curvature_bias(self) -> float:
        """Magnitude of the injected curvature bias [1/m]."""
        return self.deviation_fraction * self.curvature_range

    def covers(self, ego_s: float) -> bool:
        """True while the ego front axle is over the patch area."""
        return self.patch_s <= ego_s <= self.patch_s + self.patch_length


@dataclass(frozen=True)
class MixedAttack:
    """Both patches deployed (the paper's "Mixed" fault type).

    Table III gives the mixed attack timing as "RD < 80 m **or** ego
    vehicle drives across patch": the rear-of-lead patch perturbs *both*
    heads of the end-to-end model once it dominates the camera frame, so
    the curvature bias additionally activates when the ego is close behind
    the patched lead (``curvature_trigger_rd``).  This is what makes mixed
    attacks A2-dominated in the paper ("more A2 accidents occur than A1
    accidents due to the shorter time needed to trigger accidents in the
    latter direction") while still being preventable by a driver whose
    early braking keeps the ego out of the close-range zone.

    Attributes:
        rd: the relative-distance component.
        curvature: the desired-curvature component.
        curvature_trigger_rd: true RD below which the lead-rear patch also
            perturbs the curvature head [m].
    """

    rd: RelativeDistanceAttack
    curvature: CurvaturePatchAttack
    curvature_trigger_rd: float = 20.0


def build_attack(
    fault_type: str,
    streams: RngStreams | None = None,
    patch_s: Optional[float] = None,
):
    """Build the attack object for a campaign fault type.

    Args:
        fault_type: ``"relative_distance"``, ``"desired_curvature"`` or
            ``"mixed"`` (``None``/``"none"`` returns None).
        streams: episode RNG (jitters the road-patch placement by a few
            metres, as physical deployments would vary).
        patch_s: override the road-patch arc length.

    Raises:
        ValueError: on an unknown fault type.
    """
    if fault_type in (None, "none"):
        return None
    jitter = 0.0
    if streams is not None:
        jitter = float(streams.get("attack").uniform(-15.0, 15.0))
    s = (patch_s if patch_s is not None else 450.0) + jitter
    if fault_type == "relative_distance":
        return RelativeDistanceAttack()
    if fault_type == "desired_curvature":
        return CurvaturePatchAttack(patch_s=s)
    if fault_type == "mixed":
        return MixedAttack(
            rd=RelativeDistanceAttack(),
            curvature=CurvaturePatchAttack(patch_s=s),
        )
    raise ValueError(f"unknown fault type {fault_type!r}")
