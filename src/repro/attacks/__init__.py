"""Source-level fault injection emulating adversarial-patch attacks.

The paper emulates physical patches by rewriting the perception module's
outputs ("we directly emulate the effect of the patches by injecting attacks
into the DNN output"), with magnitudes taken from the patch literature:

* :mod:`repro.attacks.patches` — the attack models of Table III: the
  rear-of-lead-vehicle patch inflating relative distance (38-10 m schedule
  keyed on true RD), the dirty-road patch biasing desired curvature (3 %
  deviation), and their combination.
* :mod:`repro.attacks.fi` — the injection engine: trigger evaluation on
  *true* state, output rewriting, activation bookkeeping.
* :mod:`repro.attacks.campaign` — campaign enumeration: 3 fault types x
  2 initial gaps x 6 scenarios x N repetitions (the paper's 360-run grids).
"""

from repro.attacks.fi import FaultInjectionEngine, FaultType
from repro.attacks.patches import (
    CurvaturePatchAttack,
    MixedAttack,
    RelativeDistanceAttack,
    build_attack,
)
from repro.attacks.campaign import (
    ATTACK_FAULT_TYPES,
    CampaignSpec,
    EpisodeSpec,
    ShardSpec,
    enumerate_campaign,
)

__all__ = [
    "FaultInjectionEngine",
    "FaultType",
    "CurvaturePatchAttack",
    "MixedAttack",
    "RelativeDistanceAttack",
    "build_attack",
    "ATTACK_FAULT_TYPES",
    "CampaignSpec",
    "EpisodeSpec",
    "ShardSpec",
    "enumerate_campaign",
]
