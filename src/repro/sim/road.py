"""Road geometry in arc-length (Frenet) coordinates.

A road is a sequence of constant-curvature segments.  The reference line is
the centre of the ego lane (lane 0); lateral offset ``d`` is measured from
it, positive to the left.  Lane ``i`` is centred at ``d = i * lane_width``
(so lane 1 is the adjacent lane to the left used by cut-in traffic).

Working directly in Frenet coordinates keeps the 100 Hz loop cheap and
exact: vehicles never need to be projected back onto the road.  World
(x, y) poses are only computed lazily for figures.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class RoadSegment:
    """A constant-curvature stretch of road.

    Attributes:
        length: arc length of the segment [m]; must be positive.
        curvature: signed curvature [1/m]; positive curves left.
    """

    length: float
    curvature: float

    def __post_init__(self) -> None:
        if self.length <= 0.0:
            raise ValueError(f"segment length must be positive, got {self.length}")
        if abs(self.curvature) > 0.1:
            # radius < 10 m is not a highway geometry and breaks the
            # small-angle assumptions of the Frenet stepper.
            raise ValueError(f"curvature {self.curvature} out of highway range")


class Road:
    """A piecewise constant-curvature road with parallel lanes.

    Args:
        segments: ordered road segments.
        num_lanes: number of lanes, counted from the reference lane 0
            upward (lane indices ``0 .. num_lanes-1`` going left).
        lane_width: lane width [m]; US interstate standard 3.7 m.
    """

    def __init__(
        self,
        segments: Sequence[RoadSegment],
        num_lanes: int = 2,
        lane_width: float = 3.7,
    ) -> None:
        if not segments:
            raise ValueError("road needs at least one segment")
        if num_lanes < 1:
            raise ValueError(f"num_lanes must be >= 1, got {num_lanes}")
        if lane_width <= 0.0:
            raise ValueError(f"lane_width must be positive, got {lane_width}")
        self.segments: List[RoadSegment] = list(segments)
        self.num_lanes = num_lanes
        self.lane_width = lane_width
        # Cumulative arc length at the *start* of each segment.
        self._starts: List[float] = []
        total = 0.0
        for seg in self.segments:
            self._starts.append(total)
            total += seg.length
        self.length = total
        # Precompute world pose (x, y, heading) at each segment start for
        # lazy world-frame conversion.
        self._poses: List[Tuple[float, float, float]] = []
        x, y, heading = 0.0, 0.0, 0.0
        for seg in self.segments:
            self._poses.append((x, y, heading))
            x, y, heading = _advance(x, y, heading, seg.length, seg.curvature)

    def segment_index_at(self, s: float) -> int:
        """Index of the segment containing arc length ``s`` (clamped)."""
        if s <= 0.0:
            return 0
        if s >= self.length:
            return len(self.segments) - 1
        return bisect.bisect_right(self._starts, s) - 1

    def curvature_at(self, s: float) -> float:
        """Signed road curvature [1/m] at arc length ``s``."""
        return self.segments[self.segment_index_at(s)].curvature

    def curvature_ahead(self, s: float, lookahead: float) -> float:
        """Mean curvature over ``[s, s + lookahead]``.

        This is what a camera-based perception model effectively reports:
        the curvature of the visible road ahead, not the curvature under
        the front axle.  Averaging across segment boundaries produces the
        gradual curvature ramp a real planner sees when entering a curve.
        """
        if lookahead <= 0.0:
            return self.curvature_at(s)
        steps = 5
        acc = 0.0
        for i in range(steps):
            acc += self.curvature_at(s + lookahead * (i + 0.5) / steps)
        return acc / steps

    def lane_center(self, lane: int) -> float:
        """Lateral offset ``d`` of the centre of ``lane``."""
        if not 0 <= lane < self.num_lanes:
            raise ValueError(f"lane {lane} outside [0, {self.num_lanes})")
        return lane * self.lane_width

    def nearest_lane(self, d: float) -> int:
        """Index of the lane whose centre is closest to offset ``d``.

        Clamped to the existing lanes — a vehicle beyond the road edge is
        assigned the outermost lane.  Lane-detection stacks behave this
        way: once a drifting vehicle is mostly inside the adjacent lane,
        the detected "own lane" becomes that lane.
        """
        idx = round(d / self.lane_width)
        return max(0, min(self.num_lanes - 1, int(idx)))

    def lane_bounds(self, lane: int) -> Tuple[float, float]:
        """``(right, left)`` lane-line offsets ``d`` of ``lane``."""
        center = self.lane_center(lane)
        half = 0.5 * self.lane_width
        return center - half, center + half

    def road_bounds(self) -> Tuple[float, float]:
        """``(right, left)`` lateral offsets of the road edges."""
        return -0.5 * self.lane_width, (self.num_lanes - 0.5) * self.lane_width

    def world_pose(self, s: float, d: float) -> Tuple[float, float, float]:
        """World-frame pose ``(x, y, heading)`` of Frenet point ``(s, d)``.

        Only used for figures/exports; the simulation itself never leaves
        Frenet coordinates.
        """
        idx = self.segment_index_at(s)
        seg = self.segments[idx]
        x0, y0, h0 = self._poses[idx]
        ds = min(max(s - self._starts[idx], 0.0), seg.length)
        x, y, heading = _advance(x0, y0, h0, ds, seg.curvature)
        # Offset to the left of the tangent by d.
        return (
            x - d * math.sin(heading),
            y + d * math.cos(heading),
            heading,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Road(length={self.length:.0f}m, segments={len(self.segments)}, "
            f"lanes={self.num_lanes})"
        )


def _advance(
    x: float, y: float, heading: float, length: float, curvature: float
) -> Tuple[float, float, float]:
    """Advance a pose ``length`` metres along an arc of given curvature."""
    if abs(curvature) < 1e-12:
        return (
            x + length * math.cos(heading),
            y + length * math.sin(heading),
            heading,
        )
    radius = 1.0 / curvature
    new_heading = heading + length * curvature
    return (
        x + radius * (math.sin(new_heading) - math.sin(heading)),
        y - radius * (math.cos(new_heading) - math.cos(heading)),
        new_heading,
    )
