"""Vectorized agent-behaviour stepping for the batch engine.

:class:`BehaviorBatch` replaces the per-lane behaviour loop at the top of
``World.step`` (``binding.update(ego, time)`` per agent) with a
structure-of-arrays fast path over the closed built-in behaviour set from
:mod:`repro.sim.agents`.  Dispatch is keyed on *exact* behaviour type via
:func:`repro.sim.agents.behavior_kind`: every built-in kind's ``update``
is replicated as float64 array expressions (``np_clamp``/``np.where``
selections preserving the scalar branch structure, operand order and the
post-update trigger semantics), so the computed ``accel_cmd``/``d_target``
values are **bit-identical** to the object loop.

Lanes containing any *unknown* behaviour — a third-party class, or a
subclass of a built-in (which may override ``update``) — fall back to the
scalar per-actor loop wholesale, in agent order, and their command state
is re-gathered from the objects afterwards.  The whole-lane granularity
is deliberate: a third-party behaviour may observe sibling actors, so the
in-lane update order must be preserved exactly.

Trigger latches (``behavior.triggered``) and lateral targets live in
persistent full-width arrays indexed by a global actor id, so re-binding
to a different active-lane subset (lanes finish independently) loses
nothing.  On the rare step a trigger flips, the flag is written through
to the behaviour object so the objects never go stale; ``accel_cmd`` and
``d_target`` are scattered back every step by
:meth:`repro.sim.batch_state.BatchDynamics.step` alongside the kinematic
state.  Behaviour *parameters* are frozen into arrays at construction —
the same "fixed after scenario build" contract the batch dynamics already
places on agent lists.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.agents import behavior_kind
from repro.sim.world import World
from repro.utils.npmath import np_clamp as _np_clamp

#: Registry kinds with a vectorized fast path, in dispatch order.
_KINDS = ("cruise", "speed_change", "sudden_stop", "cut_in", "lane_change_away")


class BehaviorBatch:
    """Lockstep behaviour updates for a fixed set of worlds.

    Args:
        worlds: the per-episode worlds, in batch-lane order.  The global
            actor layout (lane-major, agent order) must match the flat
            actor layout :class:`~repro.sim.batch_state.BatchDynamics`
            builds for the same worlds.
    """

    def __init__(self, worlds: Sequence[World]) -> None:
        self._worlds: List[World] = list(worlds)
        actors = []
        behaviors = []
        lane_first: List[int] = []
        lane_count: List[int] = []
        lane_fallback: List[bool] = []
        for world in self._worlds:
            lane_first.append(len(actors))
            lane_count.append(len(world.agents))
            fallback = False
            for binding in world.agents:
                actors.append(binding.actor)
                behaviors.append(binding.behavior)
                if binding.behavior is not None and behavior_kind(binding.behavior) is None:
                    fallback = True
            lane_fallback.append(fallback)
        self._behaviors = behaviors
        self._lane_first = lane_first
        self._lane_count = lane_count
        self._lane_fallback = lane_fallback
        n = len(actors)

        # Persistent per-actor state (global index): current commands and
        # trigger latches.  Commands are seeded from the objects so None
        # behaviours (which never write) keep their initial values, exactly
        # as in the scalar loop.
        self._accel = np.array([a.accel_cmd for a in actors], dtype=float)
        self._d_target = np.array([a.d_target for a in actors], dtype=float)
        self._trig = np.array(
            [bool(getattr(beh, "triggered", False)) for beh in behaviors]
        )
        self._half_len = np.array([0.5 * a.params.length for a in actors])

        # Frozen behaviour parameters, one column set per fast-path kind.
        # Only rows of that kind are meaningful; everything else is 0.
        self._kind_id = np.full(n, -1, dtype=np.int8)
        self._p = {name: np.zeros(n) for name in (
            "c_speed", "c_gain",      # the (possibly nested) cruise loop
            "final", "rate",          # speed_change
            "decel",                  # sudden_stop
            "trigger_gap", "target_d",
        )}
        for gid, beh in enumerate(behaviors):
            if beh is None:
                continue
            kind = behavior_kind(beh)
            if kind is None:
                continue
            self._kind_id[gid] = _KINDS.index(kind)
            p = self._p
            if kind == "cruise":
                p["c_speed"][gid] = beh.speed
                p["c_gain"][gid] = beh.gain
                continue
            # Every triggered kind delegates to a nested CruiseBehavior
            # before / alongside its trigger branch.
            p["c_speed"][gid] = beh._cruise.speed
            p["c_gain"][gid] = beh._cruise.gain
            p["trigger_gap"][gid] = beh.trigger_gap
            if kind == "speed_change":
                p["final"][gid] = beh.final_speed
                p["rate"][gid] = beh.rate
            elif kind == "sudden_stop":
                p["decel"][gid] = beh.decel
            else:  # cut_in / lane_change_away
                p["target_d"][gid] = beh.target_d

        self._bkey: Optional[tuple] = None
        self._bound: Optional[SimpleNamespace] = None

    # ------------------------------------------------------------------ #
    # Active-set binding
    # ------------------------------------------------------------------ #

    def _bind(self, key: tuple) -> SimpleNamespace:
        """Row layouts for an active-lane subset (memoized, like the
        dynamics binding: the active set only changes when a lane ends)."""
        if key == self._bkey and self._bound is not None:
            return self._bound
        m = SimpleNamespace()
        g: List[int] = []
        fb_rows: List[int] = []
        fb_lane_pos: List[int] = []
        for j, i in enumerate(key):
            first, count = self._lane_first[i], self._lane_count[i]
            if self._lane_fallback[i]:
                fb_lane_pos.append(j)
                fb_rows.extend(range(len(g), len(g) + count))
            g.extend(range(first, first + count))
        m.g = np.asarray(g, dtype=np.intp)
        m.fb_lane_pos = fb_lane_pos
        m.fb_rows = np.asarray(fb_rows, dtype=np.intp)
        kid = self._kind_id[m.g]
        if fb_rows:
            kid = kid.copy()
            kid[m.fb_rows] = -1  # fallback lanes never take the fast path
        m.kind_rows = [
            np.nonzero(kid == k)[0] for k in range(len(_KINDS))
        ]
        m.half_len = self._half_len[m.g]
        self._bkey = key
        self._bound = m
        return m

    # ------------------------------------------------------------------ #
    # One behaviour phase
    # ------------------------------------------------------------------ #

    def _cruise_accel(self, gk: np.ndarray, a_speed: np.ndarray) -> np.ndarray:
        """``CruiseBehavior.update``: clamp(gain * (speed - v), -2, 2)."""
        p = self._p
        return _np_clamp(p["c_gain"][gk] * (p["c_speed"][gk] - a_speed), -2.0, 2.0)

    def update(self, b: SimpleNamespace, key: tuple) -> Tuple[np.ndarray, np.ndarray]:
        """Run one behaviour phase for the bound active set.

        Args:
            b: the dynamics binding for ``key`` (supplies the persistent
                kinematic arrays and the flat actor layout).
            key: the active-lane tuple.

        Returns:
            ``(accel_cmd, d_target)`` float64 arrays aligned with
            ``b.actors`` — the command state after this phase, identical
            to what the scalar loop would leave on the actor objects.
        """
        m = self._bind(key)

        # Unknown-behaviour lanes: the scalar loop, verbatim and in order.
        for j in m.fb_lane_pos:
            world = b.worlds[j]
            for binding in world.agents:
                binding.update(world.ego, world.time)
        if m.fb_rows.size:
            gi = m.g[m.fb_rows]
            for gid, row in zip(gi.tolist(), m.fb_rows.tolist()):
                actor = b.actors[row]
                self._accel[gid] = actor.accel_cmd
                self._d_target[gid] = actor.d_target

        g = m.g
        acc = self._accel
        d_tgt = self._d_target
        trig = self._trig
        p = self._p
        rows_cruise, rows_sc, rows_ss, rows_ci, rows_lc = m.kind_rows
        if rows_cruise.size or rows_sc.size or rows_ss.size or rows_ci.size or rows_lc.size:
            # bumper_gap(actor, ego) = actor.rear_s - ego.front_s, with the
            # scalar association: (a.s - 0.5*len) - (e.s + 0.5*len).
            ego_front = (b.s + b.ego_half_len)[b.flat_lane]
            gap = (b.a_s - m.half_len) - ego_front
            a_speed = b.a_speed

            if rows_cruise.size:
                gk = g[rows_cruise]
                acc[gk] = self._cruise_accel(gk, a_speed[rows_cruise])

            if rows_sc.size:
                gk = g[rows_sc]
                new_t = trig[gk] | (gap[rows_sc] < p["trigger_gap"][gk])
                error = p["final"][gk] - a_speed[rows_sc]
                changed = np.where(
                    np.abs(error) < 0.05,
                    0.0,
                    _np_clamp(error * 2.0, -p["rate"][gk], p["rate"][gk]),
                )
                acc[gk] = np.where(
                    new_t, changed, self._cruise_accel(gk, a_speed[rows_sc])
                )
                self._latch(gk, trig, new_t)

            if rows_ss.size:
                gk = g[rows_ss]
                new_t = trig[gk] | (gap[rows_ss] < p["trigger_gap"][gk])
                stopping = np.where(a_speed[rows_ss] > 0.0, -p["decel"][gk], 0.0)
                acc[gk] = np.where(
                    new_t, stopping, self._cruise_accel(gk, a_speed[rows_ss])
                )
                self._latch(gk, trig, new_t)

            if rows_ci.size:
                gk = g[rows_ci]
                acc[gk] = self._cruise_accel(gk, a_speed[rows_ci])
                fire = (gap[rows_ci] > 0.0) & (gap[rows_ci] < p["trigger_gap"][gk])
                new_t = trig[gk] | fire
                d_tgt[gk] = np.where(
                    new_t & ~trig[gk], p["target_d"][gk], d_tgt[gk]
                )
                self._latch(gk, trig, new_t)

            if rows_lc.size:
                gk = g[rows_lc]
                acc[gk] = self._cruise_accel(gk, a_speed[rows_lc])
                new_t = trig[gk] | (gap[rows_lc] < p["trigger_gap"][gk])
                d_tgt[gk] = np.where(
                    new_t & ~trig[gk], p["target_d"][gk], d_tgt[gk]
                )
                self._latch(gk, trig, new_t)

        return acc[g], d_tgt[g]

    def _latch(self, gk: np.ndarray, trig: np.ndarray, new_t: np.ndarray) -> None:
        """Commit trigger latches, writing newly-flipped flags through to
        the behaviour objects (rare: once per behaviour per episode)."""
        newly = new_t & ~trig[gk]
        trig[gk] = new_t
        if newly.any():
            for gid in gk[newly].tolist():
                self._behaviors[gid].triggered = True
