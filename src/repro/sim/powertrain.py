"""Powertrain and brake actuation model.

Maps a commanded longitudinal acceleration (positive = throttle, negative =
brake) to the acceleration the vehicle can actually realise *before* the
friction circle is applied:

* engine force derates with speed (power-limited at highway speed);
* brake pressure builds with a first-order lag (~0.15 s), so even a
  full-brake command takes a couple of tenths of a second to bite —
  exactly the delay that makes late hard braking dangerous;
* rolling resistance and aerodynamic drag always act.

The friction clamp itself lives in :mod:`repro.sim.vehicle` because it
couples longitudinal and lateral acceleration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.utils.mathx import clamp, interp1d
from repro.utils.units import G


@dataclass
class PowertrainParams:
    """Tuning constants for :class:`Powertrain`.

    Attributes:
        engine_speed_knots: speeds [m/s] for the engine-derate table.
        engine_accel_knots: max engine acceleration [m/s^2] at each knot.
        max_brake_decel: deceleration a full-brake command requests
            [m/s^2]; defaults to 1 g to match the paper's full-braking
            threshold ``t_fb = V / 9.8``.
        adas_brake_authority: deceleration ceiling of the ACC brake
            interface [m/s^2].  Production ACC actuates brakes through a
            request channel capped well below the hydraulic limit (roughly
            0.4 g); only the AEB path and the driver's pedal have
            full-brake authority.  This cap is why OpenPilot "collides due
            to an insufficient emergency braking distance, despite
            triggering the FCW alarm" in the paper's S4.
        brake_lag: brake-pressure first-order time constant [s].
        rolling_resistance: speed-independent drag deceleration [m/s^2].
        drag_coefficient: aero drag deceleration per (m/s)^2 [1/m].
    """

    engine_speed_knots: List[float] = field(
        default_factory=lambda: [0.0, 10.0, 22.0, 30.0, 40.0]
    )
    engine_accel_knots: List[float] = field(
        default_factory=lambda: [3.2, 2.8, 2.2, 1.5, 0.9]
    )
    max_brake_decel: float = G
    adas_brake_authority: float = 4.0
    brake_lag: float = 0.15
    rolling_resistance: float = 0.04
    drag_coefficient: float = 0.00035


class Powertrain:
    """Stateful actuation model (carries the brake-pressure lag)."""

    def __init__(self, params: PowertrainParams | None = None) -> None:
        self.params = params or PowertrainParams()
        self._brake_decel = 0.0  # current realised brake deceleration [m/s^2]

    def reset(self) -> None:
        """Release brakes (start of an episode)."""
        self._brake_decel = 0.0

    @property
    def brake_deceleration(self) -> float:
        """Currently realised brake deceleration [m/s^2] (>= 0)."""
        return self._brake_decel

    def max_engine_accel(self, speed: float) -> float:
        """Maximum engine acceleration available at ``speed`` [m/s^2]."""
        p = self.params
        return interp1d(speed, p.engine_speed_knots, p.engine_accel_knots)

    def actuate(self, accel_cmd: float, speed: float, dt: float) -> float:
        """Realise ``accel_cmd`` and return achieved acceleration [m/s^2].

        Args:
            accel_cmd: commanded acceleration; negative values are brake
                requests (magnitude clamped to ``max_brake_decel``).
            speed: current forward speed [m/s].
            dt: step size [s].
        """
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        p = self.params
        if accel_cmd >= 0.0:
            target_brake = 0.0
            engine = min(accel_cmd, self.max_engine_accel(speed))
        else:
            target_brake = clamp(-accel_cmd, 0.0, p.max_brake_decel)
            engine = 0.0
        # First-order brake pressure dynamics (release is faster than apply).
        lag = p.brake_lag if target_brake > self._brake_decel else 0.5 * p.brake_lag
        alpha = dt / (lag + dt)
        self._brake_decel += alpha * (target_brake - self._brake_decel)
        drag = p.rolling_resistance + p.drag_coefficient * speed * speed
        if speed <= 0.01 and engine <= 0.0:
            drag = 0.0  # a stopped car does not creep backwards
        return engine - self._brake_decel - drag
