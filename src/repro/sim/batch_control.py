"""Vectorized control phase: N lanes' perception/controller/safety math.

:class:`BatchControlStack` is the control-side twin of
:class:`repro.sim.batch_state.BatchDynamics`: per lockstep tick it computes
the perception heads (lead gating + noise, lane lines, lagged curvature
feed-forward/feedback), the lead tracker, the longitudinal/lateral planner
math, the AEBS TTC/phase machine, LDW, the firmware safety checker and the
arbitration hierarchy for *all* vectorizable lanes at once on
structure-of-arrays NumPy float64 — then stages each lane's resolved
command through ``SimulationPlatform._stage_control`` so the downstream
bookkeeping (``_post_step``, metrics, hazards) is untouched.

Bit-exactness contract (the ``tests/test_batch_executor.py`` gate):

* **RNG draw order is preserved per lane.**  Each lane keeps its own
  ``Generator`` (the platform's perception stream); the stack pre-draws
  ``standard_normal`` blocks per lane and slices 5 draws per step with a
  valid lead, 3 without — which consumes the underlying bit stream exactly
  like the scalar path's sequential ``rng.normal(0.0, scale)`` calls, and
  ``normal(0.0, s)`` is computed as ``0.0 + s * z`` (the same arithmetic
  NumPy performs internally).
* **Branches replicate scalar semantics** via the ``*_arrays`` step-math
  twins each module exposes (``np.where`` selections preserving operand
  order, signed zeros, and guard short-circuits).
* **Transcendentals stay per-lane ``math`` calls** (``atan``/``sin`` are
  not bit-pinned across libm/SIMD implementations).
* **The ML arm batches its LSTM forward.**  Lanes carrying a stock
  :class:`~repro.ml.mitigation.MitigationController` run Algorithm 1
  through :class:`repro.sim.batch_ml.BatchMitigation` — one stacked
  ``LstmNetwork.forward`` per tick with bit-verified row batching — and
  arbitrate through the same vectorized hierarchy (``"ml"`` authority
  codes included).
* **Per-lane-only features stay scalar.**  Lanes with a trace recorder or
  a *non-stock* ML controller are not vectorizable (:attr:`vector_set`
  excludes them; the executor runs their ordinary ``_control_phase``).
  The driver model, the fault-injection triggers and the cut-in scan run
  as per-lane hooks *inside* the vectorized step, fed by (and feeding)
  the arrays.

State lives in full-width arrays indexed by global lane id; when a lane
finishes, :meth:`retire` scatters its controller state back onto the scalar
objects so post-episode inspection sees exactly what the serial path would
have left behind.
"""

from __future__ import annotations

import math
from types import SimpleNamespace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.adas.controlsd import AdasCommand
from repro.adas.lat_planner import lat_plan_arrays
from repro.ml.mitigation import MitigationController
from repro.adas.lead_tracker import TrackedLead, tracker_step_arrays
from repro.adas.long_planner import long_plan_arrays
from repro.adas.perception import perception_head_arrays
from repro.safety.aebs import AebsConfig, AebsState, aebs_step_arrays
from repro.safety.arbitration import FinalCommand
from repro.safety.driver import DriverAction, DriverView
from repro.safety.ldw import ldw_arrays
from repro.safety.panda import checker_arrays
from repro.sim.batch_ml import BatchMitigation
from repro.sim.batch_state import BatchDynamics
from repro.utils.npmath import np_max_pair, np_min_pair
from repro.utils.units import G

#: Standard-normal draws pre-fetched per lane per refill.  Any size works
#: (block boundaries do not change the consumed stream); bigger blocks
#: amortise more Generator-call overhead.
_NOISE_BLOCK = 512

#: Worst-case standard-normal draws one lane consumes per step.
_DRAWS_PER_STEP = 5

_LONG_AUTH = ("adas", "driver", "aeb", "ml")
_LAT_AUTH = ("adas", "driver", "frozen", "ml")


class BatchControlStack:
    """Vectorized control phase over a fixed set of platforms.

    Args:
        platforms: the per-episode platforms, in batch-lane order (the
            same order as the worlds given to ``dynamics``).
        dynamics: the batch integrator for the same lanes; its
            ``control_view`` (populated by ``prime``/``step``) supplies
            the per-step world-query values.
    """

    def __init__(self, platforms: Sequence, dynamics: BatchDynamics) -> None:
        self.platforms = list(platforms)
        self.dynamics = dynamics
        n = len(self.platforms)
        if n != len(dynamics.worlds):
            raise ValueError(
                f"platform/world count mismatch: {n} != {len(dynamics.worlds)}"
            )

        #: Lanes the vectorized path covers; the rest (trace recording, or
        #: a non-stock ML controller whose overridden ``step`` we cannot
        #: replicate) must run the scalar ``_control_phase``.
        self.vector_set = frozenset(
            i
            for i, p in enumerate(self.platforms)
            if p.trace is None
            and (
                p.ml_controller is None
                or type(p.ml_controller) is MitigationController
            )
        )

        #: Vectorized Algorithm 1 over the ML lanes (None without any).
        ml_lanes = sorted(
            i for i in self.vector_set
            if self.platforms[i].ml_controller is not None
        )
        self._ml_set = frozenset(ml_lanes)
        self.ml = BatchMitigation(self.platforms, ml_lanes) if ml_lanes else None

        def arr(get) -> np.ndarray:
            return np.array([float(get(p)) for p in self.platforms])

        # Perception.
        self._det_range = arr(lambda p: p.perception.params.detection_range)
        self._blind_range = arr(lambda p: p.perception.params.blind_range)
        self._centering_gain = arr(lambda p: p.perception.params.centering_gain)
        self._heading_gain = arr(lambda p: p.perception.params.heading_gain)
        self._ff_lag = arr(lambda p: p.perception.params.ff_lag)
        self._rd_noise = arr(lambda p: p.perception.params.rd_noise)
        self._rs_noise = arr(lambda p: p.perception.params.rs_noise)
        self._lane_noise = arr(lambda p: p.perception.params.lane_noise)
        self._curv_noise = arr(lambda p: p.perception.params.curvature_noise)
        self._max_curv = arr(lambda p: p.perception.params.max_curvature)
        self._curv_la = arr(lambda p: p.perception.params.curvature_lookahead)

        # Lead tracker.
        self._tr_alpha = arr(lambda p: p.controls.tracker.alpha)
        self._tr_beta = arr(lambda p: p.controls.tracker.beta)
        self._tr_coast = arr(lambda p: p.controls.tracker.coast_time)

        # Longitudinal planner.
        lp = lambda f: arr(lambda p: f(p.controls.long_planner))  # noqa: E731
        self._set_speed = lp(lambda m: m.set_speed)
        self._time_gap = lp(lambda m: m.params.time_gap)
        self._min_gap = lp(lambda m: m.params.min_gap)
        self._cruise_gain = lp(lambda m: m.params.cruise_gain)
        self._cruise_limit = lp(lambda m: m.params.cruise_accel_limit)
        self._approach_trigger = lp(lambda m: m.params.approach_trigger_decel)
        self._approach_margin = lp(lambda m: m.params.approach_margin)
        self._comfort = lp(lambda m: m.params.comfort_brake_limit)
        self._panic_ttc = lp(lambda m: m.params.panic_ttc)
        self._panic_decel = lp(lambda m: m.params.panic_decel)
        self._max_accel = lp(lambda m: m.params.max_accel)

        # Lateral planner.
        self._lat_smoothing = arr(lambda p: p.controls.lat_planner.params.smoothing)
        self._lat_wheelbase = arr(lambda p: p.controls.lat_planner.params.wheelbase)
        self._lat_max_steer = arr(lambda p: p.controls.lat_planner.params.max_steer)

        # AEBS.
        self._aeb_disabled = np.array(
            [p.aebs.config is AebsConfig.DISABLED for p in self.platforms]
        )
        self._aeb_indep = np.array(
            [p.interventions.aeb is AebsConfig.INDEPENDENT for p in self.platforms]
        )
        ap = lambda f: arr(lambda p: f(p.aebs.params))  # noqa: E731
        self._aeb_driver_decel = ap(lambda m: m.driver_decel)
        self._aeb_reaction = ap(lambda m: m.reaction_time)
        self._aeb_pb1 = ap(lambda m: m.pb1_divisor)
        self._aeb_pb2 = ap(lambda m: m.pb2_divisor)
        self._aeb_fb = ap(lambda m: m.fb_divisor)
        self._aeb_min_speed = ap(lambda m: m.min_speed)
        self._aeb_min_closing = ap(lambda m: m.min_closing)
        self._aeb_release_margin = ap(lambda m: m.release_margin)
        self._aeb_release_sustain = ap(lambda m: m.release_sustain)
        self._aeb_standstill_hold = ap(lambda m: m.standstill_hold)
        self._aeb_hold_gap = ap(lambda m: m.hold_gap)
        frac_width = max(
            3, max(len(p.aebs.params.brake_fractions) for p in self.platforms)
        )
        fracs = np.zeros((n, frac_width))
        for i, p in enumerate(self.platforms):
            row = list(p.aebs.params.brake_fractions)
            row += [row[-1]] * (frac_width - len(row))
            fracs[i] = row
        self._aeb_fractions = fracs

        # LDW.
        self._ldw_dist = arr(lambda p: p.ldw.params.distance_threshold)
        self._ldw_ttc = arr(lambda p: p.ldw.params.time_to_crossing)
        self._ldw_min_speed = arr(lambda p: p.ldw.params.min_speed)

        # Safety checker (inside the arbitrator) + arbitration knobs.
        self._has_checker = np.array(
            [p.arbitrator.checker is not None for p in self.platforms]
        )

        def chk(f, default: float) -> np.ndarray:
            return np.array(
                [
                    float(f(p.arbitrator.checker.params))
                    if p.arbitrator.checker is not None
                    else default
                    for p in self.platforms
                ]
            )

        self._chk_max_accel = chk(lambda m: m.max_accel, 0.0)
        self._chk_min_accel = chk(lambda m: m.min_accel, 0.0)
        self._chk_max_steer = chk(lambda m: m.max_steer, 0.0)
        self._chk_steer_rate = chk(lambda m: m.max_steer_rate, 0.0)
        self._aeb_overrides = np.array(
            [p.arbitrator.config.aeb_overrides_driver for p in self.platforms]
        )
        self._brake_auth = arr(
            lambda p: p.world.ego.powertrain.params.adas_brake_authority
        )

        # Per-lane scalar hooks.
        self._has_driver = [p.driver is not None for p in self.platforms]
        self._fi_enabled = [p.fi.enabled for p in self.platforms]

        # Driver-trigger thresholds for the vectorized idle screen
        # (values are never consulted for lanes without a driver model).
        def drv(get):
            return np.array(
                [
                    get(p.driver.params) if p.driver is not None else 0.0
                    for p in self.platforms
                ]
            )

        self._drv_visual_ttc = drv(lambda q: q.visual_ttc)
        self._drv_speed_limit = drv(lambda q: q.speed_limit)
        self._drv_unsafe_gap = drv(lambda q: q.unsafe_gap)
        self._drv_ua_gap = drv(lambda q: q.unexpected_accel_gap)
        self._drv_lane_thresh = drv(lambda q: q.lane_distance_threshold)
        self._drv_idle = np.array(
            [
                p.driver is not None
                and not p.driver._brake_active
                and p.driver._pending_brake_at is None
                and not p.driver._steer_active
                and p.driver._pending_steer_at is None
                for p in self.platforms
            ]
        )
        self._drv_idle_action: List[Optional[object]] = [None] * n

        # Intervention-activity recorders (the vectorized `_post_step`):
        # per-channel state blocks, flushed into the EpisodeResult at
        # retire.  Zero state matches a fresh InterventionActivity, and
        # channels a lane never drives (e.g. driver_* without a driver
        # model) stay all-False — state-identical to the scalar path.
        def activity():
            return SimpleNamespace(
                trig=np.zeros(n, dtype=bool),
                first=np.full(n, math.nan),
                dur=np.zeros(n),
                count=np.zeros(n, dtype=np.int64),
                prev=np.zeros(n, dtype=bool),
            )

        self._rec_aeb = activity()
        self._rec_fcw = activity()
        self._rec_drv_brake = activity()
        self._rec_drv_steer = activity()
        self._rec_ml = activity()

        # ---- mutable controller state (full width, global lane index) ----
        self._ff = arr(lambda p: p.perception._ff_curvature)
        self._t_valid = np.array(
            [p.controls.tracker._valid for p in self.platforms]
        )
        self._t_rd = arr(lambda p: p.controls.tracker._rd)
        self._t_rs = arr(lambda p: p.controls.tracker._rs)
        self._t_tss = arr(lambda p: p.controls.tracker._time_since_seen)
        self._braking = np.array(
            [p.controls.long_planner._braking for p in self.platforms]
        )
        self._lat_curv = arr(lambda p: p.controls.lat_planner._curvature)
        self._aeb_phase = np.array(
            [p.aebs._phase for p in self.platforms], dtype=np.int64
        )
        self._aeb_hold = np.array(
            [
                math.nan if p.aebs._hold_until is None else p.aebs._hold_until
                for p in self.platforms
            ]
        )
        self._aeb_rec = np.array(
            [
                math.nan
                if p.aebs._recovered_since is None
                else p.aebs._recovered_since
                for p in self.platforms
            ]
        )
        self._aeb_time = arr(lambda p: p.aebs._time)
        self._chk_last_steer = np.array(
            [
                p.arbitrator.checker._last_steer
                if p.arbitrator.checker is not None
                else 0.0
                for p in self.platforms
            ]
        )
        self._chk_blocked_accel = np.zeros(n, dtype=np.int64)
        self._chk_blocked_steer = np.zeros(n, dtype=np.int64)
        for i, p in enumerate(self.platforms):
            if p.arbitrator.checker is not None:
                self._chk_blocked_accel[i] = p.arbitrator.checker.blocked_accel_count
                self._chk_blocked_steer[i] = p.arbitrator.checker.blocked_steer_count
        self._frozen = np.array(
            [
                math.nan
                if p.arbitrator._frozen_steer is None
                else p.arbitrator._frozen_steer
                for p in self.platforms
            ]
        )
        self._stat_blocked = np.array(
            [p.arbitrator.stats.aeb_blocked_driver_steps for p in self.platforms],
            dtype=np.int64,
        )
        self._stat_frozen = np.array(
            [
                p.arbitrator.stats.driver_brake_frozen_steer_steps
                for p in self.platforms
            ],
            dtype=np.int64,
        )
        # Last raw ADAS command per lane (ControlsD.last_command parity).
        self._last_adas_accel = np.zeros(n)
        self._last_adas_steer = np.zeros(n)
        # Last *executed* command per lane (`_prev_exec` parity; the ML
        # feature vector reads it, and the scalar path refreshes it every
        # `_post_step`).
        self._prev_accel = arr(lambda p: p._prev_exec.accel)
        self._prev_steer = arr(lambda p: p._prev_exec.steer)

        # Running episode metrics (the ``_accumulate`` + follow-distance
        # part of ``_after_dynamics``), kept as arrays and flushed into the
        # scalar ``EpisodeResult`` at :meth:`retire`.  Initial values are
        # the ``EpisodeResult`` field defaults.
        self._last_brake = np.zeros(n)
        self._acc_min_ttc = np.full(n, math.inf)
        self._acc_min_tfcw = np.full(n, math.inf)
        self._acc_hardest_brake = np.zeros(n)
        self._acc_min_lane = np.full(n, math.inf)
        self._acc_max_speed = np.zeros(n)
        self._acc_follow_sum = np.zeros(n)
        self._acc_follow_count = np.zeros(n, dtype=np.int64)

        # Per-lane standard-normal buffers (draw-order preservation).
        self._rngs = [p.perception._rng for p in self.platforms]
        self._nbuf: List[np.ndarray] = [np.empty(0) for _ in range(n)]
        self._ncur = [0] * n

        self._pos_cache: Dict[Tuple[tuple, tuple], np.ndarray] = {}
        self._param_key: Optional[tuple] = None
        self._param_bound = None

    #: Constant per-lane parameter arrays gathered per active-set key (the
    #: active set only changes when a lane finishes, so memoizing the
    #: fancy-indexing here removes ~45 gathers per step).
    _PARAM_FIELDS = (
        "_det_range", "_blind_range", "_centering_gain", "_heading_gain",
        "_ff_lag", "_rd_noise", "_rs_noise", "_lane_noise", "_curv_noise",
        "_max_curv",
        "_tr_alpha", "_tr_beta", "_tr_coast",
        "_set_speed", "_time_gap", "_min_gap", "_cruise_gain",
        "_cruise_limit", "_approach_trigger", "_approach_margin",
        "_comfort", "_panic_ttc", "_panic_decel", "_max_accel",
        "_lat_smoothing", "_lat_wheelbase", "_lat_max_steer",
        "_aeb_disabled", "_aeb_indep", "_aeb_driver_decel", "_aeb_reaction",
        "_aeb_pb1", "_aeb_pb2", "_aeb_fb", "_aeb_fractions",
        "_aeb_min_speed", "_aeb_min_closing", "_aeb_release_margin",
        "_aeb_release_sustain", "_aeb_standstill_hold", "_aeb_hold_gap",
        "_ldw_dist", "_ldw_ttc", "_ldw_min_speed",
        "_has_checker", "_chk_max_accel", "_chk_min_accel",
        "_chk_max_steer", "_chk_steer_rate",
        "_aeb_overrides", "_brake_auth", "_curv_la",
        "_drv_visual_ttc", "_drv_speed_limit", "_drv_unsafe_gap",
        "_drv_ua_gap", "_drv_lane_thresh",
    )

    def _params_for(self, key: tuple):
        """Per-active-set slices of every constant parameter array."""
        if key == self._param_key and self._param_bound is not None:
            return self._param_bound
        idx = np.asarray(key, dtype=np.intp)
        bound = SimpleNamespace()
        for name in self._PARAM_FIELDS:
            setattr(bound, name, getattr(self, name)[idx])
        self._param_key = key
        self._param_bound = bound
        return bound

    # ------------------------------------------------------------------ #
    # One vectorized control tick
    # ------------------------------------------------------------------ #

    def step_control(self, lanes: Sequence[int]) -> None:
        """Run the control phase for the given (vectorizable) lanes.

        Equivalent to calling ``platform._control_phase`` on each lane;
        requires the dynamics' step caches to be current (``prime`` before
        the first tick, ``step`` thereafter).
        """
        key = tuple(lanes)
        if not key:
            return
        dyn = self.dynamics
        view = dyn.control_view
        if view is None:
            raise RuntimeError(
                "BatchDynamics.prime() must run before step_control()"
            )
        b = dyn._bind(key)
        idx = np.asarray(key, dtype=np.intp)
        pr = self._params_for(key)
        pos = self._view_positions(view.key, key)
        m = len(key)
        now = self.platforms[key[0]].world.time
        dt = self.platforms[key[0]].dt

        speed = b.speed
        d = b.d
        psi = b.psi
        s_arr = b.s
        cur_steer = b.steer

        dist_right = view.dist_right[pos]
        dist_left = view.dist_left[pos]
        lane_center = view.lane_center[pos]
        if view.curvature is not None:
            k_road = view.curvature[pos]
        else:
            k_road = np.array(
                [
                    self.platforms[lane].sensor.road_curvature(la)
                    for lane, la in zip(key, pr._curv_la.tolist())
                ]
            )

        sv = view.leads[dyn.lead_config_index["sensor"]]
        lead_present = sv.valid[pos]
        lead_gap = sv.gap[pos]
        lead_rel = speed - sv.speed[pos]

        # --- 1. Perception heads --------------------------------------- #
        gate = lead_present & (lead_gap <= pr._det_range) & (
            lead_gap >= pr._blind_range
        )
        noise = self._draw_noise(key, gate)
        offset = d - lane_center
        (
            lead_valid,
            rd,
            rs,
            lane_left,
            lane_right,
            k_des,
            ff_next,
        ) = perception_head_arrays(
            dt,
            lead_present,
            lead_gap,
            lead_rel,
            noise,
            dist_right,
            dist_left,
            k_road,
            offset,
            psi,
            self._ff[idx],
            pr._det_range,
            pr._blind_range,
            pr._centering_gain,
            pr._heading_gain,
            pr._ff_lag,
            pr._rd_noise,
            pr._rs_noise,
            pr._lane_noise,
            pr._curv_noise,
            pr._max_curv,
        )

        # --- 2. Fault injection (per-lane trigger hooks) ---------------- #
        fi_sub = [j for j, lane in enumerate(key) if self._fi_enabled[lane]]
        if fi_sub:
            rd_l = rd.tolist()
            curv_l = k_des.tolist()
            lv_l = lead_valid.tolist()
            present_l = lead_present.tolist()
            gap_l = lead_gap.tolist()
            s_l = s_arr.tolist()
            for j in fi_sub:
                fi = self.platforms[key[j]].fi
                true_gap = gap_l[j] if present_l[j] else None
                rd_l[j], curv_l[j] = fi.apply_values(
                    now, lv_l[j], rd_l[j], curv_l[j],
                    true_gap=true_gap, ego_s=s_l[j],
                )
            rd = np.asarray(rd_l)
            k_des = np.asarray(curv_l)

        # --- 3. ADAS control loop (tracker + planners) ------------------ #
        t_valid, t_rd, t_rs, t_tss = tracker_step_arrays(
            self._t_valid[idx],
            self._t_rd[idx],
            self._t_rs[idx],
            self._t_tss[idx],
            lead_valid,
            rd,
            rs,
            dt,
            pr._tr_alpha,
            pr._tr_beta,
            pr._tr_coast,
        )
        adas_accel, braking = long_plan_arrays(
            speed,
            t_valid,
            t_rd,
            t_rs,
            self._braking[idx],
            pr._set_speed,
            pr._time_gap,
            pr._min_gap,
            pr._cruise_gain,
            pr._cruise_limit,
            pr._approach_trigger,
            pr._approach_margin,
            pr._comfort,
            pr._panic_ttc,
            pr._panic_decel,
            pr._max_accel,
        )
        adas_steer, lat_curv = lat_plan_arrays(
            self._lat_curv[idx],
            k_des,
            dt,
            pr._lat_smoothing,
            pr._lat_wheelbase,
            pr._lat_max_steer,
        )

        # --- 4. ML mitigation from fault-free inputs (Algorithm 1) ------ #
        ml_recovery = np.zeros(m, dtype=bool)
        base_in_accel, base_in_steer = adas_accel, adas_steer
        if self.ml is not None:
            ml_sub = [j for j, lane in enumerate(key) if lane in self._ml_set]
            if ml_sub:
                jdx = np.asarray(ml_sub, dtype=np.intp)
                # `_ml_features` reads the *true* sensor lead, not the
                # perceived/attacked one: `min(rd, 120.0)` with Python-min
                # tie semantics, 120.0 when no lead is in range.
                rd_feat = np.where(
                    lead_present[jdx],
                    np_min_pair(lead_gap[jdx], 120.0),
                    120.0,
                )
                features = np.column_stack(
                    (
                        speed[jdx],
                        rd_feat,
                        dist_left[jdx],
                        dist_right[jdx],
                        self._prev_accel[idx[jdx]],
                        self._prev_steer[idx[jdx]],
                    )
                )
                rec_sub, ml_accel, ml_steer = self.ml.step(
                    tuple(key[j] for j in ml_sub),
                    features,
                    adas_accel[jdx],
                    adas_steer[jdx],
                )
                ml_recovery[jdx] = rec_sub
                if rec_sub.any():
                    # Base path selection (arbitrator step 1): the ML
                    # command replaces the ADAS one *before* the checker.
                    base_in_accel = adas_accel.copy()
                    base_in_steer = adas_steer.copy()
                    base_in_accel[jdx] = np.where(
                        rec_sub, ml_accel, adas_accel[jdx]
                    )
                    base_in_steer[jdx] = np.where(
                        rec_sub, ml_steer, adas_steer[jdx]
                    )

        # --- 5. AEBS from its configured source ------------------------- #
        indep = pr._aeb_indep
        ai_valid, ai_rd, ai_rs = t_valid, t_rd, t_rs
        if indep.any():
            cfg_r = dyn.lead_config_index["radar"]
            if cfg_r is not None:
                rv = view.leads[cfg_r]
                r_ok = rv.valid[pos]
                r_gap = rv.gap[pos]
                r_rel = speed - rv.speed[pos]
            else:  # pragma: no cover - executor always registers the radar
                rows = [
                    self.platforms[lane].sensor.radar_lead() for lane in key
                ]
                r_ok = np.array([t is not None for t in rows])
                r_gap = np.array([t.gap if t is not None else 0.0 for t in rows])
                r_rel = np.array(
                    [t.relative_speed if t is not None else 0.0 for t in rows]
                )
            ai_valid = np.where(indep, r_ok, t_valid)
            ai_rd = np.where(indep, np.where(r_ok, r_gap, 0.0), t_rd)
            ai_rs = np.where(indep, np.where(r_ok, r_rel, 0.0), t_rs)
        (
            fcw,
            aeb_out_phase,
            aeb_brake,
            aeb_ttc,
            aeb_phase,
            aeb_hold,
            aeb_rec,
            aeb_time,
        ) = aebs_step_arrays(
            self._aeb_phase[idx],
            self._aeb_hold[idx],
            self._aeb_rec[idx],
            self._aeb_time[idx],
            speed,
            ai_valid,
            ai_rd,
            ai_rs,
            dt,
            pr._aeb_disabled,
            pr._aeb_driver_decel,
            pr._aeb_reaction,
            pr._aeb_pb1,
            pr._aeb_pb2,
            pr._aeb_fb,
            pr._aeb_fractions,
            pr._aeb_min_speed,
            pr._aeb_min_closing,
            pr._aeb_release_margin,
            pr._aeb_release_sustain,
            pr._aeb_standstill_hold,
            pr._aeb_hold_gap,
        )

        # --- 6. LDW + driver hooks -------------------------------------- #
        sin_psi = np.array([math.sin(v) for v in psi.tolist()])
        ldw_active = ldw_arrays(
            dist_right,
            dist_left,
            speed * sin_psi,
            speed,
            pr._ldw_dist,
            pr._ldw_ttc,
            pr._ldw_min_speed,
        )

        driver_actions: List[Optional[object]] = [None] * m
        drv_brake = np.zeros(m, dtype=bool)
        drv_brake_accel = np.zeros(m)
        drv_steer = np.zeros(m, dtype=bool)
        drv_steer_angle = np.zeros(m)
        drv_sub = [j for j, lane in enumerate(key) if self._has_driver[lane]]
        if drv_sub:
            cfg_h = dyn.lead_config_index["human"]
            if cfg_h is not None:
                hv = view.leads[cfg_h]
                h_okm = hv.valid[pos]
                h_gapm = hv.gap[pos]
                h_relm = speed - hv.speed[pos]
                h_ok = h_okm.tolist()
                h_gap = h_gapm.tolist()
                h_rel = h_relm.tolist()
                # Vectorized screen for the Table II triggers: an idle
                # driver whose lane cannot trigger this step skips the
                # scalar state machine (its update() is a provable no-op).
                # The mask over-approximates — unexpected-accel drops the
                # accel term, cut-in is checked scalar below — so it can
                # only cost a redundant update, never skip a real one.
                with np.errstate(divide="ignore", invalid="ignore"):
                    h_ttc = h_gapm / h_relm
                brake_poss = (
                    fcw
                    | (h_okm & (h_relm > 0.3) & (h_ttc < pr._drv_visual_ttc))
                    | (speed > 1.1 * pr._drv_speed_limit)
                    | (h_okm & (h_gapm < pr._drv_unsafe_gap) & (h_relm > -0.5))
                    | (h_okm & (h_gapm < pr._drv_ua_gap) & (h_relm > 0.0))
                )
                steer_poss = ldw_active | (
                    np.minimum(dist_right, dist_left) < pr._drv_lane_thresh
                )
                busy = (
                    brake_poss | steer_poss | ~self._drv_idle[idx]
                ).tolist()
            else:  # pragma: no cover - executor always registers it
                h_ok = h_gap = h_rel = None
                busy = [True] * m
            speed_l = speed.tolist()
            d_l = d.tolist()
            psi_l = psi.tolist()
            dr_l = dist_right.tolist()
            dl_l = dist_left.tolist()
            fcw_l = fcw.tolist()
            ldw_l = ldw_active.tolist()
            aeb_on_l = (aeb_out_phase > 0).tolist()
            # The driver only consumes the cut-in *presence* bit, which the
            # batch screen computes exactly ("some agent matches" is "the
            # scalar scan returns non-None") — no per-lane re-scan needed.
            cut_l = view.cut_in[pos].tolist()
            for j in drv_sub:
                lane = key[j]
                platform = self.platforms[lane]
                drv = platform.driver
                cut = cut_l[j]
                if not busy[j] and not cut:
                    action = self._drv_idle_action[lane]
                    if action is None:
                        action = DriverAction(
                            brake_active=False,
                            brake_accel=0.0,
                            steer_active=False,
                            steer_angle=0.0,
                            brake_reason=drv._brake_reason,
                            steer_reason=drv._steer_reason,
                        )
                        self._drv_idle_action[lane] = action
                    driver_actions[j] = action
                    continue
                ego = platform.world.ego
                if h_ok is None:
                    lead = platform.sensor.lead_human()
                    gap = lead.gap if lead is not None else None
                    closing = lead.relative_speed if lead is not None else 0.0
                else:
                    gap = h_gap[j] if h_ok[j] else None
                    closing = h_rel[j] if h_ok[j] else 0.0
                action = drv.update(
                    DriverView(
                        time=now,
                        ego_speed=speed_l[j],
                        ego_accel=ego.accel,
                        gap=gap,
                        closing=closing,
                        cut_in=cut,
                        dist_right=dr_l[j],
                        dist_left=dl_l[j],
                        lateral_offset=d_l[j]
                        - platform.world.road.lane_center(0),
                        rel_heading=psi_l[j],
                        fcw=fcw_l[j],
                        ldw=ldw_l[j],
                        aeb_active=aeb_on_l[j],
                    )
                )
                self._drv_idle_action[lane] = None
                self._drv_idle[lane] = (
                    not drv._brake_active
                    and drv._pending_brake_at is None
                    and not drv._steer_active
                    and drv._pending_steer_at is None
                )
                driver_actions[j] = action
                drv_brake[j] = action.brake_active
                drv_brake_accel[j] = action.brake_accel
                drv_steer[j] = action.steer_active
                drv_steer_angle[j] = action.steer_angle

        # --- 7. Arbitration (checker + hierarchy) ----------------------- #
        has_chk = pr._has_checker
        base_accel, base_steer = base_in_accel, base_in_steer
        if has_chk.any():
            c_accel, c_steer, c_ba, c_bs = checker_arrays(
                base_in_accel,
                base_in_steer,
                self._chk_last_steer[idx],
                dt,
                pr._chk_max_accel,
                pr._chk_min_accel,
                pr._chk_max_steer,
                pr._chk_steer_rate,
            )
            base_accel = np.where(has_chk, c_accel, base_in_accel)
            base_steer = np.where(has_chk, c_steer, base_in_steer)
            self._chk_last_steer[idx] = np.where(
                has_chk, c_steer, self._chk_last_steer[idx]
            )
            self._chk_blocked_accel[idx] += has_chk & c_ba
            self._chk_blocked_steer[idx] += has_chk & c_bs

        aeb_braking = aeb_out_phase > 0
        frozen = self._frozen[idx]
        frozen = np.where(
            drv_brake & np.isnan(frozen), cur_steer,
            np.where(~drv_brake, math.nan, frozen),
        )
        self._frozen[idx] = frozen

        final_accel = np.where(
            aeb_braking, aeb_brake, np.where(drv_brake, drv_brake_accel, base_accel)
        )
        aeb_over = aeb_braking & pr._aeb_overrides
        self._stat_blocked[idx] += aeb_over & (drv_steer | drv_brake)
        m_frozen = ~aeb_over & drv_brake
        self._stat_frozen[idx] += m_frozen
        m_drv_steer = ~aeb_over & ~drv_brake & drv_steer
        final_steer = np.where(
            m_frozen, frozen, np.where(m_drv_steer, drv_steer_angle, base_steer)
        )
        # Unclaimed channels stay with the base path: "ml" while Algorithm
        # 1 is in recovery, "adas" otherwise (scalar resolve() order).
        base_long = np.where(ml_recovery, 3, 0)
        base_lat = np.where(ml_recovery, 3, 0)
        long_code = np.where(aeb_braking, 2, np.where(drv_brake, 1, base_long))
        lat_code = np.where(m_frozen, 2, np.where(m_drv_steer, 1, base_lat))

        # ACC brake-authority clamp (long authority "adas" *or* "ml" —
        # exactly the lanes neither AEB nor the driver is braking).
        adas_long = ~aeb_braking & ~drv_brake
        neg_auth = -pr._brake_auth
        applied_accel = np.where(
            adas_long,
            np.where(neg_auth > final_accel, neg_auth, final_accel),
            final_accel,
        )

        # --- state write-back + per-lane staging ------------------------ #
        self._ff[idx] = ff_next
        self._t_valid[idx] = t_valid
        self._t_rd[idx] = t_rd
        self._t_rs[idx] = t_rs
        self._t_tss[idx] = t_tss
        self._braking[idx] = braking
        self._lat_curv[idx] = lat_curv
        self._aeb_phase[idx] = aeb_phase
        self._aeb_hold[idx] = aeb_hold
        self._aeb_rec[idx] = aeb_rec
        self._aeb_time[idx] = aeb_time
        self._last_adas_accel[idx] = adas_accel
        self._last_adas_steer[idx] = adas_steer
        # max(0.0, -accel): strictly-negative commands brake; 0.0 and -0.0
        # both map to +0.0, like the scalar max.
        self._last_brake[idx] = np.where(final_accel < 0.0, -final_accel, 0.0)
        self._prev_accel[idx] = final_accel
        self._prev_steer[idx] = final_steer

        # Intervention recorders run on the staged (post-update) outputs,
        # exactly the values the scalar `_post_step` records.
        self._record(self._rec_aeb, idx, aeb_braking, now, dt)
        self._record(self._rec_fcw, idx, fcw, now, dt)
        self._record(self._rec_drv_brake, idx, drv_brake, now, dt)
        self._record(self._rec_drv_steer, idx, drv_steer, now, dt)
        self._record(self._rec_ml, idx, ml_recovery, now, dt)

        fcw_l = fcw.tolist()
        phase_l = aeb_out_phase.tolist()
        brake_l = aeb_brake.tolist()
        ttc_l = aeb_ttc.tolist()
        fa_l = final_accel.tolist()
        fs_l = final_steer.tolist()
        ds_l = m_drv_steer.tolist()
        app_l = applied_accel.tolist()
        lc_l = long_code.tolist()
        tc_l = lat_code.tolist()
        mlr_l = ml_recovery.tolist()
        for j, lane in enumerate(key):
            aebs_state = AebsState(
                fcw=fcw_l[j], phase=phase_l[j], brake_accel=brake_l[j], ttc=ttc_l[j]
            )
            final = FinalCommand(
                accel=fa_l[j],
                steer=fs_l[j],
                driver_steering=ds_l[j],
                long_authority=_LONG_AUTH[lc_l[j]],
                lat_authority=_LAT_AUTH[tc_l[j]],
            )
            self.platforms[lane]._stage_control(
                now, None, aebs_state, driver_actions[j], mlr_l[j], final, app_l[j]
            )

    @staticmethod
    def _record(rec, idx: np.ndarray, active: np.ndarray, now: float, dt: float):
        """One vectorized ``InterventionActivity.record`` step."""
        trig = rec.trig[idx]
        prev = rec.prev[idx]
        rec.first[idx] = np.where(active & ~trig, now, rec.first[idx])
        rec.trig[idx] = trig | active
        rec.count[idx] += active & ~prev
        dur = rec.dur[idx]
        rec.dur[idx] = np.where(active, dur + dt, dur)
        rec.prev[idx] = active

    # ------------------------------------------------------------------ #
    # Post-physics metric accumulation
    # ------------------------------------------------------------------ #

    def accumulate(self, lanes: Sequence[int]) -> None:
        """Fold one post-step frame into the running episode metrics.

        The vectorized twin of ``SimulationPlatform._accumulate`` plus the
        follow-distance accumulation in ``_after_dynamics`` — call after
        ``BatchDynamics.step`` (whose cache populate provides the post-step
        world queries).  Results stay in arrays until :meth:`retire`.
        """
        key = tuple(lanes)
        if not key:
            return
        dyn = self.dynamics
        view = dyn.control_view
        pos = self._view_positions(view.key, key)
        idx = np.asarray(key, dtype=np.intp)
        pr = self._params_for(key)
        speed = dyn._bound.speed[pos]

        sv = view.leads[dyn.lead_config_index["sensor"]]
        l_ok = sv.valid[pos]
        l_gap = sv.gap[pos]
        l_rel = speed - sv.speed[pos]

        with np.errstate(divide="ignore", invalid="ignore"):
            # Guarded: the scalar path divides only behind `rel > 0.3`.
            ttc = l_gap / l_rel
        ttc_seen = l_ok & (l_rel > 0.3)
        acc = self._acc_min_ttc[idx]
        self._acc_min_ttc[idx] = np.where(
            ttc_seen, np_min_pair(acc, ttc), acc
        )
        t_fcw = pr._aeb_reaction + speed / pr._aeb_driver_decel
        self._acc_min_tfcw[idx] = np_min_pair(self._acc_min_tfcw[idx], t_fcw)
        self._acc_hardest_brake[idx] = np_max_pair(
            self._acc_hardest_brake[idx], self._last_brake[idx] / G
        )
        lane_min = np_min_pair(
            np_min_pair(self._acc_min_lane[idx], view.dist_right[pos]),
            view.dist_left[pos],
        )
        self._acc_min_lane[idx] = lane_min
        self._acc_max_speed[idx] = np_max_pair(self._acc_max_speed[idx], speed)

        following = l_ok & (l_gap < 60.0) & (np.abs(l_rel) < 0.75)
        self._acc_follow_sum[idx] += np.where(following, l_gap, 0.0)
        self._acc_follow_count[idx] += following

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _view_positions(self, view_key: tuple, key: tuple) -> np.ndarray:
        """Positions of ``key``'s lanes inside the control view (memoized)."""
        if view_key == key:
            out = np.arange(len(key), dtype=np.intp)
            return out
        cache_key = (view_key, key)
        out = self._pos_cache.get(cache_key)
        if out is None:
            lookup = {lane: i for i, lane in enumerate(view_key)}
            out = np.array([lookup[lane] for lane in key], dtype=np.intp)
            self._pos_cache[cache_key] = out
        return out

    def _draw_noise(self, key: tuple, lead_valid: np.ndarray) -> np.ndarray:
        """Per-lane standard-normal draws for one perception frame.

        5 draws with a valid lead (rd, rs, lane_left, lane_right,
        curvature), 3 without (the scalar path skips the lead head), sliced
        from per-lane pre-drawn blocks so each lane's ``Generator``
        consumes its bit stream exactly as the scalar path would.
        """
        out = np.zeros((len(key), _DRAWS_PER_STEP))
        valid_l = lead_valid.tolist()
        for j, lane in enumerate(key):
            buf = self._nbuf[lane]
            cur = self._ncur[lane]
            if cur + _DRAWS_PER_STEP > buf.shape[0]:
                buf = np.concatenate(
                    (buf[cur:], self._rngs[lane].standard_normal(_NOISE_BLOCK))
                )
                self._nbuf[lane] = buf
                cur = 0
            if valid_l[j]:
                out[j, :] = buf[cur : cur + 5]
                cur += 5
            else:
                out[j, 2:] = buf[cur : cur + 3]
                cur += 3
            self._ncur[lane] = cur
        return out

    def retire(self, lane: int, result=None) -> None:
        """Scatter a finished lane's controller state back onto its objects.

        After this the scalar objects look exactly as if the serial path
        had run the episode (tracker/planner/AEBS/checker/arbitrator state
        and counters included).  When ``result`` is given, the running
        metric accumulators (see :meth:`accumulate`) are flushed into it
        and the follow-distance sums onto the platform, ready for
        ``_finish_episode``.
        """
        p = self.platforms[lane]
        if result is not None:
            result.min_ttc = float(self._acc_min_ttc[lane])
            result.min_tfcw = float(self._acc_min_tfcw[lane])
            result.hardest_brake_fraction = float(self._acc_hardest_brake[lane])
            result.min_lane_distance = float(self._acc_min_lane[lane])
            result.max_speed = float(self._acc_max_speed[lane])
            p._follow_sum = float(self._acc_follow_sum[lane])
            p._follow_count = int(self._acc_follow_count[lane])
            for rec, activity in (
                (self._rec_aeb, result.aeb),
                (self._rec_fcw, result.fcw),
                (self._rec_drv_brake, result.driver_brake),
                (self._rec_drv_steer, result.driver_steer),
                (self._rec_ml, result.ml_recovery),
            ):
                first = float(rec.first[lane])
                activity.triggered = bool(rec.trig[lane])
                activity.first_time = None if math.isnan(first) else first
                activity.active_duration = float(rec.dur[lane])
                activity.activation_count = int(rec.count[lane])
                activity._prev_active = bool(rec.prev[lane])
        p._prev_exec = AdasCommand(
            accel=float(self._prev_accel[lane]),
            steer=float(self._prev_steer[lane]),
        )
        if self.ml is not None:
            self.ml.retire(lane)
        p.perception._ff_curvature = float(self._ff[lane])
        tracker = p.controls.tracker
        tracker._valid = bool(self._t_valid[lane])
        tracker._rd = float(self._t_rd[lane])
        tracker._rs = float(self._t_rs[lane])
        tracker._time_since_seen = float(self._t_tss[lane])
        p.controls.long_planner._braking = bool(self._braking[lane])
        p.controls.lat_planner._curvature = float(self._lat_curv[lane])
        p.controls.last_lead = TrackedLead(
            valid=bool(self._t_valid[lane]),
            rd=float(self._t_rd[lane]),
            rs=float(self._t_rs[lane]),
        )
        p.controls.last_command = AdasCommand(
            accel=float(self._last_adas_accel[lane]),
            steer=float(self._last_adas_steer[lane]),
        )
        aebs = p.aebs
        aebs._phase = int(self._aeb_phase[lane])
        hold = float(self._aeb_hold[lane])
        aebs._hold_until = None if math.isnan(hold) else hold
        rec = float(self._aeb_rec[lane])
        aebs._recovered_since = None if math.isnan(rec) else rec
        aebs._time = float(self._aeb_time[lane])
        arb = p.arbitrator
        frozen = float(self._frozen[lane])
        arb._frozen_steer = None if math.isnan(frozen) else frozen
        arb.stats.aeb_blocked_driver_steps = int(self._stat_blocked[lane])
        arb.stats.driver_brake_frozen_steer_steps = int(self._stat_frozen[lane])
        if arb.checker is not None:
            arb.checker._last_steer = float(self._chk_last_steer[lane])
            arb.checker.blocked_accel_count = int(self._chk_blocked_accel[lane])
            arb.checker.blocked_steer_count = int(self._chk_blocked_steer[lane])
