"""MetaDrive-substitute physical-world simulator.

A 2-D highway world stepped at 100 Hz:

* :mod:`repro.sim.road` — multi-segment road geometry with per-segment
  curvature, arc-length (Frenet) coordinates, and lane bookkeeping.
* :mod:`repro.sim.track` — prebuilt maps (the dry-highway map used by all
  paper scenarios, plus a straight map for tests).
* :mod:`repro.sim.vehicle` — friction-limited kinematic bicycle model for
  the ego vehicle, plus a simpler kinematic actor for traffic.
* :mod:`repro.sim.powertrain` — engine/brake actuation model mapping
  commanded acceleration to achieved acceleration.
* :mod:`repro.sim.agents` — lead-vehicle behaviours (cruise, accelerate,
  decelerate, sudden stop, cut-in, lane-change-away).
* :mod:`repro.sim.world` — actor registry, stepping, collision and
  lane-departure detection.
* :mod:`repro.sim.sensors` — ground-truth measurements (radar-like lead
  range, camera-like lane-line distances).
* :mod:`repro.sim.families` — the pluggable scenario-family registry
  (typed parameter schemas, canonical identities, world constructors).
* :mod:`repro.sim.scenarios` — the paper's S1-S6 NHTSA pre-collision
  scenarios with 60 m / 230 m initial gaps, registered as families.
* :mod:`repro.sim.workloads` — extra registered families: friction
  sweep, curved road, dense traffic.
* :mod:`repro.sim.weather` — road-friction conditions for Table VIII.
"""

from repro.sim.road import Road, RoadSegment
from repro.sim.track import build_highway_map, build_straight_map
from repro.sim.vehicle import EgoVehicle, KinematicActor, VehicleParams
from repro.sim.world import World
from repro.sim.weather import FrictionCondition, FRICTION_CONDITIONS
from repro.sim.families import (
    ParamSpec,
    ScenarioFamily,
    UnknownScenarioError,
    family_catalog,
    get_family,
    lead_start_s,
    register_family,
    registered_families,
)
from repro.sim.scenarios import (
    SCENARIO_IDS,
    ScenarioConfig,
    build_scenario,
    scenario_catalog,
)
from repro.sim import workloads as _workloads  # noqa: F401  (registers the extra families)

__all__ = [
    "Road",
    "RoadSegment",
    "build_highway_map",
    "build_straight_map",
    "EgoVehicle",
    "KinematicActor",
    "VehicleParams",
    "World",
    "FrictionCondition",
    "FRICTION_CONDITIONS",
    "SCENARIO_IDS",
    "ScenarioConfig",
    "build_scenario",
    "scenario_catalog",
    "ParamSpec",
    "ScenarioFamily",
    "UnknownScenarioError",
    "family_catalog",
    "get_family",
    "lead_start_s",
    "register_family",
    "registered_families",
]
