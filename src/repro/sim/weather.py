"""Road-friction (weather) conditions.

MetaDrive exposes no lighting interface usable with OpenPilot (the paper,
Section IV-E5), so — exactly like the paper — weather is modelled purely as
a road-friction scale factor:

* default (dry):      mu = 1.00   (full braking decelerates at ~1 g,
  matching the paper's ``t_fb = V / 9.8`` full-brake threshold)
* 25 % off (wet):     mu = 0.75
* 50 % off (heavy rain): mu = 0.50
* 75 % off (icy):     mu = 0.25

Friction caps both the achievable braking deceleration and the lateral
(cornering) acceleration through the vehicle model's friction circle, which
is what makes curvature attacks collapse on ice (the paper's Table VIII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils.units import G


@dataclass(frozen=True)
class FrictionCondition:
    """A named road-friction level.

    Attributes:
        name: human-readable label, also the campaign key.
        mu: friction coefficient scale (1.0 = dry asphalt).
    """

    name: str
    mu: float

    def __post_init__(self) -> None:
        if not 0.0 < self.mu <= 1.2:
            raise ValueError(f"mu must be in (0, 1.2], got {self.mu}")

    @property
    def max_deceleration(self) -> float:
        """Maximum braking deceleration [m/s^2] on this surface."""
        return self.mu * G

    @property
    def max_lateral_acceleration(self) -> float:
        """Maximum cornering acceleration [m/s^2] on this surface."""
        return self.mu * G


#: The four conditions evaluated in the paper's Table VIII, keyed by the
#: labels used in that table.
FRICTION_CONDITIONS: Dict[str, FrictionCondition] = {
    "default": FrictionCondition("default", 1.0),
    "25% off": FrictionCondition("25% off", 0.75),
    "50% off": FrictionCondition("50% off", 0.50),
    "75% off": FrictionCondition("75% off", 0.25),
}
