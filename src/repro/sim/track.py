"""Prebuilt maps.

The paper runs every scenario on a "dry highway map" containing both
straight and curvy stretches ("to ensure the ego vehicle catches up with the
lead vehicle on straight and curvy roads").  :func:`build_highway_map`
recreates that layout: long straights interleaved with sweeping highway
curves (radii 250-350 m) in both directions, ~3.6 km total so a 100 s
episode at 50 mph never runs off the end.
"""

from __future__ import annotations

from repro.sim.road import Road, RoadSegment


def build_highway_map(num_lanes: int = 2, lane_width: float = 3.7) -> Road:
    """The dry-highway evaluation map used by scenarios S1-S6.

    Layout (arc lengths in metres, positive curvature = left):

    ======  ========  =============
    start   length    curvature
    ======  ========  =============
    0       400       0 (straight)
    400     350       +1/300 (left)
    750     250       0
    1000    300       -1/250 (right)
    1300    400       0
    1700    300       +1/350 (left)
    2000    600       0
    2600    350       -1/300 (right)
    2950    650       0
    ======  ========  =============

    The first curve begins at s = 400 m: an ego starting at s = 0 with a
    230 m initial gap catches the lead vehicle on or near a curve, while a
    60 m gap closes on the opening straight — reproducing the paper's mix
    of straight-road and curvy-road encounters.
    """
    segments = [
        RoadSegment(400.0, 0.0),
        RoadSegment(350.0, 1.0 / 300.0),
        RoadSegment(250.0, 0.0),
        RoadSegment(300.0, -1.0 / 250.0),
        RoadSegment(400.0, 0.0),
        RoadSegment(300.0, 1.0 / 350.0),
        RoadSegment(600.0, 0.0),
        RoadSegment(350.0, -1.0 / 300.0),
        RoadSegment(650.0, 0.0),
    ]
    return Road(segments, num_lanes=num_lanes, lane_width=lane_width)


def build_straight_map(
    length: float = 5000.0, num_lanes: int = 2, lane_width: float = 3.7
) -> Road:
    """A single long straight, used by unit tests and controller tuning."""
    return Road([RoadSegment(length, 0.0)], num_lanes=num_lanes, lane_width=lane_width)
