"""Extra scenario families beyond the paper grid.

Three workloads exercising sim capability the paper's S1-S6 grid leaves
idle, registered as :class:`~repro.sim.families.ScenarioFamily` plugins
(see :mod:`repro.sim.families`):

* **friction-sweep** — a lead suddenly brakes on wet/icy tarmac; ``mu``
  is a first-class continuous axis (the paper's Table VIII only reaches
  friction through a campaign-wide override).
* **curved-road** — a slow lead parked on a long constant curve of
  configurable radius; stresses lateral grip and lane keeping the way
  physical-world lane-keeping attacks do (Sato et al.).
* **dense-traffic** — a platoon of ``n_vehicles`` mixed-behaviour
  vehicles (cruise, slow-down, sudden stop, adjacent-lane cut-in) built
  from :mod:`repro.sim.agents`.

Every family builds deterministically from ``(params, seed)``: all
jitter comes from the seeded per-scenario RNG stream, exactly like the
paper families.
"""

from __future__ import annotations

from repro.sim.agents import (
    AgentBinding,
    CruiseBehavior,
    CutInBehavior,
    SpeedChangeBehavior,
    SuddenStopBehavior,
)
from repro.sim.families import (
    ParamSpec,
    ScenarioFamily,
    lead_start_s,
    register_family,
    scenario_base,
)
from repro.sim.road import Road, RoadSegment
from repro.sim.scenarios import ScenarioConfig
from repro.sim.vehicle import KinematicActor
from repro.sim.weather import FrictionCondition
from repro.sim.world import World
from repro.utils.units import mph_to_ms

__all__ = [
    "FrictionSweepFamily",
    "CurvedRoadFamily",
    "DenseTrafficFamily",
    "WORKLOAD_FAMILIES",
]


class FrictionSweepFamily(ScenarioFamily):
    """Sudden-stop lead on a surface of configurable grip.

    The S4 pre-collision geometry — the hardest stop in the paper grid —
    replayed across the friction range: ``mu`` caps both the lead's and
    the ego's achievable deceleration through the friction circle, so
    the same commanded stop produces very different stopping distances.
    """

    family_id = "friction-sweep"
    title = "Sudden-stop lead on a wet/icy surface (mu is a sweep axis)."
    params = (
        ParamSpec(
            "mu",
            kind="float",
            default=0.5,
            minimum=0.05,
            maximum=1.2,
            help="road friction coefficient scale (1.0 = dry asphalt)",
        ),
        ParamSpec(
            "lead_mph",
            kind="float",
            default=30.0,
            minimum=5.0,
            maximum=70.0,
            help="lead cruise speed before the stop [mph]",
        ),
    )
    default_initial_gaps = (60.0,)
    report_axes = (("mu", (0.75, 0.5, 0.25)),)

    def build(self, config: ScenarioConfig) -> World:
        params = dict(config.params)
        mu = params["mu"]
        surface = FrictionCondition(f"mu={mu:g}", mu)
        world, rng, jit = scenario_base(config, friction=surface)
        lead_s = lead_start_s(world.ego, config.initial_gap + jit(4.0))
        v_lead = mph_to_ms(params["lead_mph"]) + jit(0.45)
        lv = KinematicActor(world.road, s=lead_s, d=0.0, speed=v_lead, name="LV")
        # The stop itself is friction-clamped by the actor dynamics: on
        # ice the lead physically cannot realise 6.5 m/s^2.
        behavior = SuddenStopBehavior(
            speed=v_lead, trigger_gap=72.0 + jit(8.0), decel=6.5
        )
        world.add_agent(AgentBinding(lv, behavior))
        return world


class CurvedRoadFamily(ScenarioFamily):
    """Catch a slow lead on a long constant-radius curve.

    The paper's highway map only sweeps 250-350 m radii; this family
    makes curvature a first-class axis (down to tight 15 m-radius ramp
    geometry) so lane-keeping interventions are stressed where lateral
    grip actually runs out.
    """

    family_id = "curved-road"
    title = "Slow lead encountered on a constant curve of configurable radius."
    params = (
        ParamSpec(
            "curve_radius",
            kind="float",
            default=150.0,
            minimum=15.0,
            maximum=1000.0,
            help="curve radius [m] (highway sweeps are 250-350 m)",
        ),
        ParamSpec(
            "direction",
            kind="str",
            default="left",
            choices=("left", "right"),
            help="curve direction",
        ),
        ParamSpec(
            "lead_mph",
            kind="float",
            default=30.0,
            minimum=5.0,
            maximum=70.0,
            help="lead cruise speed [mph]",
        ),
    )
    default_initial_gaps = (60.0,)
    report_axes = (("curve_radius", (300.0, 150.0, 80.0)),)

    def build(self, config: ScenarioConfig) -> World:
        params = dict(config.params)
        radius = params["curve_radius"]
        sign = 1.0 if params["direction"] == "left" else -1.0
        # Entry straight short enough that a 60 m gap closes *on* the
        # curve; the arc is long enough that a 100 s episode at 50 mph
        # (~2.2 km) never runs off its end.
        road = Road(
            [
                RoadSegment(150.0, 0.0),
                RoadSegment(1800.0, sign / radius),
                RoadSegment(1500.0, 0.0),
            ]
        )
        world, rng, jit = scenario_base(config, road=road)
        lead_s = lead_start_s(world.ego, config.initial_gap + jit(4.0))
        v_lead = mph_to_ms(params["lead_mph"]) + jit(0.45)
        lv = KinematicActor(road, s=lead_s, d=0.0, speed=v_lead, name="LV")
        world.add_agent(AgentBinding(lv, CruiseBehavior(v_lead)))
        return world


class DenseTrafficFamily(ScenarioFamily):
    """A platoon of mixed-behaviour traffic ahead of the ego.

    ``n_vehicles`` actors populate the ego lane (plus one adjacent-lane
    cut-in vehicle when the platoon is three or more strong): the nearest
    suddenly stops, the ones behind it alternate cruising and slowing
    down — a compound version of the paper's S4/S5 interactions.
    """

    family_id = "dense-traffic"
    title = "Mixed-behaviour platoon: sudden stop, slow-downs and a cut-in."
    params = (
        ParamSpec(
            "n_vehicles",
            kind="int",
            default=4,
            minimum=2,
            maximum=8,
            help="number of traffic vehicles",
        ),
        ParamSpec(
            "spacing",
            kind="float",
            default=35.0,
            minimum=15.0,
            maximum=120.0,
            help="nominal bumper spacing inside the platoon [m]",
        ),
        ParamSpec(
            "lead_mph",
            kind="float",
            default=30.0,
            minimum=5.0,
            maximum=70.0,
            help="platoon cruise speed [mph]",
        ),
    )
    default_initial_gaps = (60.0,)
    report_axes = (("n_vehicles", (2, 4, 6)),)

    def build(self, config: ScenarioConfig) -> World:
        params = dict(config.params)
        world, rng, jit = scenario_base(config)
        road, ego = world.road, world.ego
        n = params["n_vehicles"]
        spacing = params["spacing"]
        gap = config.initial_gap + jit(4.0)
        v_base = mph_to_ms(params["lead_mph"])

        s = lead_start_s(ego, gap)
        for index in range(n):
            speed = v_base + jit(0.45)
            actor = KinematicActor(road, s=s, d=0.0, speed=speed, name=f"T{index}")
            if index == 0:
                behavior = SuddenStopBehavior(
                    speed=speed, trigger_gap=60.0 + jit(6.0), decel=5.5
                )
            elif index % 2 == 1:
                behavior = SpeedChangeBehavior(
                    initial_speed=speed,
                    final_speed=max(0.5 * speed, speed - 4.0),
                    trigger_gap=spacing + 20.0 + jit(4.0),
                    rate=1.5,
                )
            else:
                behavior = CruiseBehavior(speed)
            world.add_agent(AgentBinding(actor, behavior))
            s += spacing + jit(3.0) + actor.params.length

        if n >= 3 and road.num_lanes > 1:
            # One merger from the adjacent lane, between the two nearest
            # platoon vehicles — the S5 interaction inside dense traffic.
            cut_speed = v_base + 1.0 + jit(0.45)
            cut = KinematicActor(
                road,
                s=ego.front_s + gap + 0.6 * spacing,
                d=road.lane_center(1),
                speed=cut_speed,
                name="CutIn",
            )
            cut.lane_change_rate = 0.9
            world.add_agent(
                AgentBinding(
                    cut, CutInBehavior(speed=cut_speed, trigger_gap=28.0 + jit(3.0))
                )
            )
        return world


#: The extra workload families, in registration order.
WORKLOAD_FAMILIES = (
    FrictionSweepFamily(),
    CurvedRoadFamily(),
    DenseTrafficFamily(),
)

# replace=True keeps module re-imports idempotent (see scenarios.py).
for _family in WORKLOAD_FAMILIES:
    register_family(_family, replace=True)
