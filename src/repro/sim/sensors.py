"""Ground-truth sensing.

Everything the perception surrogate, the independent-sensor AEBS, and the
driver model know about the world flows through :class:`GroundTruthSensor`.
It reports *physical truth*; imperfection (noise, the close-range camera
blind spot, adversarial faults) is layered on top by
:mod:`repro.adas.perception` and :mod:`repro.attacks`.

The paper's AEBS configuration (3) — "activated and utilizes inputs from an
independent, secure data source" — reads this sensor directly, which is
exactly why it survives perception attacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.world import World

#: Lateral half-width [m] of the independent AEBS radar's tracking
#: corridor (see :meth:`GroundTruthSensor.radar_lead`).
RADAR_CORRIDOR = 3.5

#: Lateral half-width [m] of the human driver's visual lead corridor
#: (see :meth:`GroundTruthSensor.lead_human`).
HUMAN_CORRIDOR = 3.2

#: Default longitudinal search range [m] of the cut-in scan (see
#: :meth:`GroundTruthSensor.cut_in`); the batch engine pre-computes the
#: scan for exactly this range.
CUT_IN_GAP_RANGE = 60.0


@dataclass(frozen=True)
class LeadMeasurement:
    """Ground-truth state of the in-lane lead vehicle.

    Attributes:
        gap: bumper-to-bumper relative distance RD [m].
        relative_speed: closing speed RS = v_ego - v_lead [m/s]
            (positive when closing).
        lead_speed: lead vehicle speed [m/s].
        lateral_offset: lead centre offset from the ego lane centre [m].
    """

    gap: float
    relative_speed: float
    lead_speed: float
    lateral_offset: float


@dataclass(frozen=True)
class CutInObservation:
    """An adjacent-lane vehicle moving into the ego lane.

    Attributes:
        gap: longitudinal bumper gap to the encroaching vehicle [m].
        lateral_distance: remaining lateral distance to the ego lane
            centre [m].
    """

    gap: float
    lateral_distance: float


class GroundTruthSensor:
    """Physical-truth measurements of the world around the ego vehicle."""

    def __init__(self, world: World, max_range: float = 250.0) -> None:
        if max_range <= 0.0:
            raise ValueError(f"max_range must be positive, got {max_range}")
        self.world = world
        self.max_range = max_range
        self._cache_time = -1.0
        self._cache_lead: Optional[LeadMeasurement] = None

    def lead(self) -> Optional[LeadMeasurement]:
        """The in-lane lead vehicle, or None if none is in range.

        The measurement is cached per world timestamp: several platform
        components (perception, fault injection, AEBS, driver, hazards)
        query it each 100 Hz step.
        """
        if self.world.time == self._cache_time:
            return self._cache_lead
        actor = self.world.lead_actor(self.max_range)
        if actor is None:
            measurement = None
        else:
            ego = self.world.ego
            measurement = LeadMeasurement(
                gap=max(0.0, actor.rear_s - ego.front_s),
                relative_speed=ego.speed - actor.speed,
                lead_speed=actor.speed,
                lateral_offset=actor.d - self.world.road.lane_center(0),
            )
        self._cache_time = self.world.time
        self._cache_lead = measurement
        return measurement

    def radar_lead(
        self, corridor: float = RADAR_CORRIDOR
    ) -> Optional[LeadMeasurement]:
        """The lead as an independent AEBS radar tracks it.

        Radar object tracking locks onto the threat vehicle and keeps it
        while there is any body overlap in the field of view — it does not
        drop the object just because the (drifting) ego has left its lane.
        This wide corridor is why AEB "prevents the ego vehicle from
        driving out of the lane" in the paper: the re-acceleration toward
        the lead during a drift keeps the radar threat alive and triggers
        braking to a standstill.
        """
        actor = self.world.lead_actor(self.max_range, corridor=corridor)
        if actor is None:
            return None
        ego = self.world.ego
        return LeadMeasurement(
            gap=max(0.0, actor.rear_s - ego.front_s),
            relative_speed=ego.speed - actor.speed,
            lead_speed=actor.speed,
            lateral_offset=actor.d - self.world.road.lane_center(0),
        )

    def lead_human(
        self, corridor: float = HUMAN_CORRIDOR
    ) -> Optional[LeadMeasurement]:
        """The lead as a *human driver* sees it (wide visual corridor).

        A driver looking through the windshield keeps seeing the vehicle
        ahead even when the lane-bound perception stack has dropped it
        (e.g. during an attack-induced drift), so the driver model's
        triggers use this wider query.
        """
        actor = self.world.lead_actor(self.max_range, corridor=corridor)
        if actor is None:
            return None
        ego = self.world.ego
        return LeadMeasurement(
            gap=max(0.0, actor.rear_s - ego.front_s),
            relative_speed=ego.speed - actor.speed,
            lead_speed=actor.speed,
            lateral_offset=actor.d - self.world.road.lane_center(0),
        )

    def cut_in(
        self, gap_range: float = CUT_IN_GAP_RANGE
    ) -> Optional[CutInObservation]:
        """Detect a vehicle encroaching from an adjacent lane.

        A driver notices a cut-in when a nearby adjacent-lane vehicle has
        visible lateral motion toward the ego lane (Table II's "Other
        Vehicle Cutting in" trigger).

        The batch engine screens this scan lane-wide and caches a ``None``
        for every lane where no agent can match; only mask-flagged lanes
        fall through to the per-agent loop below (whose first-match order
        the screen cannot reproduce, only predict the existence of).
        """
        world = self.world
        cache = world._step_cache
        if cache is not None and cache["time"] == world.time:
            try:
                return cache[("cut_in", gap_range)]
            except KeyError:
                pass
        ego = self.world.ego
        lane_half = 0.5 * self.world.road.lane_width
        for binding in self.world.agents:
            actor = binding.actor
            offset = abs(actor.d - ego.d)
            if offset <= lane_half:
                continue  # already in-lane: that is a lead, not a cut-in
            gap = actor.rear_s - ego.front_s
            if not -5.0 < gap < gap_range:
                continue
            moving_in = (actor.d_target - actor.d) * (ego.d - actor.d) > 0.0
            if moving_in and abs(actor.d_target - actor.d) > 0.3:
                return CutInObservation(gap=max(gap, 0.0), lateral_distance=offset)
        return None

    def lane_line_distances(self) -> tuple:
        """``(right, left)`` body-side distances to the ego lane lines [m]."""
        return self.world.lane_line_distances()

    def road_curvature(self, lookahead: float = 30.0) -> float:
        """Mean road curvature ahead of the ego [1/m]."""
        world = self.world
        cache = world._step_cache
        if cache is not None and cache["time"] == world.time:
            try:
                return cache[("curvature_ahead", lookahead)]
            except KeyError:
                pass
        return world.road.curvature_ahead(world.ego.s, lookahead)
