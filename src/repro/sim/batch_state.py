"""Structure-of-arrays batch stepping: N worlds advance in lockstep.

:class:`BatchDynamics` replaces the per-object ``World.step`` hot loop for a
*batch* of episodes: per control tick it gathers every lane's dynamic state
(ego bicycle model, powertrain lag, traffic actors) into flat NumPy arrays,
integrates all lanes with vectorized float64 arithmetic, and scatters the
state back onto the per-lane objects.  It then pre-computes the pure world
queries the control stack issues every step — lead selection for each
sensor corridor, lane-line distances, look-ahead road curvature — for all
lanes at once and deposits them in each world's ``_step_cache``, which the
per-lane query methods consult before falling back to their scalar scans.

Everything *else* — collision/departure detection, the whole
perception/control/safety stack — keeps running on the ordinary per-lane
objects, which is what makes the batch path produce **bit-identical**
episode results to the serial path:

* behaviours run through :class:`repro.sim.batch_agents.BehaviorBatch`,
  which replicates the built-in behaviour set as array expressions (and
  falls back to the scalar per-actor loop on lanes with unknown
  behaviours); the resulting ``accel_cmd`` / ``d_target`` are scattered
  back onto the actors every step, exactly as in ``World.step``;
* the vectorized math uses only IEEE-754 elementwise operations
  (``+ - * / sqrt copysign abs`` and comparisons), which NumPy evaluates
  bit-identically to the scalar Python expressions they replace;
* transcendentals (``tan``/``sin``/``cos``) are **not** IEEE-pinned across
  libm and SIMD implementations, so they stay per-lane ``math`` calls;
* branch constructs (``clamp``, ``rate_limit``, guarded ``sqrt``,
  ``interp1d``, the lead-selection scan) are replicated with ``np.where``
  selections that preserve the exact branch semantics, including
  signed-zero behaviour and first/best-match ordering;
* collision / departure detection calls the world's own detectors, so
  event construction and latch ordering cannot drift.

The speedup comes from amortising Python bytecode and function-call
overhead of the per-step float math and world queries across all lanes at
once; see ``benchmarks/bench_platform_speed.py``.
"""

from __future__ import annotations

import math
from types import SimpleNamespace
from typing import List, Optional, Sequence

import numpy as np

from repro.sim.batch_agents import BehaviorBatch
from repro.sim.sensors import CUT_IN_GAP_RANGE, HUMAN_CORRIDOR, RADAR_CORRIDOR
from repro.sim.world import World
from repro.utils.npmath import (
    np_clamp as _np_clamp,
    np_rate_limit as _np_rate_limit,
    np_sqrt_pos as _np_sqrt_pos,
)
from repro.utils.units import G

#: Default ``max_range`` of :meth:`World.lead_actor` (hazard monitors and
#: ``lead_gap`` call it with no arguments).
_LEAD_RANGE_DEFAULT = 250.0


class BatchDynamics:
    """Lockstep integrator for a fixed set of worlds.

    Args:
        worlds: the per-episode worlds.  Their parameter tables (vehicle,
            powertrain, road geometry, friction) are frozen into arrays at
            construction; per-step state is gathered/scattered on every
            :meth:`step`, so lanes may be stepped in any active subset.
        curvature_lookaheads: per-lane perception curvature look-ahead [m];
            when given, the look-ahead curvature query is pre-computed per
            step (``GroundTruthSensor.road_curvature`` picks it up from the
            step cache).
        lead_max_ranges: per-lane sensor ``max_range`` [m]; extends the
            pre-computed lead queries beyond the world default.
        radar_leads: also pre-compute the independent-radar lead corridor
            (an AEBS INDEPENDENT arm is present).
        human_leads: also pre-compute the human-vision lead corridor (a
            driver model is present).

    Raises:
        ValueError: on an empty batch or a non-positive friction ``mu``
            (the same condition ``EgoVehicle.step`` rejects).
    """

    def __init__(
        self,
        worlds: Sequence[World],
        *,
        curvature_lookaheads: Optional[Sequence[float]] = None,
        lead_max_ranges: Optional[Sequence[float]] = None,
        radar_leads: bool = False,
        human_leads: bool = False,
    ) -> None:
        if not worlds:
            raise ValueError("BatchDynamics needs at least one world")
        self.worlds: List[World] = list(worlds)
        for world in self.worlds:
            if world.friction.mu <= 0.0:
                raise ValueError(f"mu must be positive, got {world.friction.mu}")
        egos = [w.ego for w in self.worlds]
        n = len(egos)

        self._mu = np.array([w.friction.mu for w in self.worlds])
        self._wheelbase = np.array([e.params.wheelbase for e in egos])
        self._adas_rate = np.array([e.params.adas_steer_rate for e in egos])
        self._driver_rate = np.array([e.params.driver_steer_rate for e in egos])
        self._lat_frac = np.array([e.params.lateral_friction_fraction for e in egos])
        self._emergency_decel = np.array([e.EMERGENCY_BRAKE_DECEL for e in egos])
        self._ego_half_len = np.array([0.5 * e.params.length for e in egos])
        self._ego_half_wid = np.array([0.5 * e.params.width for e in egos])

        pt = [e.powertrain.params for e in egos]
        knot_count = max(len(p.engine_speed_knots) for p in pt)
        # Knot tables are padded to a shared width: +inf speeds with the
        # last acceleration value repeated, which is exactly the clamped
        # out-of-range behaviour of ``mathx.interp1d``.
        eng_xs = np.full((n, knot_count), np.inf)
        eng_ys = np.zeros((n, knot_count))
        for i, params in enumerate(pt):
            k = len(params.engine_speed_knots)
            eng_xs[i, :k] = params.engine_speed_knots
            eng_ys[i, :k] = params.engine_accel_knots
            eng_ys[i, k:] = params.engine_accel_knots[-1]
        self._eng_xs = eng_xs
        self._eng_ys = eng_ys
        self._eng_x_last = np.array([p.engine_speed_knots[-1] for p in pt])
        self._eng_y_last = np.array([p.engine_accel_knots[-1] for p in pt])
        self._max_brake = np.array([p.max_brake_decel for p in pt])
        self._brake_lag = np.array([p.brake_lag for p in pt])
        self._roll_res = np.array([p.rolling_resistance for p in pt])
        self._drag_coef = np.array([p.drag_coefficient for p in pt])

        roads = [w.road for w in self.worlds]
        seg_count = max(len(r.segments) for r in roads)
        # Segment-start tables padded with +inf so padded columns never
        # match the ``start <= s`` count used to replicate bisect_right.
        starts = np.full((n, seg_count), np.inf)
        curv = np.zeros((n, seg_count))
        for i, road in enumerate(roads):
            k = len(road.segments)
            starts[i, :k] = road._starts
            curv[i, :k] = [seg.curvature for seg in road.segments]
            curv[i, k:] = road.segments[-1].curvature
        self._seg_starts = starts
        self._seg_curv = curv
        self._seg_n = np.array([len(r.segments) for r in roads])
        self._road_len = np.array([r.length for r in roads])
        self._lane_width = np.array([r.lane_width for r in roads])
        self._max_lane = np.array([float(r.num_lanes - 1) for r in roads])

        # Traffic actor slots (agent lists are fixed after scenario build).
        self._actors_by_lane = [[b.actor for b in w.agents] for w in self.worlds]
        self._slot_len_by_lane = [
            [a.params.length for a in actors] for actors in self._actors_by_lane
        ]
        # Vectorized behaviour updates (scalar fallback per unknown lane).
        self.behaviors = BehaviorBatch(self.worlds)

        # Lead-query configurations to pre-compute each step, as per-lane
        # (max_range, corridor) pairs.  Deduplicated so the common case
        # (sensor max_range == world default) costs one scan.
        corr_default = np.array([float(w.LEAD_CORRIDOR) for w in self.worlds])
        range_default = np.full(n, _LEAD_RANGE_DEFAULT)
        configs = [(range_default, corr_default)]

        def _config_index(mr: np.ndarray, corr: np.ndarray) -> int:
            for k, (have_mr, have_corr) in enumerate(configs):
                if np.array_equal(have_mr, mr) and np.array_equal(have_corr, corr):
                    return k
            configs.append((mr, corr))
            return len(configs) - 1

        sensor_range = range_default
        if lead_max_ranges is not None:
            sensor_range = np.array([float(v) for v in lead_max_ranges])
        # Named indices into the per-step lead pre-computation, so the
        # batch control stack can read each corridor's result directly
        # from the control view (see :attr:`control_view`).
        self.lead_config_index = {
            "sensor": _config_index(sensor_range, corr_default),
            "radar": (
                _config_index(sensor_range, np.full(n, RADAR_CORRIDOR))
                if radar_leads
                else None
            ),
            "human": (
                _config_index(sensor_range, np.full(n, HUMAN_CORRIDOR))
                if human_leads
                else None
            ),
        }
        self._lead_configs = [
            (mr, corr, [("lead", mr_i, corr_i) for mr_i, corr_i in zip(mr.tolist(), corr.tolist())])
            for mr, corr in configs
        ]

        self._curv_la = (
            np.array([float(v) for v in curvature_lookaheads])
            if curvature_lookaheads is not None
            else None
        )

        self._bound_key: Optional[tuple] = None
        self._bound: Optional[SimpleNamespace] = None
        #: Array view of the latest :meth:`_populate_caches` pass (the
        #: same values deposited in the per-world step caches, kept as
        #: arrays for the batch control stack).  ``None`` until the first
        #: :meth:`step` or :meth:`prime`.
        self.control_view: Optional[SimpleNamespace] = None

    # ------------------------------------------------------------------ #
    # Active-set binding (constant tables gathered per active subset)
    # ------------------------------------------------------------------ #

    def _bind(self, lanes: Sequence[int]) -> SimpleNamespace:
        """Gather constant tables for an active-lane subset (memoized).

        The active set only changes when a lane finishes, so the fancy
        indexing here runs a handful of times per campaign instead of once
        per step.
        """
        key = tuple(lanes)
        if key == self._bound_key and self._bound is not None:
            return self._bound
        idx = np.asarray(key, dtype=np.intp)
        b = SimpleNamespace()
        b.worlds = [self.worlds[i] for i in key]
        b.egos = [w.ego for w in b.worlds]
        b.mu_g = self._mu[idx] * G
        b.wheelbase = self._wheelbase[idx]
        b.adas_rate = self._adas_rate[idx]
        b.driver_rate = self._driver_rate[idx]
        b.lat_frac = self._lat_frac[idx]
        b.emergency_decel = self._emergency_decel[idx]
        b.ego_half_len = self._ego_half_len[idx]
        b.ego_half_wid = self._ego_half_wid[idx]
        b.eng_xs = self._eng_xs[idx]
        b.eng_ys = self._eng_ys[idx]
        b.eng_x_last = self._eng_x_last[idx]
        b.eng_y_last = self._eng_y_last[idx]
        b.max_brake = self._max_brake[idx]
        b.brake_lag = self._brake_lag[idx]
        b.roll_res = self._roll_res[idx]
        b.drag_coef = self._drag_coef[idx]
        b.seg_starts = self._seg_starts[idx]
        b.seg_curv = self._seg_curv[idx]
        b.seg_curv_flat = b.seg_curv.ravel()
        b.seg_row_offset = np.arange(len(key), dtype=np.intp) * b.seg_curv.shape[1]
        b.seg_last = self._seg_n[idx] - 1
        b.road_len = self._road_len[idx]
        b.lane_width = self._lane_width[idx]
        b.half_lane = 0.5 * b.lane_width
        b.max_lane = self._max_lane[idx]

        # Flat actor layout + padded slot tables for the lead queries.
        b.actors = []
        lane_pos: List[int] = []
        flat_lane: List[int] = []
        flat_slot: List[int] = []
        for j, i in enumerate(key):
            for slot, actor in enumerate(self._actors_by_lane[i]):
                b.actors.append(actor)
                lane_pos.append(j)
                flat_lane.append(j)
                flat_slot.append(slot)
        n_active = len(key)
        b.max_slots = max(
            (len(self._actors_by_lane[i]) for i in key), default=0
        )
        b.max_slots = max(b.max_slots, 0)
        b.flat_lane = np.asarray(flat_lane, dtype=np.intp)
        b.flat_slot = np.asarray(flat_slot, dtype=np.intp)
        b.actor_limit = b.mu_g[np.asarray(lane_pos, dtype=np.intp)]
        b.valid = np.zeros((n_active, b.max_slots), dtype=bool)
        b.slot_len = np.zeros((n_active, b.max_slots))
        b.slot_wid = np.zeros((n_active, b.max_slots))
        if b.actors:
            b.valid[b.flat_lane, b.flat_slot] = True
            b.slot_len[b.flat_lane, b.flat_slot] = [
                a.params.length for a in b.actors
            ]
            b.slot_wid[b.flat_lane, b.flat_slot] = [
                a.params.width for a in b.actors
            ]
        b.slot_half_len = 0.5 * b.slot_len
        b.slot_half_wid = 0.5 * b.slot_wid
        b.agents_by_lane = [self._actors_by_lane[i] for i in key]
        b.actor_rate = np.array([a.lane_change_rate for a in b.actors])

        # Departure-test bounds, pre-combined with the per-world margin
        # using the same arithmetic as ``World._detect_departure``.
        lane0 = [w.road.lane_bounds(0) for w in b.worlds]
        roadb = [w.road.road_bounds() for w in b.worlds]
        margin = np.array([w.OFF_LANE_MARGIN for w in b.worlds])
        b.off_lane_lo = np.array([bounds[0] for bounds in lane0]) - margin
        b.off_lane_hi = np.array([bounds[1] for bounds in lane0]) + margin
        b.road_right = np.array([bounds[0] for bounds in roadb])
        b.road_left = np.array([bounds[1] for bounds in roadb])

        # Detection latches mirroring each world's flags: once a lane has a
        # collision / both departure flags, its scalar detector would
        # short-circuit or be idempotent, so the batch test skips it.
        b.coll_open = np.array([w.collision is None for w in b.worlds])
        b.off_lane_latch = np.array([w.off_lane for w in b.worlds])
        b.off_road_latch = np.array([w.off_road for w in b.worlds])

        # Persistent dynamic-state arrays.  These fields are written *only*
        # by the integrate (the control stack mutates the command fields,
        # gathered fresh each step), so within one binding they stay
        # authoritative and the per-step gather shrinks to the commands.
        b.steer = np.array([e.steer for e in b.egos])
        b.speed = np.array([e.speed for e in b.egos])
        b.s = np.array([e.s for e in b.egos])
        b.d = np.array([e.d for e in b.egos])
        b.psi = np.array([e.psi for e in b.egos])
        b.brake_decel = np.array([e.powertrain._brake_decel for e in b.egos])
        b.a_speed = np.array([a.speed for a in b.actors])
        b.a_s = np.array([a.s for a in b.actors])
        b.a_d = np.array([a.d for a in b.actors])

        b.lead_configs = [
            (mr[idx], corr[idx], [keys[i] for i in key])
            for mr, corr, keys in self._lead_configs
        ]
        if self._curv_la is not None:
            b.curv_la = self._curv_la[idx]
            b.curv_keys = [("curvature_ahead", la) for la in b.curv_la.tolist()]
        else:
            b.curv_la = None
            b.curv_keys = None

        self._bound_key = key
        self._bound = b
        return b

    # ------------------------------------------------------------------ #
    # Vectorized lookups
    # ------------------------------------------------------------------ #

    @staticmethod
    def _engine_accel(b: SimpleNamespace, speed: np.ndarray) -> np.ndarray:
        """``Powertrain.max_engine_accel`` for each active lane.

        Replicates ``mathx.interp1d`` exactly: boundary clamp first, then
        first-match segment selection with the same ``t = (x-x0)/(x1-x0)``
        arithmetic.
        """
        xs, ys = b.eng_xs, b.eng_ys
        out = b.eng_y_last.copy()
        done = speed >= b.eng_x_last
        low = ~done & (speed <= xs[:, 0])
        out = np.where(low, ys[:, 0], out)
        done |= low
        with np.errstate(invalid="ignore"):
            for i in range(1, xs.shape[1]):
                seg = ~done & (speed <= xs[:, i])
                x0, x1 = xs[:, i - 1], xs[:, i]
                y0, y1 = ys[:, i - 1], ys[:, i]
                t = (speed - x0) / (x1 - x0)
                out = np.where(seg, y0 + t * (y1 - y0), out)
                done |= seg
        return out

    @staticmethod
    def _curvature(b: SimpleNamespace, s: np.ndarray) -> np.ndarray:
        """``Road.curvature_at`` for each active lane.

        ``bisect_right(starts, s) - 1`` equals the count of segment starts
        ``<= s`` minus one; the boundary overrides replicate
        ``segment_index_at``'s clamping.
        """
        seg_idx = np.sum(b.seg_starts <= s[:, None], axis=1) - 1
        seg_idx = np.where(s <= 0.0, 0, seg_idx)
        seg_idx = np.where(s >= b.road_len, b.seg_last, seg_idx)
        return b.seg_curv_flat[seg_idx + b.seg_row_offset]

    # ------------------------------------------------------------------ #
    # Lockstep advance
    # ------------------------------------------------------------------ #

    def step(self, lanes: Sequence[int], dt: float) -> None:
        """Advance the given lanes by ``dt`` (the batch ``World.step``).

        Order per lane is identical to ``World.step``: behaviours, ego
        integrate, actor integrate, time advance, collision detection,
        departure detection — then the step-cache populate.
        """
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        b = self._bind(lanes)
        key = self._bound_key

        # Behaviours run *before* the integrate (they set the actor
        # commands the integrate consumes), exactly as World.step — but
        # vectorized over lanes, with scalar fallback per unknown lane.
        if b.actors:
            a_cmd_accel, a_cmd_dt = self.behaviors.update(b, key)

        egos = b.egos

        # -------- gather command state -------------------------------- #
        # Only the fields the control stack mutates between steps; the
        # dynamic state lives in the binding's persistent arrays.
        cmd = np.array([(e._steer_cmd, e._accel_cmd) for e in egos])
        steer_cmd = cmd[:, 0]
        accel_cmd = cmd[:, 1]
        steer = b.steer
        speed = b.speed
        s = b.s
        d = b.d
        psi = b.psi
        brake_decel = b.brake_decel
        driver_steering = np.array(
            [getattr(e, "_driver_steering", False) for e in egos]
        )

        mu_g = b.mu_g

        # -------- EgoVehicle.step, vectorized ------------------------- #
        steer_rate = np.where(driver_steering, b.driver_rate, b.adas_rate)
        steer = _np_rate_limit(steer, steer_cmd, steer_rate * dt)

        tan_steer = np.array([math.tan(v) for v in steer.tolist()])
        kappa_vehicle = tan_steer / b.wheelbase
        lat_demand = speed * speed * np.abs(kappa_vehicle)
        emergency = accel_cmd <= -b.emergency_decel
        brake_demand = np.minimum(-accel_cmd, mu_g * 0.97)
        lat_budget_sq = mu_g * mu_g - brake_demand * brake_demand
        lat_max = np.where(
            emergency, _np_sqrt_pos(lat_budget_sq), mu_g * b.lat_frac
        )
        understeer = (lat_demand > lat_max) & (speed > 0.1)
        denom_sq = np.where(understeer, speed * speed, 1.0)
        kappa_eff = np.where(
            understeer,
            np.copysign(lat_max / denom_sq, kappa_vehicle),
            kappa_vehicle,
        )
        lat_used = np.where(understeer, lat_max, lat_demand)

        # Powertrain.actuate.
        positive = accel_cmd >= 0.0
        engine = np.where(
            positive, np.minimum(accel_cmd, self._engine_accel(b, speed)), 0.0
        )
        target_brake = np.where(
            positive, 0.0, _np_clamp(-accel_cmd, 0.0, b.max_brake)
        )
        lag = np.where(target_brake > brake_decel, b.brake_lag, 0.5 * b.brake_lag)
        alpha = dt / (lag + dt)
        brake_decel = brake_decel + alpha * (target_brake - brake_decel)
        drag = b.roll_res + b.drag_coef * speed * speed
        drag = np.where((speed <= 0.01) & (engine <= 0.0), 0.0, drag)
        achieved = engine - brake_decel - drag

        # Friction circle on the longitudinal channel.
        long_budget_sq = mu_g * mu_g - lat_used * lat_used
        long_max = _np_sqrt_pos(long_budget_sq)
        hi = np.where(0.0 > long_max, 0.0, long_max)  # max(long_max, 0.0)
        achieved = _np_clamp(achieved, -long_max, hi)

        # Frenet integrate (semi-implicit Euler on speed).
        speed_next = speed + achieved * dt
        speed = np.where(speed_next > 0.0, speed_next, 0.0)
        k_road = self._curvature(b, s)
        denom = 1.0 - d * k_road
        denom = np.where(denom < 0.2, 0.2, denom)
        cos_psi = np.array([math.cos(v) for v in psi.tolist()])
        sin_psi = np.array([math.sin(v) for v in psi.tolist()])
        s_dot = speed * cos_psi / denom
        d_dot = speed * sin_psi
        psi_dot = speed * kappa_eff - k_road * s_dot
        s = s + s_dot * dt
        d = d + d_dot * dt
        psi = _np_clamp(psi + psi_dot * dt, -1.2, 1.2)

        b.steer = steer
        b.speed = speed
        b.s = s
        b.d = d
        b.psi = psi
        b.brake_decel = brake_decel

        # -------- scatter ego state ----------------------------------- #
        ego_out = np.stack(
            (steer, brake_decel, achieved, speed, s, d, psi), axis=1
        ).tolist()
        sliding = understeer.tolist()
        for j, ego in enumerate(egos):
            row = ego_out[j]
            ego.steer = row[0]
            ego.powertrain._brake_decel = row[1]
            ego.accel = row[2]
            ego.speed = row[3]
            ego.s = row[4]
            ego.d = row[5]
            ego.psi = row[6]
            ego.sliding = sliding[j]

        # -------- KinematicActor.step, vectorized (flat over lanes) --- #
        n_active = len(b.worlds)
        a_s_pad = np.zeros((n_active, b.max_slots))
        a_d_pad = np.zeros((n_active, b.max_slots))
        a_speed_pad = np.zeros((n_active, b.max_slots))
        a_dt_pad = np.zeros((n_active, b.max_slots))
        if b.actors:
            a_accel = _np_clamp(a_cmd_accel, -b.actor_limit, b.actor_limit)
            a_next = b.a_speed + a_accel * dt
            a_speed = np.where(a_next > 0.0, a_next, 0.0)
            a_s = b.a_s + a_speed * dt
            a_d = _np_rate_limit(b.a_d, a_cmd_dt, b.actor_rate * dt)
            b.a_speed = a_speed
            b.a_s = a_s
            b.a_d = a_d

            # The command columns ride along so the actor objects always
            # carry the behaviour outputs (scalar fallbacks — cut-in scans,
            # re-binds, direct world queries — read them from the objects).
            a_out = np.stack(
                (a_accel, a_speed, a_s, a_d, a_cmd_accel, a_cmd_dt), axis=1
            ).tolist()
            for j, actor in enumerate(b.actors):
                row = a_out[j]
                actor.accel = row[0]
                actor.speed = row[1]
                actor.s = row[2]
                actor.d = row[3]
                actor.accel_cmd = row[4]
                actor.d_target = row[5]
            a_s_pad[b.flat_lane, b.flat_slot] = a_s
            a_d_pad[b.flat_lane, b.flat_slot] = a_d
            a_speed_pad[b.flat_lane, b.flat_slot] = a_speed
            a_dt_pad[b.flat_lane, b.flat_slot] = a_cmd_dt

        # -------- time advance ---------------------------------------- #
        for world in b.worlds:
            world.time += dt

        # -------- detection (vectorized test, scalar event path) ------ #
        # The batch evaluates exactly the detectors' comparisons; only
        # lanes whose test fires (rare) run the world's own detector, so
        # event construction / first-match ordering cannot drift.
        overlap = (
            b.valid
            & (np.abs(a_s_pad - s[:, None]) < b.ego_half_len[:, None] + b.slot_half_len)
            & (np.abs(a_d_pad - d[:, None]) < b.ego_half_wid[:, None] + b.slot_half_wid)
        )
        collide = b.coll_open & overlap.any(axis=1)
        for j in np.nonzero(collide)[0]:
            world = b.worlds[j]
            world._detect_collision()
            b.coll_open[j] = world.collision is None
        off_lane_now = (d < b.off_lane_lo) | (d > b.off_lane_hi)
        off_road_now = (d + b.ego_half_wid < b.road_right) | (
            d - b.ego_half_wid > b.road_left
        )
        departed = (off_lane_now & ~b.off_lane_latch) | (
            off_road_now & ~b.off_road_latch
        )
        for j in np.nonzero(departed)[0]:
            world = b.worlds[j]
            world._detect_departure()
            b.off_lane_latch[j] = world.off_lane
            b.off_road_latch[j] = world.off_road

        # -------- step-cache populate (pure queries, post-step) ------- #
        self._populate_caches(
            b, s, d, speed, a_s_pad, a_d_pad, a_speed_pad, a_dt_pad
        )

    def prime(self, lanes: Sequence[int]) -> None:
        """Pre-populate the step caches from the *current* (unstepped) state.

        The control phase runs before the first :meth:`step`, so without
        priming its step-0 world queries fall back to the scalar scans and
        the batch control stack has no :attr:`control_view` to read.  The
        values are identical to what those scalar scans would return.
        """
        b = self._bind(lanes)
        n_active = len(b.worlds)
        a_s_pad = np.zeros((n_active, b.max_slots))
        a_d_pad = np.zeros((n_active, b.max_slots))
        a_speed_pad = np.zeros((n_active, b.max_slots))
        a_dt_pad = np.zeros((n_active, b.max_slots))
        if b.actors:
            a_s_pad[b.flat_lane, b.flat_slot] = b.a_s
            a_d_pad[b.flat_lane, b.flat_slot] = b.a_d
            a_speed_pad[b.flat_lane, b.flat_slot] = b.a_speed
            a_dt_pad[b.flat_lane, b.flat_slot] = [a.d_target for a in b.actors]
        self._populate_caches(
            b, b.s, b.d, b.speed, a_s_pad, a_d_pad, a_speed_pad, a_dt_pad
        )

    # ------------------------------------------------------------------ #
    # Per-step query pre-computation
    # ------------------------------------------------------------------ #

    def _populate_caches(
        self,
        b: SimpleNamespace,
        s: np.ndarray,
        d: np.ndarray,
        speed: np.ndarray,
        a_s_pad: np.ndarray,
        a_d_pad: np.ndarray,
        a_speed_pad: np.ndarray,
        a_dt_pad: np.ndarray,
    ) -> None:
        """Vectorized replicas of the per-step pure world queries.

        Results land in each world's ``_step_cache`` keyed by the exact
        argument values the scalar call sites pass, stamped with the
        post-step time; the scalar methods fall back to their own scans on
        any miss, so the cache is purely an accelerator.  The same values
        are kept as arrays in :attr:`control_view` for the batch control
        stack.
        """
        n_active = len(b.worlds)

        # World.lane_line_distances (via Road.nearest_lane/lane_bounds).
        lane = np.rint(d / b.lane_width)
        lane = np.where(lane < 0.0, 0.0, np.where(lane > b.max_lane, b.max_lane, lane))
        center = lane * b.lane_width
        right = center - b.half_lane
        left = center + b.half_lane
        dist_right_arr = (d - b.ego_half_wid) - right
        dist_left_arr = left - (d + b.ego_half_wid)
        dist_right = dist_right_arr.tolist()
        dist_left = dist_left_arr.tolist()

        # Road.curvature_ahead at each lane's perception look-ahead.  All
        # six sample points (the s-anchor plus the five look-ahead probes)
        # go through one broadcast segment lookup; the accumulation below
        # keeps the serial loop's left-associative addition order.
        curv_vals = None
        if b.curv_la is not None:
            pts = np.stack([s] + [s + b.curv_la * (i + 0.5) / 5 for i in range(5)])
            seg_idx = np.sum(b.seg_starts[None] <= pts[..., None], axis=2) - 1
            seg_idx = np.where(pts <= 0.0, 0, seg_idx)
            seg_idx = np.where(pts >= b.road_len, b.seg_last, seg_idx)
            vals = b.seg_curv_flat[seg_idx + b.seg_row_offset]
            acc = 0.0 + vals[1]  # serial starts from acc = 0.0 (signed zero)
            for i in range(2, 6):
                acc = acc + vals[i]
            curv_arr = np.where(b.curv_la > 0.0, acc / 5, vals[0])
            curv_vals = curv_arr.tolist()
        else:
            curv_arr = None

        # World.lead_actor for each pre-registered (max_range, corridor).
        ego_front = s + b.ego_half_len
        lead_slots = []
        lead_views = []
        for max_range, corridor, keys in b.lead_configs:
            best_slot = np.full(n_active, -1, dtype=np.intp)
            best_gap = max_range.copy()
            for j in range(b.max_slots):
                gap = (a_s_pad[:, j] - b.slot_half_len[:, j]) - ego_front
                sel = (
                    b.valid[:, j]
                    & ~(np.abs(a_d_pad[:, j] - d) > corridor)
                    & (gap > -b.slot_len[:, j])
                    & (gap < best_gap)
                )
                best_slot = np.where(sel, j, best_slot)
                best_gap = np.where(sel, np.where(gap > 0.0, gap, 0.0), best_gap)
            lead_slots.append((keys, best_slot.tolist()))
            has_lead = best_slot >= 0
            slot_clip = np.where(has_lead, best_slot, 0)
            if b.max_slots:
                lead_speed = a_speed_pad[np.arange(n_active), slot_clip]
            else:
                lead_speed = np.zeros(n_active)
            # best_gap of a selected slot is exactly the measurement gap
            # (`max(0.0, rear_s - front_s)`) GroundTruthSensor computes.
            lead_views.append(
                SimpleNamespace(valid=has_lead, gap=best_gap, speed=lead_speed)
            )

        # GroundTruthSensor.cut_in screen: the exact per-agent predicate,
        # broadcast over agents x lanes and reduced with any().  cut_in()
        # returns the *first* matching agent, so "some agent matches" is
        # exactly "the scalar scan returns non-None"; lanes where it holds
        # get no cache entry and fall back to the scalar scan (preserving
        # the first-match observation), quiet lanes cache the None.
        if b.max_slots:
            gap_all = (a_s_pad - b.slot_half_len) - (s + b.ego_half_len)[:, None]
            delta = a_dt_pad - a_d_pad
            cut_arr = (
                b.valid
                & (np.abs(a_d_pad - d[:, None]) > b.half_lane[:, None])
                & (gap_all > -5.0)
                & (gap_all < CUT_IN_GAP_RANGE)
                & (delta * (d[:, None] - a_d_pad) > 0.0)
                & (np.abs(delta) > 0.3)
            ).any(axis=1)
        else:
            cut_arr = np.zeros(n_active, dtype=bool)
        cut_flagged = cut_arr.tolist()

        self.control_view = SimpleNamespace(
            key=self._bound_key,
            dist_right=dist_right_arr,
            dist_left=dist_left_arr,
            lane_center=center,
            curvature=curv_arr,
            leads=lead_views,
            cut_in=cut_arr,
        )

        cut_key = ("cut_in", CUT_IN_GAP_RANGE)
        for j, world in enumerate(b.worlds):
            cache = {"time": world.time, "lld": (dist_right[j], dist_left[j])}
            if curv_vals is not None:
                cache[b.curv_keys[j]] = curv_vals[j]
            actors = b.agents_by_lane[j]
            for keys, slots in lead_slots:
                slot = slots[j]
                cache[keys[j]] = actors[slot] if slot >= 0 else None
            if not cut_flagged[j]:
                cache[cut_key] = None
            world._step_cache = cache
