"""Lead-vehicle behaviour policies for the S1-S6 scenarios.

Each behaviour is attached to one :class:`~repro.sim.vehicle.KinematicActor`
and is ticked once per 100 Hz step with a view of the ego vehicle, setting
the actor's ``accel_cmd`` and ``d_target``.

Behaviours are deliberately simple, trigger-based state machines — exactly
how the paper scripts its NHTSA pre-collision scenarios (lead cruises, then
accelerates / decelerates / stops / cuts in when the ego closes in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Tuple, Type

from repro.sim.vehicle import EgoVehicle, KinematicActor
from repro.utils.mathx import clamp


class Behavior(Protocol):
    """Policy interface: mutate ``actor`` given the ego state and time."""

    def update(self, actor: KinematicActor, ego: EgoVehicle, t: float) -> None:
        """Advance the policy one tick."""
        ...  # pragma: no cover - protocol definition


def bumper_gap(actor: KinematicActor, ego: EgoVehicle) -> float:
    """Bumper-to-bumper gap [m] from the ego front to the actor rear."""
    return actor.rear_s - ego.front_s


class CruiseBehavior:
    """Hold a constant speed with a gentle proportional speed loop."""

    def __init__(self, speed: float, gain: float = 0.5) -> None:
        if speed < 0.0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        self.speed = speed
        self.gain = gain

    def update(self, actor: KinematicActor, ego: EgoVehicle, t: float) -> None:
        actor.accel_cmd = clamp(self.gain * (self.speed - actor.speed), -2.0, 2.0)


class SpeedChangeBehavior:
    """Cruise at ``initial_speed``; change to ``final_speed`` when triggered.

    The trigger fires the first time the bumper gap to the ego drops below
    ``trigger_gap`` (the paper's S2 "then accelerates" / S3 "then
    decelerates" events both happen as the ego closes in).

    Args:
        initial_speed: cruise speed before the trigger [m/s].
        final_speed: target speed after the trigger [m/s].
        trigger_gap: bumper gap that arms the change [m].
        rate: signed-magnitude acceleration used for the change [m/s^2].
    """

    def __init__(
        self,
        initial_speed: float,
        final_speed: float,
        trigger_gap: float,
        rate: float,
    ) -> None:
        if rate <= 0.0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.initial_speed = initial_speed
        self.final_speed = final_speed
        self.trigger_gap = trigger_gap
        self.rate = rate
        self.triggered = False
        self._cruise = CruiseBehavior(initial_speed)

    def update(self, actor: KinematicActor, ego: EgoVehicle, t: float) -> None:
        if not self.triggered and bumper_gap(actor, ego) < self.trigger_gap:
            self.triggered = True
        if not self.triggered:
            self._cruise.update(actor, ego, t)
            return
        error = self.final_speed - actor.speed
        if abs(error) < 0.05:
            actor.accel_cmd = 0.0
        else:
            actor.accel_cmd = clamp(error * 2.0, -self.rate, self.rate)


class SuddenStopBehavior:
    """S4: cruise, then brake hard to a stop (obstacle ahead).

    Args:
        speed: cruise speed [m/s].
        trigger_gap: bumper gap to the ego that triggers the stop [m].
        decel: braking deceleration magnitude [m/s^2].
    """

    def __init__(self, speed: float, trigger_gap: float, decel: float) -> None:
        if decel <= 0.0:
            raise ValueError(f"decel must be positive, got {decel}")
        self.speed = speed
        self.trigger_gap = trigger_gap
        self.decel = decel
        self.triggered = False
        self._cruise = CruiseBehavior(speed)

    def update(self, actor: KinematicActor, ego: EgoVehicle, t: float) -> None:
        if not self.triggered and bumper_gap(actor, ego) < self.trigger_gap:
            self.triggered = True
        if self.triggered:
            actor.accel_cmd = -self.decel if actor.speed > 0.0 else 0.0
        else:
            self._cruise.update(actor, ego, t)


class CutInBehavior:
    """S5: cruise in the adjacent lane, then cut into the ego lane.

    The cut-in arms when the ego front bumper comes within ``trigger_gap``
    of the actor's rear bumper (the classic "merges into your headway"
    situation from the NHTSA typology).

    Args:
        speed: cruise speed [m/s].
        trigger_gap: longitudinal gap that triggers the lane change [m].
        target_d: lateral offset of the destination lane centre [m].
    """

    def __init__(self, speed: float, trigger_gap: float, target_d: float = 0.0) -> None:
        self.speed = speed
        self.trigger_gap = trigger_gap
        self.target_d = target_d
        self.triggered = False
        self._cruise = CruiseBehavior(speed)

    def update(self, actor: KinematicActor, ego: EgoVehicle, t: float) -> None:
        self._cruise.update(actor, ego, t)
        if not self.triggered and 0.0 < bumper_gap(actor, ego) < self.trigger_gap:
            self.triggered = True
            actor.d_target = self.target_d


class LaneChangeAwayBehavior:
    """S6: the nearer of two leads changes out of the ego lane.

    Args:
        speed: cruise speed [m/s].
        trigger_gap: gap to the ego that triggers the lane change [m].
        target_d: lateral offset of the destination (adjacent) lane [m].
    """

    def __init__(self, speed: float, trigger_gap: float, target_d: float) -> None:
        self.speed = speed
        self.trigger_gap = trigger_gap
        self.target_d = target_d
        self.triggered = False
        self._cruise = CruiseBehavior(speed)

    def update(self, actor: KinematicActor, ego: EgoVehicle, t: float) -> None:
        self._cruise.update(actor, ego, t)
        if not self.triggered and bumper_gap(actor, ego) < self.trigger_gap:
            self.triggered = True
            actor.d_target = self.target_d


class AgentBinding:
    """Pairs an actor with its behaviour for the world's step loop."""

    def __init__(self, actor: KinematicActor, behavior: Optional[Behavior]) -> None:
        self.actor = actor
        self.behavior = behavior

    def update(self, ego: EgoVehicle, t: float) -> None:
        """Tick the behaviour (if any)."""
        if self.behavior is not None:
            self.behavior.update(self.actor, ego, t)


# --------------------------------------------------------------------- #
# Behaviour registry (the ``ParamSpec``-shaped schema idiom from
# ``sim/families.py``, applied to behaviours)
# --------------------------------------------------------------------- #

#: The closed built-in behaviour set, by kind name.  Each entry maps the
#: kind to its class and the ordered constructor-parameter names, which is
#: what lets a behaviour round-trip through :class:`BehaviorSpec` (and
#: lets the batch engine freeze the parameters into arrays).  Third-party
#: behaviours are simply absent: :func:`behavior_kind` returns ``None``
#: for them and every consumer falls back to the per-actor ``update``.
BEHAVIOR_REGISTRY: Dict[str, Tuple[Type, Tuple[str, ...]]] = {
    "cruise": (CruiseBehavior, ("speed", "gain")),
    "speed_change": (
        SpeedChangeBehavior,
        ("initial_speed", "final_speed", "trigger_gap", "rate"),
    ),
    "sudden_stop": (SuddenStopBehavior, ("speed", "trigger_gap", "decel")),
    "cut_in": (CutInBehavior, ("speed", "trigger_gap", "target_d")),
    "lane_change_away": (
        LaneChangeAwayBehavior,
        ("speed", "trigger_gap", "target_d"),
    ),
}

_KIND_BY_TYPE: Dict[type, str] = {
    cls: kind for kind, (cls, _) in BEHAVIOR_REGISTRY.items()
}


@dataclass(frozen=True)
class BehaviorSpec:
    """Declarative form of a registered behaviour: kind + parameters.

    Only construction parameters are captured — trigger latches and other
    episode state stay on the live object.  ``params`` is an ordered
    ``(name, value)`` tuple so specs are hashable and digest-stable.
    """

    kind: str
    params: Tuple[Tuple[str, float], ...]


def behavior_kind(behavior: object) -> Optional[str]:
    """The registry kind of ``behavior``, or ``None`` for unknown types.

    The lookup is by *exact* type: a subclass may override ``update`` with
    arbitrary semantics, so it must not match its base class's fast path.
    """
    return _KIND_BY_TYPE.get(type(behavior))


def behavior_spec(behavior: object) -> Optional[BehaviorSpec]:
    """Extract the :class:`BehaviorSpec` of a registered behaviour."""
    kind = behavior_kind(behavior)
    if kind is None:
        return None
    _, names = BEHAVIOR_REGISTRY[kind]
    return BehaviorSpec(
        kind=kind, params=tuple((name, getattr(behavior, name)) for name in names)
    )


def build_behavior(spec: BehaviorSpec) -> Behavior:
    """Construct a fresh behaviour from its spec.

    Raises:
        KeyError: on an unregistered kind.
    """
    cls, _ = BEHAVIOR_REGISTRY[spec.kind]
    return cls(**dict(spec.params))
