"""Vectorized ML mitigation arm: N lanes' Algorithm 1 in lockstep.

:class:`BatchMitigation` is the batch twin of
:class:`repro.ml.mitigation.MitigationController`: per lockstep tick it
maintains every ML lane's feature window in one ``(n, WINDOW, features)``
array, normalises the full-window lanes elementwise, runs the LSTM
baseline **once per step over all stacked windows** (the forward in
:mod:`repro.ml.lstm` is already batch-shaped — only the per-episode
controller drove it batch=1) and vectorizes the CUSUM/threshold
bookkeeping lane-wide.  At :meth:`retire` the lane's window/CUSUM state is
written through to the scalar controller object, so post-episode
inspection sees exactly what the serial path would have left behind.

Bit-exactness contract (same gate as :mod:`repro.sim.batch_control`):

* **Elementwise stages are trivially exact.**  Window normalisation,
  denormalisation, clamping, the delta/CUSUM update and the strict
  ``S > tau`` / inclusive ``delta <= bias`` threshold branches are all
  IEEE-754 elementwise ops replicated with scalar branch semantics
  (``np.where`` preserving operand order and signed zeros).
* **Row-batched matmuls are verified, not assumed.**  BLAS may pick a
  different kernel (and a different k-summation order) for a
  ``(B, K) @ (K, N)`` product than for the ``(1, K) @ (K, N)`` the scalar
  path issues, which would break float64 bit-identity.  The first time a
  given ``(network, batch_size)`` pair is seen, the batched forward is
  computed *and* compared bitwise against per-lane batch=1 slices (the
  scalar path's exact arithmetic); the verdict is memoized per pair —
  kernel selection depends on shapes, not values — and lanes fall back to
  per-lane slices whenever the batched product disagrees.
* **Warm-up mirrors the scalar path.**  Lanes with fewer than ``WINDOW``
  samples return the OP command with recovery False and touch no CUSUM
  state (see ``tests/test_ml.py::TestAlgorithm1EdgeSemantics``).

Campaigns can mix ML arms (distinct factories → distinct weights), so
lanes are grouped by baseline identity and each group batches its own
forward; the CUSUM bookkeeping stays lane-wide across groups.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ml.dataset import FEATURE_NAMES, WINDOW
from repro.ml.mitigation import MitigationController
from repro.utils.npmath import np_clamp

_N_FEATURES = len(FEATURE_NAMES)


class BatchMitigation:
    """Lockstep Algorithm 1 over the ML lanes of one batch.

    Args:
        platforms: the batch's per-episode platforms, in lane order.
        lanes: global lane ids carrying a (stock)
            :class:`MitigationController`; every one must satisfy
            ``type(p.ml_controller) is MitigationController`` (subclasses
            may override ``step`` and must stay on the scalar path).

    The per-lane state is initialised to the *reset* state (empty window,
    zero CUSUM) — the executor's ``_begin_episode`` resets the scalar
    controllers before the first tick, so both representations start
    identical.
    """

    def __init__(self, platforms: Sequence, lanes: Sequence[int]) -> None:
        self.platforms = list(platforms)
        self.lanes = frozenset(lanes)
        n = len(self.platforms)
        for lane in lanes:
            ctl = self.platforms[lane].ml_controller
            if type(ctl) is not MitigationController:
                raise ValueError(
                    f"lane {lane}: BatchMitigation requires a stock "
                    f"MitigationController, got {type(ctl).__name__}"
                )

        def arr(get) -> np.ndarray:
            out = np.zeros(n)
            for lane in lanes:
                out[lane] = float(get(self.platforms[lane].ml_controller))
            return out

        # Algorithm 1 constants, full width (non-ML entries unused).
        self._tau = arr(lambda c: c.params.tau)
        self._bias = arr(lambda c: c.params.bias)
        self._accel_w = arr(lambda c: c.params.accel_weight)
        self._steer_w = arr(lambda c: c.params.steer_weight)
        self._max_accel = arr(lambda c: c.params.max_accel)
        self._min_accel = arr(lambda c: c.params.min_accel)
        self._max_steer = arr(lambda c: c.params.max_steer)

        # Scaler rows per lane (broadcast elementwise — bit-exact).
        self._f_mean = np.zeros((n, _N_FEATURES))
        self._f_std = np.ones((n, _N_FEATURES))
        self._t_mean = np.zeros((n, 2))
        self._t_std = np.ones((n, 2))
        for lane in lanes:
            b = self.platforms[lane].ml_controller.baseline
            self._f_mean[lane] = np.asarray(b.feature_mean, dtype=np.float64)
            self._f_std[lane] = np.asarray(b.feature_std, dtype=np.float64)
            self._t_mean[lane] = np.asarray(b.target_mean, dtype=np.float64)
            self._t_std[lane] = np.asarray(b.target_std, dtype=np.float64)

        # Forward groups: lanes sharing one network batch one matmul.
        self._groups: List[Tuple[object, frozenset]] = []
        by_net: Dict[int, Tuple[object, List[int]]] = {}
        for lane in lanes:
            net = self.platforms[lane].ml_controller.baseline.network
            by_net.setdefault(id(net), (net, []))[1].append(lane)
        for net, members in by_net.values():
            self._groups.append((net, frozenset(members)))

        # Mutable Algorithm 1 state (the reset state; see class docstring).
        # The window is a slide-left ring: row WINDOW-1 is the newest
        # sample and rows [WINDOW-count:] hold the scalar list's contents
        # in order.
        self._window = np.zeros((n, WINDOW, _N_FEATURES))
        self._count = np.zeros(n, dtype=np.int64)
        self._s = np.zeros(n)
        self._recovery = np.zeros(n, dtype=bool)
        self._activations = np.zeros(n, dtype=np.int64)

        #: (network id, batch size) -> batched forward proven bit-identical
        #: to per-lane batch=1 slices.
        self._batched_ok: Dict[Tuple[int, int], bool] = {}
        #: Networks whose batched forward has disagreed at some size:
        #: kernel-dispatch mismatches are systematic, so stop paying the
        #: probe cost for new sizes (already-proven sizes stay batched).
        self._net_failed: set = set()

    # ------------------------------------------------------------------ #
    # One vectorized Algorithm 1 tick
    # ------------------------------------------------------------------ #

    def step(
        self,
        lanes: Tuple[int, ...],
        features: np.ndarray,
        y_accel: np.ndarray,
        y_steer: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One control cycle for the given ML lanes.

        Args:
            lanes: global lane ids (each must be in :attr:`lanes`).
            features: ``(len(lanes), len(FEATURE_NAMES))`` fault-free
                feature rows, in ``lanes`` order.
            y_accel / y_steer: the lanes' OP commands this cycle.

        Returns:
            ``(recovery, ml_accel, ml_steer)`` arrays over ``lanes``;
            warm-up lanes mirror the OP command with recovery False.
        """
        idx = np.asarray(lanes, dtype=np.intp)
        buf = self._window
        buf[idx, :-1] = buf[idx, 1:]
        buf[idx, -1] = features
        count = np.minimum(self._count[idx] + 1, WINDOW)
        self._count[idx] = count

        ml_accel = y_accel.copy()
        ml_steer = y_steer.copy()
        recovery = np.zeros(len(lanes), dtype=bool)
        full = count >= WINDOW
        if not full.any():
            return recovery, ml_accel, ml_steer
        fpos = np.nonzero(full)[0]
        flanes = idx[fpos]

        # predict(): normalise -> forward -> denormalise (all elementwise
        # except the forward, which _forward_rows bit-verifies).
        x = (buf[flanes] - self._f_mean[flanes][:, None, :]) / self._f_std[
            flanes
        ][:, None, :]
        y = np.empty((len(flanes), 2))
        for net, members in self._groups:
            rows = np.nonzero(
                [lane in members for lane in flanes.tolist()]
            )[0]
            if rows.size:
                y[rows] = self._forward_rows(net, x[rows])
        y = y * self._t_std[flanes] + self._t_mean[flanes]

        accel_ml = np_clamp(y[:, 0], self._min_accel[flanes], self._max_accel[flanes])
        steer_ml = np_clamp(
            y[:, 1], -self._max_steer[flanes], self._max_steer[flanes]
        )

        delta = self._accel_w[flanes] * np.abs(
            accel_ml - y_accel[fpos]
        ) + self._steer_w[flanes] * np.abs(steer_ml - y_steer[fpos])
        # max(0.0, v): Python max returns the *first* argument on ties, so
        # v == 0.0 and v == -0.0 both map to +0.0.
        grown = self._s[flanes] + delta - self._bias[flanes]
        s = np.where(grown > 0.0, grown, 0.0)

        rec = self._recovery[flanes]
        activate = ~rec & (s > self._tau[flanes])
        exit_ = rec & (delta <= self._bias[flanes])  # disjoint from activate
        self._recovery[flanes] = (rec | activate) & ~exit_
        self._s[flanes] = np.where(exit_, 0.0, s)
        self._activations[flanes] += activate

        ml_accel[fpos] = accel_ml
        ml_steer[fpos] = steer_ml
        recovery[fpos] = self._recovery[flanes]
        return recovery, ml_accel, ml_steer

    def _forward_rows(self, network, x: np.ndarray) -> np.ndarray:
        """``network.forward`` rows, bit-identical to per-lane batch=1.

        Verifies the row-batched forward against per-lane slices on first
        use of each ``(network, batch_size)`` pair (kernel selection is
        shape-dependent, not value-dependent) and memoizes the verdict;
        a batch of one *is* the scalar call.
        """
        m = x.shape[0]
        if m == 1:
            return network.forward(x)
        cache_key = (id(network), m)
        batched_ok = self._batched_ok.get(cache_key)
        if batched_ok is None and id(network) not in self._net_failed:
            batched = np.asarray(network.forward(x))
            per_lane = np.concatenate(
                [network.forward(x[i : i + 1]) for i in range(m)], axis=0
            )
            batched_ok = batched.tobytes() == per_lane.tobytes()
            self._batched_ok[cache_key] = batched_ok
            if not batched_ok:
                self._net_failed.add(id(network))
            return batched if batched_ok else per_lane
        if batched_ok:
            return network.forward(x)
        return np.concatenate(
            [network.forward(x[i : i + 1]) for i in range(m)], axis=0
        )

    # ------------------------------------------------------------------ #
    # Retirement write-through
    # ------------------------------------------------------------------ #

    def retire(self, lane: int) -> None:
        """Write a finished lane's Algorithm 1 state back to its controller.

        After this the scalar :class:`MitigationController` looks exactly
        as if the serial path had run the episode (window contents, CUSUM
        accumulator, recovery flag and activation count included).
        """
        if lane not in self.lanes:
            return
        ctl = self.platforms[lane].ml_controller
        count = int(self._count[lane])
        ctl._window = [row.tolist() for row in self._window[lane, WINDOW - count :]]
        ctl._s = float(self._s[lane])
        ctl.recovery = bool(self._recovery[lane])
        ctl.activations = int(self._activations[lane])
