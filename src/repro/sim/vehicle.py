"""Vehicle models.

Two actor types populate the world:

* :class:`EgoVehicle` — the ADAS-controlled car: a kinematic bicycle model
  stepped in Frenet coordinates with a friction circle coupling braking and
  cornering.  Steering is rate-limited (torque-limited EPS for the ADAS,
  faster for a human driver).
* :class:`KinematicActor` — traffic (lead vehicles, cut-in cars): follows
  the road exactly; its behaviour policy supplies longitudinal acceleration
  and a lateral-offset trajectory.  Friction still caps its acceleration so
  e.g. a lead vehicle cannot out-brake an icy road.

Frenet kinematics used by the ego step (road curvature ``k`` at ``s``):

    s_dot   = v * cos(psi) / (1 - d * k)
    d_dot   = v * sin(psi)
    psi_dot = v * kappa_vehicle - k * s_dot

with ``kappa_vehicle = tan(steer) / wheelbase`` reduced to the friction
limit when the demanded lateral acceleration exceeds ``mu * g`` (understeer
— the vehicle runs wide, which is how low-friction lane departures happen).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.powertrain import Powertrain, PowertrainParams
from repro.sim.road import Road
from repro.utils.mathx import clamp, rate_limit
from repro.utils.units import G


@dataclass(frozen=True)
class VehicleParams:
    """Physical dimensions and actuation limits of a passenger car."""

    length: float = 4.7
    width: float = 1.85
    wheelbase: float = 2.7
    max_steer: float = 0.5  # [rad] road-wheel angle
    adas_steer_rate: float = 0.25  # [rad/s] torque-limited EPS
    driver_steer_rate: float = 0.6  # [rad/s] human hands on the wheel
    lateral_friction_fraction: float = 0.95  # share of mu*g usable laterally

    def __post_init__(self) -> None:
        if self.length <= 0 or self.width <= 0 or self.wheelbase <= 0:
            raise ValueError("vehicle dimensions must be positive")
        if not 0.0 < self.max_steer <= 1.0:
            raise ValueError(f"max_steer out of range: {self.max_steer}")


class EgoVehicle:
    """Friction-limited kinematic bicycle model in Frenet coordinates.

    Class attributes:
        EMERGENCY_BRAKE_DECEL: commanded deceleration beyond which the
            friction circle gives the longitudinal channel priority
            (see :meth:`step`) [m/s^2].

    Attributes (state):
        s: arc length along the road reference line [m].
        d: lateral offset from the reference line [m], positive left.
        psi: heading relative to the road tangent [rad].
        speed: forward speed [m/s] (non-negative).
        accel: achieved longitudinal acceleration last step [m/s^2].
        steer: current road-wheel steering angle [rad].
    """

    EMERGENCY_BRAKE_DECEL = 6.0

    def __init__(
        self,
        road: Road,
        s: float = 0.0,
        d: float = 0.0,
        speed: float = 0.0,
        params: VehicleParams | None = None,
        powertrain_params: PowertrainParams | None = None,
    ) -> None:
        if speed < 0.0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        self.road = road
        self.params = params or VehicleParams()
        self.powertrain = Powertrain(powertrain_params)
        self.s = s
        self.d = d
        self.psi = 0.0
        self.speed = speed
        self.accel = 0.0
        self.steer = 0.0
        self._steer_cmd = 0.0
        self._accel_cmd = 0.0
        self.sliding = False  # True while the friction circle saturates

    # ------------------------------------------------------------------ #
    # Command interface (called by the platform's arbitration output)
    # ------------------------------------------------------------------ #

    def apply_controls(
        self, accel_cmd: float, steer_cmd: float, driver_steering: bool = False
    ) -> None:
        """Latch actuator commands for the next :meth:`step`.

        Args:
            accel_cmd: longitudinal acceleration command [m/s^2]
                (negative = brake).
            steer_cmd: road-wheel steering angle command [rad].
            driver_steering: use the (faster) human steering rate limit.
        """
        self._accel_cmd = accel_cmd
        self._steer_cmd = clamp(steer_cmd, -self.params.max_steer, self.params.max_steer)
        self._driver_steering = driver_steering

    # ------------------------------------------------------------------ #
    # Dynamics
    # ------------------------------------------------------------------ #

    def step(self, dt: float, mu: float = 1.0) -> None:
        """Advance the vehicle one step of ``dt`` seconds on friction ``mu``."""
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        if mu <= 0.0:
            raise ValueError(f"mu must be positive, got {mu}")
        p = self.params
        # Steering actuator: rate-limited tracking of the latched command.
        steer_rate = (
            p.driver_steer_rate if getattr(self, "_driver_steering", False) else p.adas_steer_rate
        )
        self.steer = rate_limit(self.steer, self._steer_cmd, steer_rate * dt)

        # Friction circle.  Under normal driving the lateral (cornering)
        # demand has priority and braking uses the remainder; under
        # *emergency braking* (demand beyond EMERGENCY_BRAKE_DECEL) the
        # longitudinal channel saturates the contact patch first and
        # steering authority drops — hard AEB/driver braking therefore
        # arrests an attack-induced lateral drift, which is the mechanism
        # behind AEB preventing lateral (A2) accidents in the paper.
        kappa_vehicle = math.tan(self.steer) / p.wheelbase
        lat_demand = self.speed * self.speed * abs(kappa_vehicle)
        mu_g = mu * G
        emergency = self._accel_cmd <= -self.EMERGENCY_BRAKE_DECEL
        if emergency:
            brake_demand = min(-self._accel_cmd, mu_g * 0.97)
            lat_budget_sq = mu_g * mu_g - brake_demand * brake_demand
            lat_max = math.sqrt(lat_budget_sq) if lat_budget_sq > 0.0 else 0.0
        else:
            lat_max = mu_g * p.lateral_friction_fraction
        if lat_demand > lat_max and self.speed > 0.1:
            # Understeer: achieved curvature saturates at the grip limit.
            kappa_eff = math.copysign(lat_max / (self.speed * self.speed), kappa_vehicle)
            lat_used = lat_max
            self.sliding = True
        else:
            kappa_eff = kappa_vehicle
            lat_used = lat_demand
            self.sliding = False

        # Longitudinal: powertrain realises the command, then the friction
        # circle caps what the tyres can transmit.
        achieved = self.powertrain.actuate(self._accel_cmd, self.speed, dt)
        long_budget_sq = mu_g * mu_g - lat_used * lat_used
        long_max = math.sqrt(long_budget_sq) if long_budget_sq > 0.0 else 0.0
        achieved = clamp(achieved, -long_max, max(long_max, 0.0))
        self.accel = achieved

        # Integrate Frenet kinematics (semi-implicit Euler on speed).
        self.speed = max(0.0, self.speed + achieved * dt)
        k_road = self.road.curvature_at(self.s)
        denom = 1.0 - self.d * k_road
        if denom < 0.2:
            denom = 0.2  # far off-road; keep the integrator sane
        s_dot = self.speed * math.cos(self.psi) / denom
        d_dot = self.speed * math.sin(self.psi)
        psi_dot = self.speed * kappa_eff - k_road * s_dot
        self.s += s_dot * dt
        self.d += d_dot * dt
        self.psi += psi_dot * dt
        self.psi = clamp(self.psi, -1.2, 1.2)  # bicycle model validity bound

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #

    @property
    def front_s(self) -> float:
        """Arc length of the front bumper."""
        return self.s + 0.5 * self.params.length

    @property
    def rear_s(self) -> float:
        """Arc length of the rear bumper."""
        return self.s - 0.5 * self.params.length

    def lateral_speed(self) -> float:
        """Lateral velocity ``d_dot`` [m/s] (positive = drifting left)."""
        return self.speed * math.sin(self.psi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EgoVehicle(s={self.s:.1f}, d={self.d:+.2f}, v={self.speed:.1f}, "
            f"psi={self.psi:+.3f}, steer={self.steer:+.3f})"
        )


class KinematicActor:
    """A traffic vehicle that follows the road exactly.

    Behaviour policies (see :mod:`repro.sim.agents`) drive it by setting
    ``accel_cmd`` and ``d_target`` each step; the actor integrates speed and
    slews its lateral offset toward ``d_target`` at ``lane_change_rate``.
    """

    def __init__(
        self,
        road: Road,
        s: float,
        d: float,
        speed: float,
        params: VehicleParams | None = None,
        name: str = "actor",
    ) -> None:
        if speed < 0.0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        self.road = road
        self.params = params or VehicleParams()
        self.name = name
        self.s = s
        self.d = d
        self.speed = speed
        self.accel = 0.0
        self.accel_cmd = 0.0
        self.d_target = d
        self.lane_change_rate = 1.3  # [m/s] lateral slew during lane changes

    def step(self, dt: float, mu: float = 1.0) -> None:
        """Advance one step; acceleration is friction-clamped."""
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        limit = mu * G
        self.accel = clamp(self.accel_cmd, -limit, limit)
        self.speed = max(0.0, self.speed + self.accel * dt)
        self.s += self.speed * dt
        self.d = rate_limit(self.d, self.d_target, self.lane_change_rate * dt)

    @property
    def front_s(self) -> float:
        """Arc length of the front bumper."""
        return self.s + 0.5 * self.params.length

    @property
    def rear_s(self) -> float:
        """Arc length of the rear bumper."""
        return self.s - 0.5 * self.params.length

    def lateral_speed(self) -> float:
        """Approximate lateral velocity toward ``d_target`` [m/s]."""
        if abs(self.d_target - self.d) < 1e-9:
            return 0.0
        return math.copysign(self.lane_change_rate, self.d_target - self.d)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KinematicActor({self.name!r}, s={self.s:.1f}, d={self.d:+.2f}, "
            f"v={self.speed:.1f})"
        )
