"""The paper's driving scenarios S1-S6 (NHTSA pre-collision typology).

Common setup (Section IV-A): the ego cruises at 50 mph and approaches the
lead vehicle from an initial bumper gap of 60 m or 230 m on a dry highway
map.  Per-repetition jitter (initial gap, lead speed, trigger gaps) is drawn
from the episode's seeded RNG streams so repetitions differ but campaigns
are exactly reproducible.

* **S1** lead cruises at 30 mph.
* **S2** lead cruises at 30 mph, then accelerates to 40 mph.
* **S3** lead cruises at 40 mph, then decelerates to 30 mph.
* **S4** lead cruises at 30 mph, then suddenly brakes to a stop.
* **S5** lead cruises at 30 mph; another vehicle cuts in from the
  neighbouring lane.
* **S6** two leads cruise at 30 mph in-lane; the nearer one changes into
  the adjacent lane.

Each scenario is a registered :class:`~repro.sim.families.ScenarioFamily`
(see :mod:`repro.sim.families`): :func:`build_scenario` dispatches through
the registry, so new workloads (e.g. :mod:`repro.sim.workloads`) plug into
campaigns, digests and reports without touching this module.  The paper
families declare no parameters, keeping their episode identity — seeds,
labels, campaign digests — byte-identical to the pre-registry code (the
golden-digest regression test pins this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.sim.agents import (
    AgentBinding,
    CruiseBehavior,
    CutInBehavior,
    LaneChangeAwayBehavior,
    SpeedChangeBehavior,
    SuddenStopBehavior,
)
from repro.sim.families import (
    EGO_SPEED,
    EGO_START_S,
    ParamItems,
    ScenarioFamily,
    get_family,
    lead_start_s,
    register_family,
    scenario_base,
)
from repro.sim.vehicle import KinematicActor
from repro.sim.weather import FRICTION_CONDITIONS, FrictionCondition
from repro.sim.world import World
from repro.utils.units import mph_to_ms

#: Scenario identifiers in paper order.
SCENARIO_IDS = ("S1", "S2", "S3", "S4", "S5", "S6")

#: The two initial bumper gaps evaluated in the paper [m].
INITIAL_GAPS = (60.0, 230.0)

__all__ = [
    "SCENARIO_IDS",
    "INITIAL_GAPS",
    "EGO_SPEED",
    "EGO_START_S",
    "ScenarioConfig",
    "ScenarioInfo",
    "scenario_catalog",
    "build_scenario",
    "PaperScenarioFamily",
]


@dataclass(frozen=True)
class ScenarioConfig:
    """A fully-specified episode setup.

    Attributes:
        scenario_id: a registered scenario-family id (paper: S1-S6).
        initial_gap: bumper gap to the (nearest) lead at t=0 [m].
        seed: episode seed; drives all per-repetition jitter.
        friction: road condition (defaults to dry, or to the family's own
            default condition — e.g. the friction-sweep family).
        jitter: enable per-repetition randomisation (disable for
            deterministic unit tests).
        params: family-parameter assignment (mapping or ``(name, value)``
            pairs); normalised to the family's full resolved tuple, so two
            configs meaning the same episode always compare equal.
    """

    scenario_id: str = "S1"
    initial_gap: float = 60.0
    seed: int = 0
    friction: Optional[FrictionCondition] = None
    jitter: bool = True
    params: ParamItems = ()

    def __post_init__(self) -> None:
        family = get_family(self.scenario_id)  # raises UnknownScenarioError
        # Explicit finiteness check: NaN compares False against any bound
        # and would otherwise sail into the geometry.
        if not math.isfinite(self.initial_gap) or self.initial_gap <= 0.0:
            raise ValueError(f"initial_gap must be positive, got {self.initial_gap}")
        if self.friction is not None:
            if not isinstance(self.friction, FrictionCondition):
                presets = ", ".join(sorted(FRICTION_CONDITIONS))
                raise ValueError(
                    f"friction must be a FrictionCondition (e.g. one of the "
                    f"presets {presets}) or None, got {self.friction!r}"
                )
            # FrictionCondition.__post_init__ enforces this, but a crafted
            # or stale object (dataclasses.replace on a subclass, pickles
            # from an older scheme) could carry an out-of-range mu into
            # every braking computation of the episode — re-check here,
            # where the episode identity is fixed.
            if not 0.0 < self.friction.mu <= 1.2:
                raise ValueError(
                    f"friction.mu must be in (0, 1.2], got {self.friction.mu}"
                )
        object.__setattr__(self, "params", family.resolve_params(self.params))


@dataclass(frozen=True)
class ScenarioInfo:
    """Catalog entry describing a scenario (for docs and reports)."""

    scenario_id: str
    description: str
    lead_speeds_mph: List[float] = field(default_factory=list)


def scenario_catalog() -> List[ScenarioInfo]:
    """Human-readable catalogue of S1-S6 (mirrors the paper's Fig. 4)."""
    return [
        ScenarioInfo(family.family_id, family.title, list(family.lead_speeds_mph))
        for family in PAPER_FAMILIES
    ]


def build_scenario(config: ScenarioConfig) -> World:
    """Instantiate the world for ``config`` via the family registry.

    The ego starts at ``EGO_START_S`` already cruising at 50 mph; leads are
    placed ``initial_gap`` metres ahead (bumper to bumper).

    Raises:
        UnknownScenarioError: ``config.scenario_id`` names no registered
            family (already rejected by :class:`ScenarioConfig` itself for
            configs built through the dataclass).
    """
    return get_family(config.scenario_id).build(config)


# --------------------------------------------------------------------- #
# The paper families
# --------------------------------------------------------------------- #


class PaperScenarioFamily(ScenarioFamily):
    """One of the paper's S1-S6 NHTSA pre-collision scenarios.

    Declares no parameters, so its episode identity (seed path, labels,
    campaign digests) is byte-identical to the pre-registry hardcoded
    grid.  Construction order of the RNG draws is part of that contract:
    gap jitter, then the 30/40 mph speed jitters, then the per-scenario
    trigger jitters — exactly the original ``build_scenario`` sequence.
    """

    def __init__(
        self,
        family_id: str,
        title: str,
        lead_speeds_mph: Tuple[float, ...],
        populate: Callable,
    ) -> None:
        super().__init__(family_id=family_id, title=title)
        self.lead_speeds_mph = lead_speeds_mph
        self._populate = populate

    def build(self, config: ScenarioConfig) -> World:
        world, rng, jit = scenario_base(config)
        lead_s = lead_start_s(world.ego, config.initial_gap + jit(4.0))
        v30 = mph_to_ms(30.0) + jit(0.45)
        v40 = mph_to_ms(40.0) + jit(0.45)
        self._populate(world, lead_s, v30, v40, jit)
        return world


def _populate_s1(world: World, lead_s: float, v30: float, v40: float, jit) -> None:
    road = world.road
    lv = KinematicActor(road, s=lead_s, d=0.0, speed=v30, name="LV")
    world.add_agent(AgentBinding(lv, CruiseBehavior(v30)))


def _populate_s2(world: World, lead_s: float, v30: float, v40: float, jit) -> None:
    road = world.road
    lv = KinematicActor(road, s=lead_s, d=0.0, speed=v30, name="LV")
    behavior = SpeedChangeBehavior(
        initial_speed=v30,
        final_speed=v40,
        trigger_gap=45.0 + jit(4.0),
        rate=1.0,
    )
    world.add_agent(AgentBinding(lv, behavior))


def _populate_s3(world: World, lead_s: float, v30: float, v40: float, jit) -> None:
    road = world.road
    lv = KinematicActor(road, s=lead_s, d=0.0, speed=v40, name="LV")
    behavior = SpeedChangeBehavior(
        initial_speed=v40,
        final_speed=v30,
        trigger_gap=35.0 + jit(4.0),
        rate=2.0,
    )
    world.add_agent(AgentBinding(lv, behavior))


def _populate_s4(world: World, lead_s: float, v30: float, v40: float, jit) -> None:
    road = world.road
    lv = KinematicActor(road, s=lead_s, d=0.0, speed=v30, name="LV")
    behavior = SuddenStopBehavior(
        speed=v30,
        trigger_gap=72.0 + jit(8.0),
        decel=6.5,
    )
    world.add_agent(AgentBinding(lv, behavior))


def _populate_s5(world: World, lead_s: float, v30: float, v40: float, jit) -> None:
    road = world.road
    lv = KinematicActor(road, s=lead_s, d=0.0, speed=v30, name="LV")
    world.add_agent(AgentBinding(lv, CruiseBehavior(v30)))
    # The cut-in car starts in the adjacent (left) lane, slightly
    # behind the lead, and merges when the ego closes in fast.
    cut_s = lead_s - 20.0 + jit(3.0)
    cut = KinematicActor(road, s=cut_s, d=road.lane_center(1), speed=v30, name="CutIn")
    # A leisurely merge: at speed the ego reaches the merging car while
    # it is still between lanes, so un-braked impacts are side impacts.
    cut.lane_change_rate = 0.8
    world.add_agent(
        AgentBinding(cut, CutInBehavior(speed=v30, trigger_gap=26.0 + jit(3.0)))
    )


def _populate_s6(world: World, lead_s: float, v30: float, v40: float, jit) -> None:
    road = world.road
    far = KinematicActor(road, s=lead_s + 28.0, d=0.0, speed=v30, name="LV-far")
    world.add_agent(AgentBinding(far, CruiseBehavior(v30)))
    near = KinematicActor(road, s=lead_s, d=0.0, speed=v30, name="LV-near")
    behavior = LaneChangeAwayBehavior(
        speed=v30,
        trigger_gap=40.0 + jit(4.0),
        target_d=road.lane_center(1),
    )
    world.add_agent(AgentBinding(near, behavior))


#: The paper's six families in paper order, registered below.
PAPER_FAMILIES: Tuple[PaperScenarioFamily, ...] = tuple(
    PaperScenarioFamily(fid, title, speeds, populate)
    for fid, title, speeds, populate in (
        ("S1", "Lead vehicle cruises at a constant 30 mph.", (30.0,), _populate_s1),
        ("S2", "Lead cruises at 30 mph, then accelerates to 40 mph.", (30.0, 40.0), _populate_s2),
        ("S3", "Lead cruises at 40 mph, then decelerates to 30 mph.", (40.0, 30.0), _populate_s3),
        ("S4", "Lead cruises at 30 mph, then suddenly brakes to a stop.", (30.0,), _populate_s4),
        ("S5", "Lead cruises at 30 mph; adjacent-lane vehicle cuts in.", (30.0,), _populate_s5),
        ("S6", "Two leads at 30 mph; the nearer changes lane away.", (30.0,), _populate_s6),
    )
)

# replace=True keeps module re-imports (test harnesses reloading the
# package) idempotent instead of failing on the duplicate id.
for _family in PAPER_FAMILIES:
    register_family(_family, replace=True)
