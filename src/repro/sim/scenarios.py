"""The paper's driving scenarios S1-S6 (NHTSA pre-collision typology).

Common setup (Section IV-A): the ego cruises at 50 mph and approaches the
lead vehicle from an initial bumper gap of 60 m or 230 m on a dry highway
map.  Per-repetition jitter (initial gap, lead speed, trigger gaps) is drawn
from the episode's seeded RNG streams so repetitions differ but campaigns
are exactly reproducible.

* **S1** lead cruises at 30 mph.
* **S2** lead cruises at 30 mph, then accelerates to 40 mph.
* **S3** lead cruises at 40 mph, then decelerates to 30 mph.
* **S4** lead cruises at 30 mph, then suddenly brakes to a stop.
* **S5** lead cruises at 30 mph; another vehicle cuts in from the
  neighbouring lane.
* **S6** two leads cruise at 30 mph in-lane; the nearer one changes into
  the adjacent lane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.agents import (
    AgentBinding,
    CruiseBehavior,
    CutInBehavior,
    LaneChangeAwayBehavior,
    SpeedChangeBehavior,
    SuddenStopBehavior,
)
from repro.sim.track import build_highway_map
from repro.sim.vehicle import EgoVehicle, KinematicActor
from repro.sim.weather import FrictionCondition
from repro.sim.world import World
from repro.utils.rng import RngStreams
from repro.utils.units import mph_to_ms

#: Scenario identifiers in paper order.
SCENARIO_IDS = ("S1", "S2", "S3", "S4", "S5", "S6")

#: The two initial bumper gaps evaluated in the paper [m].
INITIAL_GAPS = (60.0, 230.0)

#: Ego cruise set-speed: 50 mph.
EGO_SPEED = mph_to_ms(50.0)

#: Arc length where the ego vehicle starts.
EGO_START_S = 30.0


@dataclass(frozen=True)
class ScenarioConfig:
    """A fully-specified episode setup.

    Attributes:
        scenario_id: one of :data:`SCENARIO_IDS`.
        initial_gap: bumper gap to the (nearest) lead at t=0 [m].
        seed: episode seed; drives all per-repetition jitter.
        friction: road condition (defaults to dry).
        jitter: enable per-repetition randomisation (disable for
            deterministic unit tests).
    """

    scenario_id: str = "S1"
    initial_gap: float = 60.0
    seed: int = 0
    friction: Optional[FrictionCondition] = None
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.scenario_id not in SCENARIO_IDS:
            raise ValueError(f"unknown scenario {self.scenario_id!r}")
        if self.initial_gap <= 0.0:
            raise ValueError(f"initial_gap must be positive, got {self.initial_gap}")


@dataclass(frozen=True)
class ScenarioInfo:
    """Catalog entry describing a scenario (for docs and reports)."""

    scenario_id: str
    description: str
    lead_speeds_mph: List[float] = field(default_factory=list)


def scenario_catalog() -> List[ScenarioInfo]:
    """Human-readable catalogue of S1-S6 (mirrors the paper's Fig. 4)."""
    return [
        ScenarioInfo("S1", "Lead vehicle cruises at a constant 30 mph.", [30.0]),
        ScenarioInfo("S2", "Lead cruises at 30 mph, then accelerates to 40 mph.", [30.0, 40.0]),
        ScenarioInfo("S3", "Lead cruises at 40 mph, then decelerates to 30 mph.", [40.0, 30.0]),
        ScenarioInfo("S4", "Lead cruises at 30 mph, then suddenly brakes to a stop.", [30.0]),
        ScenarioInfo("S5", "Lead cruises at 30 mph; adjacent-lane vehicle cuts in.", [30.0]),
        ScenarioInfo("S6", "Two leads at 30 mph; the nearer changes lane away.", [30.0]),
    ]


def build_scenario(config: ScenarioConfig) -> World:
    """Instantiate the world for ``config``.

    The ego starts at ``EGO_START_S`` already cruising at 50 mph; leads are
    placed ``initial_gap`` metres ahead (bumper to bumper).
    """
    streams = RngStreams(config.seed).child("scenario", config.scenario_id)
    rng = streams.get("setup")

    def jit(scale: float) -> float:
        if not config.jitter:
            return 0.0
        return float(rng.uniform(-scale, scale))

    road = build_highway_map()
    ego = EgoVehicle(road, s=EGO_START_S, d=0.0, speed=EGO_SPEED)
    world = World(road, ego, friction=config.friction)

    gap = config.initial_gap + jit(4.0)
    lead_s = ego.front_s + gap + 0.5 * ego.params.length  # rear bumper at gap
    v30 = mph_to_ms(30.0) + jit(0.45)
    v40 = mph_to_ms(40.0) + jit(0.45)
    sid = config.scenario_id

    if sid == "S1":
        lv = KinematicActor(road, s=lead_s, d=0.0, speed=v30, name="LV")
        world.add_agent(AgentBinding(lv, CruiseBehavior(v30)))
    elif sid == "S2":
        lv = KinematicActor(road, s=lead_s, d=0.0, speed=v30, name="LV")
        behavior = SpeedChangeBehavior(
            initial_speed=v30,
            final_speed=v40,
            trigger_gap=45.0 + jit(4.0),
            rate=1.0,
        )
        world.add_agent(AgentBinding(lv, behavior))
    elif sid == "S3":
        lv = KinematicActor(road, s=lead_s, d=0.0, speed=v40, name="LV")
        behavior = SpeedChangeBehavior(
            initial_speed=v40,
            final_speed=v30,
            trigger_gap=35.0 + jit(4.0),
            rate=2.0,
        )
        world.add_agent(AgentBinding(lv, behavior))
    elif sid == "S4":
        lv = KinematicActor(road, s=lead_s, d=0.0, speed=v30, name="LV")
        behavior = SuddenStopBehavior(
            speed=v30,
            trigger_gap=72.0 + jit(8.0),
            decel=6.5,
        )
        world.add_agent(AgentBinding(lv, behavior))
    elif sid == "S5":
        lv = KinematicActor(road, s=lead_s, d=0.0, speed=v30, name="LV")
        world.add_agent(AgentBinding(lv, CruiseBehavior(v30)))
        # The cut-in car starts in the adjacent (left) lane, slightly
        # behind the lead, and merges when the ego closes in fast.
        cut_s = lead_s - 20.0 + jit(3.0)
        cut = KinematicActor(
            road, s=cut_s, d=road.lane_center(1), speed=v30, name="CutIn"
        )
        # A leisurely merge: at speed the ego reaches the merging car while
        # it is still between lanes, so un-braked impacts are side impacts.
        cut.lane_change_rate = 0.8
        world.add_agent(
            AgentBinding(cut, CutInBehavior(speed=v30, trigger_gap=26.0 + jit(3.0)))
        )
    elif sid == "S6":
        far = KinematicActor(road, s=lead_s + 28.0, d=0.0, speed=v30, name="LV-far")
        world.add_agent(AgentBinding(far, CruiseBehavior(v30)))
        near = KinematicActor(road, s=lead_s, d=0.0, speed=v30, name="LV-near")
        behavior = LaneChangeAwayBehavior(
            speed=v30,
            trigger_gap=40.0 + jit(4.0),
            target_d=road.lane_center(1),
        )
        world.add_agent(AgentBinding(near, behavior))
    else:  # pragma: no cover - guarded by ScenarioConfig validation
        raise ValueError(f"unknown scenario {sid!r}")

    return world
