"""Lane-wide hazard/accident screening for the batch engine.

:class:`BatchHazardMonitor` evaluates the H1 TTC/headway rules, the H2
lane-line rule and the A1/A2 accident latches of
:class:`repro.core.hazards.HazardMonitor` as float64 expressions over the
already-batched kinematic state, producing a per-lane **masked screen**:
"no lane can possibly mark or latch anything this step".  On quiet steps
(the overwhelming majority) the executor skips the per-lane scalar
``HazardMonitor.update`` entirely; only mask-flagged lanes run it, so the
scalar :class:`~repro.core.hazards.HazardRecord` latches — what episode
retirement reads — are written by exactly the same code as on the serial
path, bit-identically.

The screen is *exact*, not an over-approximation:

* the default-corridor lead view in ``BatchDynamics.control_view`` holds
  precisely the gap/speed the scalar ``world.lead_actor()`` +
  ``max(0.0, lead.rear_s - ego.front_s)`` computation produces (same
  operand association, same signed-zero ``max`` replication);
* the TTC division is evaluated everywhere but consulted only where
  ``closing > 0.3`` — exactly the scalar short-circuit;
* already-latched hazards are masked out with per-lane done bits (a
  ``mark`` on a latched record is a no-op), refreshed from the scalar
  records whenever a flagged lane runs;
* a latched *accident* retires the lane on the same step, so active lanes
  never exercise the monitor's accident short-circuit.

Non-vector lanes (ML / trace recording) run the full scalar
``_after_dynamics`` path and their mask bits are never consulted.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.hazards import HazardMonitor
from repro.sim.batch_state import BatchDynamics


class BatchHazardMonitor:
    """Masked hazard screen over the lanes of one batch.

    Args:
        monitors: per-lane hazard monitors, in batch-lane order.
        dynamics: the batch integrator whose bound state and
            ``control_view`` the screen reads (call :meth:`screen` only
            right after ``dynamics.step`` for the same active set).
    """

    def __init__(
        self, monitors: Sequence[HazardMonitor], dynamics: BatchDynamics
    ) -> None:
        self.monitors: List[HazardMonitor] = list(monitors)
        self.dynamics = dynamics
        self._ttc_thr = np.array([m.ttc_hazard_threshold for m in self.monitors])
        self._headway = np.array([m.headway_fraction for m in self.monitors])
        self._lane_thr = np.array([m.lane_distance_hazard for m in self.monitors])
        self._h1_done = np.array([m.h1.occurred for m in self.monitors])
        self._h2_done = np.array([m.h2.occurred for m in self.monitors])

    def screen(self, lanes: Sequence[int]) -> List[bool]:
        """Per-lane "the scalar update could mark or latch something" bits.

        ``lanes`` must be the active set the dynamics last stepped (its
        binding and control view are reused, not recomputed).
        """
        dyn = self.dynamics
        key = tuple(lanes)
        view = dyn.control_view
        if view is None or view.key != key:
            raise RuntimeError(
                "hazard screen requires a control view for the active set; "
                "call BatchDynamics.step/prime first"
            )
        b = dyn._bind(key)
        idx = np.asarray(key, dtype=np.intp)

        # H1: TTC below threshold, or gap below the headway-seconds rule.
        lead = view.leads[0]  # config 0 is always world.lead_actor()'s
        speed = b.speed
        closing = speed - lead.speed
        with np.errstate(divide="ignore", invalid="ignore"):
            ttc_fire = (closing > 0.3) & (
                lead.gap / closing < self._ttc_thr[idx]
            )
        h1 = lead.valid & (ttc_fire | (lead.gap < self._headway[idx] * speed))

        # H2: a body side within the lane-line hazard distance.
        h2 = (
            np.minimum(view.dist_right, view.dist_left) < self._lane_thr[idx]
        )

        # A1/A2: the world latches the batch detectors already maintain.
        accident = ~b.coll_open | b.off_road_latch

        flags = (
            (h1 & ~self._h1_done[idx]) | (h2 & ~self._h2_done[idx]) | accident
        )
        return flags.tolist()

    def refresh(self, lane: int) -> None:
        """Re-read a lane's scalar records after its monitor ran."""
        monitor = self.monitors[lane]
        self._h1_done[lane] = monitor.h1.occurred
        self._h2_done[lane] = monitor.h2.occurred
