"""The world: actors, stepping, collision and lane-departure detection.

The world owns the road, the friction condition, the ego vehicle and all
traffic actors.  The closed-loop platform (``repro.core.platform``) applies
actuator commands to the ego, then calls :meth:`World.step`, which ticks the
traffic behaviours, integrates every vehicle, and refreshes the collision /
departure flags the hazard detectors consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.agents import AgentBinding
from repro.sim.road import Road
from repro.sim.vehicle import EgoVehicle, KinematicActor
from repro.sim.weather import FrictionCondition


@dataclass
class CollisionEvent:
    """A detected ego collision.

    Attributes:
        time: simulation time [s].
        actor_name: name of the struck traffic actor.
        relative_speed: ego speed minus actor speed at impact [m/s].
        lateral: True if the struck actor was outside the ego's lane centre
            corridor (side impact), False for a plain forward collision.
    """

    time: float
    actor_name: str
    relative_speed: float
    lateral: bool


class World:
    """A stepped 2-D highway world.

    Args:
        road: road geometry.
        ego: the ADAS-controlled vehicle.
        friction: road-surface condition (defaults to dry).
    """

    def __init__(
        self,
        road: Road,
        ego: EgoVehicle,
        friction: Optional[FrictionCondition] = None,
    ) -> None:
        self.road = road
        self.ego = ego
        self.friction = friction or FrictionCondition("default", 1.0)
        self.agents: List[AgentBinding] = []
        self.time = 0.0
        self.collision: Optional[CollisionEvent] = None
        self.off_lane = False
        self.off_road = False
        #: Per-step query cache, populated only by the batch engine
        #: (``repro.sim.batch_state``); stays ``None`` on the serial path.
        #: Entries are keyed by the exact query arguments and stamped with
        #: the world time they were computed at.
        self._step_cache: Optional[dict] = None

    def add_agent(self, binding: AgentBinding) -> None:
        """Register a traffic actor."""
        self.agents.append(binding)

    @property
    def actors(self) -> List[KinematicActor]:
        """All traffic actors (without their behaviours)."""
        return [b.actor for b in self.agents]

    def step(self, dt: float) -> None:
        """Advance the world by ``dt``: behaviours, dynamics, detection."""
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        mu = self.friction.mu
        for binding in self.agents:
            binding.update(self.ego, self.time)
        self.ego.step(dt, mu=mu)
        for binding in self.agents:
            binding.actor.step(dt, mu=mu)
        self.time += dt
        self._detect_collision()
        self._detect_departure()

    # ------------------------------------------------------------------ #
    # Detection
    # ------------------------------------------------------------------ #

    def _detect_collision(self) -> None:
        """Rectangle-overlap collision test in Frenet coordinates."""
        if self.collision is not None:
            return
        ego = self.ego
        half_len_e = 0.5 * ego.params.length
        half_wid_e = 0.5 * ego.params.width
        for binding in self.agents:
            actor = binding.actor
            ds = abs(actor.s - ego.s)
            dd = abs(actor.d - ego.d)
            if ds < half_len_e + 0.5 * actor.params.length and dd < (
                half_wid_e + 0.5 * actor.params.width
            ):
                lane_half = 0.5 * self.road.lane_width
                self.collision = CollisionEvent(
                    time=self.time,
                    actor_name=actor.name,
                    relative_speed=ego.speed - actor.speed,
                    lateral=abs(actor.d - ego.d) > lane_half * 0.6,
                )
                return

    #: How far the ego centre must cross its lane line before the run
    #: counts as "driving out of the lane" (the paper's A2).  0.9 m past
    #: the line puts the whole car body outside the lane.
    OFF_LANE_MARGIN = 0.9

    def _detect_departure(self) -> None:
        """Flag lane/road departure of the ego vehicle.

        ``off_lane`` latches once the ego centre is ``OFF_LANE_MARGIN``
        beyond a lane line of its own lane (the paper's A2 "driving out of
        the lane"), and ``off_road`` once the whole body leaves the paved
        lanes.
        """
        ego = self.ego
        right, left = self.road.lane_bounds(0)
        if ego.d < right - self.OFF_LANE_MARGIN or ego.d > left + self.OFF_LANE_MARGIN:
            self.off_lane = True
        road_right, road_left = self.road.road_bounds()
        half_wid = 0.5 * ego.params.width
        if ego.d + half_wid < road_right or ego.d - half_wid > road_left:
            self.off_road = True

    # ------------------------------------------------------------------ #
    # Queries used by sensors, hazard detection and metrics
    # ------------------------------------------------------------------ #

    #: Lateral half-width of the lead-selection corridor [m].  A camera or
    #: radar keeps tracking a lead while there is body overlap, so the
    #: corridor is wider than the strict lane-half (1.85 m); during an
    #: attack-induced drift the lead therefore stays in view until the ego
    #: is nearly out of the lane, *then* drops — at which point the ACC
    #: accelerates toward the set speed (the cascade behind the paper's
    #: observation that AEB can stop lateral accidents).
    LEAD_CORRIDOR = 2.0

    def lead_actor(
        self, max_range: float = 250.0, corridor: Optional[float] = None
    ) -> Optional[KinematicActor]:
        """Nearest in-corridor actor ahead of the ego within ``max_range``.

        Args:
            max_range: longitudinal search range [m].
            corridor: lateral half-width [m]; defaults to
                :data:`LEAD_CORRIDOR` (the sensor corridor).  The driver
                model passes a wider value — a human looking out of the
                windshield still sees a car ahead that the lane-bound
                perception stack has dropped.
        """
        ego = self.ego
        if corridor is None:
            corridor = self.LEAD_CORRIDOR
        cache = self._step_cache
        if cache is not None and cache["time"] == self.time:
            try:
                # ``None`` (no lead) is a legitimate cached value, so the
                # probe distinguishes a miss via KeyError, not a sentinel.
                return cache[("lead", max_range, corridor)]
            except KeyError:
                pass
        best: Optional[KinematicActor] = None
        best_gap = max_range
        for binding in self.agents:
            actor = binding.actor
            if abs(actor.d - ego.d) > corridor:
                continue
            gap = actor.rear_s - ego.front_s
            if -actor.params.length < gap < best_gap:
                best = actor
                best_gap = max(gap, 0.0)
        return best

    def lead_gap(self) -> Optional[float]:
        """Bumper-to-bumper gap to the in-lane lead [m], if any."""
        lead = self.lead_actor()
        if lead is None:
            return None
        return max(0.0, lead.rear_s - self.ego.front_s)

    def lane_line_distances(self) -> tuple:
        """Distances [m] from the ego body sides to its *current* lane's
        lines.

        Returns ``(right, left)``; negative means that side of the car has
        crossed the line.  This is the quantity behind the paper's Table V
        and the H2 hazard ("closer than 0.1 m to a lane line").  The lane
        is the nearest one — a vehicle that has fully drifted into the
        adjacent lane is measured against that lane's lines, as a
        camera-based lane detector would report.
        """
        cache = self._step_cache
        if cache is not None and cache["time"] == self.time:
            return cache["lld"]
        lane = self.road.nearest_lane(self.ego.d)
        right, left = self.road.lane_bounds(lane)
        half_wid = 0.5 * self.ego.params.width
        dist_right = (self.ego.d - half_wid) - right
        dist_left = left - (self.ego.d + half_wid)
        return dist_right, dist_left

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"World(t={self.time:.2f}s, ego={self.ego!r}, "
            f"agents={len(self.agents)}, mu={self.friction.mu})"
        )
