"""Pluggable scenario-family registry.

A :class:`ScenarioFamily` is one *kind* of episode: it declares a typed
parameter schema (axes with defaults and validation), contributes a
canonical identity to campaign digests, and knows how to build the
:class:`~repro.sim.world.World` for one fully-specified episode.  The
registry decouples every layer above the simulator — campaign
enumeration, content digests, the result cache, the report DAG — from the
hardcoded paper grid: adding a workload is registering a family, not
editing the enumeration code.

Identity rules (what keeps existing caches valid):

* a family's id doubles as the episode ``scenario_id``, so the paper's
  S1-S6 keep their exact historical identity;
* families **without** parameters canonicalise exactly as before the
  registry existed — episode seeds, labels and campaign digests for the
  paper grid are byte-identical (pinned by the golden-digest test);
* families **with** parameters carry the resolved ``(name, value)``
  pairs in :attr:`~repro.attacks.campaign.EpisodeSpec.params`; the pairs
  join the canonical-JSON digest payload and the episode seed path, so
  two sweep points can never share a cache entry.

The paper families register themselves when :mod:`repro.sim.scenarios`
imports; the extra workloads (friction sweep, curved road, dense
traffic) when :mod:`repro.sim.workloads` does.  Both happen eagerly from
``repro.sim.__init__``, and :func:`get_family` lazily imports them as a
fallback, so lookups never depend on import order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.sim.track import build_highway_map
from repro.sim.road import Road
from repro.sim.vehicle import EgoVehicle
from repro.sim.weather import FrictionCondition
from repro.sim.world import World
from repro.utils.canonical import canonical_scalar
from repro.utils.rng import RngStreams
from repro.utils.units import mph_to_ms

#: Ego cruise set-speed: 50 mph (the paper's common setup, shared by every
#: family unless it overrides the base construction).
EGO_SPEED = mph_to_ms(50.0)

#: Arc length where the ego vehicle starts.
EGO_START_S = 30.0

#: The parameter value types a schema may declare.
PARAM_KINDS = ("float", "int", "str")

#: Resolved parameter assignments in family declaration order — the form
#: stored on episode specs and fed into digests and seed derivation.
ParamItems = Tuple[Tuple[str, object], ...]


class UnknownScenarioError(ValueError):
    """A scenario id that no registered family claims.

    The message names every registered family so CLI users see what *is*
    available instead of a bare traceback.
    """

    def __init__(self, family_id: object, registered: Sequence[str]) -> None:
        self.family_id = family_id
        self.registered = tuple(registered)
        names = ", ".join(self.registered) if self.registered else "(none)"
        super().__init__(
            f"unknown scenario {family_id!r}; registered scenario families: "
            f"{names} (see 'repro scenarios list')"
        )


@dataclass(frozen=True)
class ParamSpec:
    """One typed parameter axis of a scenario family.

    Attributes:
        name: axis name (``mu``, ``curve_radius``, ...); must be a valid
            identifier so CLI ``--scenario-param name=value`` parses.
        kind: value type, one of :data:`PARAM_KINDS`.
        default: value used when a campaign does not sweep the axis.
        minimum / maximum: inclusive numeric bounds (numeric kinds only).
        choices: closed set of admissible values (overrides bounds).
        help: one-line description for ``repro scenarios list``.
    """

    name: str
    kind: str = "float"
    default: object = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    choices: Optional[Tuple[object, ...]] = None
    help: str = ""

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"parameter name must be an identifier, got {self.name!r}")
        if self.kind not in PARAM_KINDS:
            raise ValueError(
                f"parameter kind must be one of {PARAM_KINDS}, got {self.kind!r}"
            )
        if self.choices is not None and not self.choices:
            raise ValueError(f"parameter {self.name!r}: empty choices")
        # The default must satisfy the spec's own constraints.
        object.__setattr__(self, "default", self.validate(self.default))

    def validate(self, value: object) -> object:
        """Coerce ``value`` to the declared kind and check its invariants.

        Returns the canonical value (e.g. ``int`` widened to ``float`` for
        a float axis) — the form stored in episode identities.

        Raises:
            ValueError: wrong type, out of bounds, or not in ``choices``.
        """
        if self.kind == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"parameter {self.name!r} expects a number, got {value!r}"
                )
            canonical: object = float(value)
            # NaN slips through bound comparisons (both are False) and
            # would poison every downstream geometry/metric computation.
            if not math.isfinite(canonical):
                raise ValueError(
                    f"parameter {self.name!r} expects a finite number, "
                    f"got {canonical!r}"
                )
        elif self.kind == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(
                    f"parameter {self.name!r} expects an integer, got {value!r}"
                )
            canonical = int(value)
        else:  # str
            if not isinstance(value, str):
                raise ValueError(
                    f"parameter {self.name!r} expects a string, got {value!r}"
                )
            canonical = value
        if self.choices is not None:
            if canonical not in self.choices:
                raise ValueError(
                    f"parameter {self.name!r} must be one of {list(self.choices)}, "
                    f"got {canonical!r}"
                )
            return canonical
        if self.kind in ("float", "int"):
            if self.minimum is not None and canonical < self.minimum:
                raise ValueError(
                    f"parameter {self.name!r} must be >= {self.minimum}, "
                    f"got {canonical!r}"
                )
            if self.maximum is not None and canonical > self.maximum:
                raise ValueError(
                    f"parameter {self.name!r} must be <= {self.maximum}, "
                    f"got {canonical!r}"
                )
        return canonical

    def parse(self, text: str) -> object:
        """Parse a CLI string into a validated canonical value."""
        if self.kind == "float":
            try:
                value: object = float(text)
            except ValueError:
                raise ValueError(
                    f"parameter {self.name!r} expects a number, got {text!r}"
                ) from None
        elif self.kind == "int":
            try:
                value = int(text)
            except ValueError:
                raise ValueError(
                    f"parameter {self.name!r} expects an integer, got {text!r}"
                ) from None
        else:
            value = text
        return self.validate(value)

    def schema(self) -> Dict[str, object]:
        """JSON-safe form for ``repro scenarios list --json``."""
        doc: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "default": self.default,
        }
        if self.minimum is not None:
            doc["minimum"] = self.minimum
        if self.maximum is not None:
            doc["maximum"] = self.maximum
        if self.choices is not None:
            doc["choices"] = list(self.choices)
        if self.help:
            doc["help"] = self.help
        return doc


class ScenarioFamily:
    """Base class for registered scenario families.

    Subclasses (or instances configured via the constructor arguments)
    provide:

    * :attr:`family_id` — unique id; doubles as the episode
      ``scenario_id`` and the campaign/CLI name;
    * :attr:`params` — the typed parameter schema (may be empty);
    * :meth:`build` — construct the :class:`World` for one episode.

    Attributes:
        family_id: registry key; no ``/`` (the episode-label separator).
        title: one-line description for catalogs and reports.
        params: declared parameter axes, in declaration order.
        default_initial_gaps: initial-gap axis a sweep uses when the
            campaign does not override it (paper families: 60 m / 230 m).
        report_axes: the default parameter sweep ``repro report
            --family`` runs, as ``(name, values)`` pairs; empty means a
            single default-parameter arm.
    """

    family_id: str = ""
    title: str = ""
    params: Tuple[ParamSpec, ...] = ()
    default_initial_gaps: Tuple[float, ...] = (60.0, 230.0)
    report_axes: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()

    def __init__(
        self,
        family_id: Optional[str] = None,
        title: Optional[str] = None,
        params: Optional[Sequence[ParamSpec]] = None,
        default_initial_gaps: Optional[Sequence[float]] = None,
        report_axes: Optional[Sequence[Tuple[str, Sequence[object]]]] = None,
    ) -> None:
        if family_id is not None:
            self.family_id = family_id
        if title is not None:
            self.title = title
        if params is not None:
            self.params = tuple(params)
        if default_initial_gaps is not None:
            self.default_initial_gaps = tuple(default_initial_gaps)
        if report_axes is not None:
            self.report_axes = tuple((n, tuple(v)) for n, v in report_axes)
        if not self.family_id or "/" in self.family_id or self.family_id.strip() != self.family_id:
            raise ValueError(
                f"family_id must be a non-empty token without '/', got "
                f"{self.family_id!r}"
            )
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise ValueError(
                f"family {self.family_id!r} declares duplicate parameters {names}"
            )
        if not self.default_initial_gaps or any(
            g <= 0.0 for g in self.default_initial_gaps
        ):
            raise ValueError(
                f"family {self.family_id!r}: default_initial_gaps must be "
                f"positive, got {self.default_initial_gaps}"
            )

    # ---- parameter handling ---------------------------------------------

    def param_spec(self, name: str) -> ParamSpec:
        """The declared spec for axis ``name``.

        Raises:
            ValueError: the family does not declare the axis.
        """
        for spec in self.params:
            if spec.name == name:
                return spec
        declared = [p.name for p in self.params] or "(none)"
        raise ValueError(
            f"scenario family {self.family_id!r} declares no parameter "
            f"{name!r}; declared parameters: {declared}"
        )

    def resolve_params(
        self, overrides: Union[Mapping[str, object], ParamItems, None] = None
    ) -> ParamItems:
        """Full validated parameter assignment in declaration order.

        Args:
            overrides: values for a subset of the declared axes (mapping
                or ``(name, value)`` pairs); unset axes take defaults.

        Returns:
            ``((name, canonical value), ...)`` over *every* declared axis
            — the identity stored on episode specs.  Empty for families
            without parameters (preserving pre-registry identities).

        Raises:
            ValueError: an override names an undeclared axis or fails
                validation.
        """
        items = dict(overrides or ())
        resolved = []
        for spec in self.params:
            if spec.name in items:
                resolved.append((spec.name, spec.validate(items.pop(spec.name))))
            else:
                resolved.append((spec.name, spec.default))
        if items:
            declared = [p.name for p in self.params] or "(none)"
            raise ValueError(
                f"scenario family {self.family_id!r} declares no parameter(s) "
                f"{sorted(items)}; declared parameters: {declared}"
            )
        return tuple(resolved)

    # ---- identity --------------------------------------------------------

    def schema(self) -> Dict[str, object]:
        """JSON-safe catalog entry (``repro scenarios list --json``)."""
        return {
            "id": self.family_id,
            "title": self.title,
            "params": [p.schema() for p in self.params],
            "default_initial_gaps": list(self.default_initial_gaps),
            "report_axes": [
                {"name": name, "values": list(values)}
                for name, values in self.report_axes
            ],
        }

    # ---- construction ----------------------------------------------------

    def build(self, config) -> World:
        """Build the world for one fully-specified episode.

        ``config`` is a :class:`~repro.sim.scenarios.ScenarioConfig`
        whose ``scenario_id`` names this family and whose ``params`` are
        already resolved/validated.  Must be deterministic in
        ``(config.params, config.seed)``.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        axes = ", ".join(p.name for p in self.params)
        return f"ScenarioFamily({self.family_id!r}, params=[{axes}])"


# --------------------------------------------------------------------- #
# Shared episode setup
# --------------------------------------------------------------------- #


def scenario_base(
    config,
    road: Optional[Road] = None,
    friction: Optional[FrictionCondition] = None,
):
    """Common episode setup shared by every family's :meth:`build`.

    Creates the seeded per-scenario RNG (stream path
    ``("scenario", scenario_id)`` — unchanged from the pre-registry code,
    so paper episodes draw identical jitter), the road (the paper's
    highway map unless the family supplies one), the cruising ego and the
    world.

    Args:
        config: the episode's ScenarioConfig.
        road: family-specific road geometry (default: the highway map).
        friction: family-default road condition, used only when the
            config itself does not carry one (an explicit campaign-level
            ``friction`` always wins).

    Returns:
        ``(world, rng, jit)`` — the world, the setup RNG stream, and a
        ``jit(scale)`` helper returning 0 when jitter is disabled.
    """
    streams = RngStreams(config.seed).child("scenario", config.scenario_id)
    rng = streams.get("setup")

    def jit(scale: float) -> float:
        if not config.jitter:
            return 0.0
        return float(rng.uniform(-scale, scale))

    if road is None:
        road = build_highway_map()
    ego = EgoVehicle(road, s=EGO_START_S, d=0.0, speed=EGO_SPEED)
    effective = config.friction if config.friction is not None else friction
    world = World(road, ego, friction=effective)
    return world, rng, jit


def lead_start_s(ego: EgoVehicle, gap: float) -> float:
    """Arc length placing a lead's *rear bumper* ``gap`` metres ahead.

    ``initial_gap`` is a bumper-to-bumper distance everywhere in the
    toolkit; a family that placed the lead's *centre* at the gap would
    silently run ~half a car length tighter than every other family at
    the same gap value.  Use this helper in every ``build``.
    """
    return ego.front_s + gap + 0.5 * ego.params.length


# --------------------------------------------------------------------- #
# The registry
# --------------------------------------------------------------------- #

_REGISTRY: Dict[str, ScenarioFamily] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the modules that register the built-in families.

    Normally a no-op: ``repro.sim.__init__`` imports both eagerly.  The
    lazy fallback keeps direct ``families`` users (and exotic import
    orders) working.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.sim.scenarios  # noqa: F401  (registers S1-S6)
    import repro.sim.workloads  # noqa: F401  (registers the extra workloads)


def register_family(family: ScenarioFamily, replace: bool = False) -> ScenarioFamily:
    """Register ``family`` under its id; returns it (decorator-friendly).

    Raises:
        ValueError: the id is already registered (unless ``replace``).
    """
    fid = family.family_id
    if not replace and fid in _REGISTRY:
        raise ValueError(
            f"scenario family {fid!r} is already registered; pass "
            "replace=True to override it"
        )
    _REGISTRY[fid] = family
    return family


def unregister_family(family_id: str) -> None:
    """Remove a family from the registry (test harness use)."""
    _REGISTRY.pop(family_id, None)


def get_family(family_id: str) -> ScenarioFamily:
    """The registered family for ``family_id``.

    Raises:
        UnknownScenarioError: no registered family claims the id; the
            message lists every registered family.
    """
    family = _REGISTRY.get(family_id)
    if family is None:
        _ensure_builtins()
        family = _REGISTRY.get(family_id)
    if family is None:
        raise UnknownScenarioError(family_id, registered_families())
    return family


def registered_families() -> Tuple[str, ...]:
    """Every registered family id, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def family_catalog() -> List[Dict[str, object]]:
    """JSON-safe schema list of every registered family."""
    return [_REGISTRY[fid].schema() for fid in registered_families()]


def param_token(params: ParamItems) -> str:
    """Canonical text form of resolved parameters: ``"k=v,k=v"``.

    Used in episode seed derivation and human-readable labels.  Values
    format through the shared canonical formatter
    (:func:`repro.utils.canonical.canonical_scalar` — ``str`` semantics,
    full precision), so two distinct sweep values can never collapse to
    one token; the output is byte-identical to the historical f-string
    form, so no digest or seed changed when the helper was introduced.
    """
    return ",".join(f"{name}={canonical_scalar(value)}" for name, value in params)
