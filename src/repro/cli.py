"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``episode``   — run one episode and print its measurements.
* ``campaign``  — run one campaign (optionally a shard) and write JSONL.
* ``dispatch``  — plan → dispatch → collect one campaign over a worker
  backend (``--backend in-process|subprocess|ssh --workers N``).
* ``worker``    — execute one shard-spec file (the fleet worker entry
  point; normally spawned by ``dispatch``, not by hand).
* ``cache``     — campaign-cache maintenance (``list`` / ``verify`` /
  ``gc --keep-days N``).
* ``scenarios`` — inspect the scenario-family registry (``scenarios
  list [--json]``).
* ``merge``     — validate and concatenate shard JSONL files.
* ``table4``    — fault-free driving-performance campaign (Tables IV + V).
* ``table6``    — the full intervention-comparison campaign.
* ``table7``    — driver reaction-time sweep.
* ``table8``    — road-friction sweep.
* ``fig5`` / ``fig6`` — trace an episode and print ASCII plots (optionally
  export CSV).
* ``report``    — run everything and write a markdown report; with
  ``--incremental``, render only what the cache/resume directory already
  covers and emit placeholders for the rest.
* ``report-status`` — per-artifact staleness (cached / resumable-partial /
  missing, with episode counts) without executing anything; ``--json``
  emits the machine-readable form.
* ``train-ml``  — train (and cache) the LSTM baseline.
* ``lint``      — determinism/digest-safety static analysis over Python
  sources (``repro lint [PATH ...] [--json] [--baseline FILE]
  [--write-baseline] [--rule R] [--disable R] [--list]``; see
  :mod:`repro.lint`).  Exit 0 clean, 1 findings, 2 usage errors.

Incremental reports
-------------------

The report is an artifact DAG (one node per table/figure) resolved against
the campaign cache: ``repro report-status`` shows which artifacts are
complete, ``repro report --incremental`` renders those and placeholders
for the rest, and a ``<output>.manifest.json`` sidecar records the digest
set each rendered artifact was built from, so re-runs skip artifacts whose
inputs are unchanged.  Filling the cache (e.g. ``repro table6 --cache-dir
...`` or remote shards landing in a shared cache directory) and re-running
``repro report --incremental`` fills the report in as results arrive.

Parallel execution
------------------

Every campaign command (``episode``, ``campaign``, ``table4``, ``table6``,
``table7``, ``table8``, ``report``) accepts ``--jobs N`` to fan episodes out
over ``N`` worker processes (see :mod:`repro.core.executor`).  Results are
bit-identical to a serial run — episode seeds are order-independent and
results are reassembled in enumeration order — so ``--jobs`` only changes
wall-clock time.  When the flag is omitted the ``REPRO_JOBS`` environment
variable supplies the default (then 1).

Distributed campaigns
---------------------

``repro campaign --shard I/N`` runs the I-th contiguous slice of the
enumerated grid and writes a shard JSONL; ``repro merge`` validates the
shards (same intervention, no overlap, no truncation) and concatenates them
into the unsharded campaign file.  ``--resume`` picks an interrupted run
back up from the valid JSONL prefix, and ``--cache-dir`` (or the
``REPRO_CACHE_DIR`` environment variable) keys completed campaigns by
content digest so a repeated campaign executes zero episodes.  The grid
commands (``table4`` .. ``table8``, ``report``, ``episode``) take
``--resume DIR`` instead: each constituent campaign resumes from a
digest-named file in that directory.

``repro dispatch`` (and ``repro campaign --backend B``) drives the full
scheduler pipeline (:mod:`repro.core.scheduler`): the grid is planned
into digest-keyed shard jobs, a worker backend executes them — the
``subprocess`` backend spawns ``--workers N`` ``repro worker`` processes,
each consuming a shard-spec file from ``--workdir`` — and the collector
validates the shard JSONLs under the ``repro merge`` invariants before
writing the merged campaign (and the shared cache) byte-identically to a
serial run.  Killed workers are relaunched and resume their shard from
its valid JSONL prefix; a repeat dispatch against a warm cache executes
zero episodes.  ``repro report --backend B --workers N`` routes every
report grid through the same scheduler, so remote shards land in the
shared cache and ``report --incremental`` fills in as they arrive.

Scenario families
-----------------

Scenarios are resolved through the pluggable family registry
(:mod:`repro.sim.families`): ``repro scenarios list`` shows every
registered family and its typed parameter schema, ``repro campaign
--scenario FAMILY`` selects families (default: the paper's S1-S6), and
``--scenario-param name=v1,v2,...`` sweeps a family parameter axis the
same way the grid sweeps gaps (``--scenario-param initial_gap=...``
addresses the gap axis itself).  ``repro report --family FAMILY`` appends
a sweep artifact for a family to the report DAG.  Unknown scenario ids
fail with an error naming the registered families instead of a traceback.

Environment variables:

* ``REPRO_JOBS`` — default worker process count for campaigns.
* ``REPRO_CACHE_DIR`` — default campaign result cache directory.
* ``REPRO_REPS`` / ``REPRO_FULL`` — repetitions per grid cell for the
  benchmark suite (see :mod:`benchmarks._bench_utils`).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import re
import sys
from typing import List, Optional

from repro.analysis.figures import fig5_series, fig6_series
from repro.analysis.incremental import (
    IncrementalReportEngine,
    ReportError,
    manifest_path_for,
    status_document,
)
from repro.analysis.render import ascii_plot
from repro.analysis.report import ReportConfig
from repro.analysis.tables import (
    render_table4,
    render_table5,
    render_table7,
    render_table8,
    table4_driving_performance,
    table5_lane_distance,
    table7_reaction_sweep,
    table8_friction_sweep,
)
from repro.attacks.campaign import (
    ATTACK_FAULT_TYPES,
    CampaignSpec,
    EpisodeSpec,
    ShardSpec,
    enumerate_campaign,
)
from repro.attacks.fi import FaultType
from repro.core.cache import (
    CampaignCache,
    cache_entries,
    campaign_digest,
    gc_cache,
    resume_file_for,
    verify_cache,
    write_digest_sidecar,
)
from repro.core.executor import EXECUTOR_NAMES, PhaseProfile, resolve_executor
from repro.core.experiment import merge_shards, run_campaign
from repro.core.scheduler import (
    SchedulerError,
    dispatch_campaign,
    load_job_spec,
    registered_backends,
)
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig
from repro.sim.families import (
    ScenarioFamily,
    UnknownScenarioError,
    family_catalog,
    get_family,
)
from repro.sim.weather import FRICTION_CONDITIONS


def _interventions_from_args(args) -> InterventionConfig:
    return InterventionConfig(
        driver=args.driver,
        safety_check=args.check,
        aeb=AebsConfig(args.aeb),
        driver_reaction_time=args.reaction_time,
    )


def _add_intervention_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--driver", action="store_true", help="enable the driver model")
    parser.add_argument("--check", action="store_true", help="enable firmware checks")
    parser.add_argument(
        "--aeb",
        choices=[c.value for c in AebsConfig],
        default="disabled",
        help="AEBS configuration",
    )
    parser.add_argument(
        "--reaction-time", type=float, default=None, help="driver reaction time [s]"
    )


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes for campaign execution "
        "(default: REPRO_JOBS env var, then serial)",
    )


def _add_executor_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default=None,
        metavar="NAME",
        help="episode execution backend: 'serial', 'parallel' (--jobs "
        "pool), or 'batch' (vectorized lockstep, bit-identical results; "
        "with --jobs > 1 shards lanes across a worker pool, batch engine "
        "inside each; default: serial, or parallel when --jobs > 1)",
    )
    parser.add_argument(
        "--lanes",
        type=_positive_int,
        default=None,
        metavar="N",
        help="peak lockstep lane count for '--executor batch' "
        "(default: REPRO_BATCH_LANES env var, then uncapped)",
    )


def _reaction_times(text: str) -> tuple:
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated reaction times in seconds, got {text!r}"
        )
    if not values:
        raise argparse.ArgumentTypeError("expected at least one reaction time")
    return values


def _parse_shard(text: str) -> ShardSpec:
    try:
        return ShardSpec.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _parse_param_flag(text: str) -> tuple:
    """Split a ``--scenario-param`` value into ``(name, raw value list)``.

    Typed validation happens later against the selected family's schema
    (the flag parses before the family is known).
    """
    name, sep, values = text.partition("=")
    name = name.strip()
    if not sep or not name or not values.strip():
        raise argparse.ArgumentTypeError(
            f"expected NAME=VALUE[,VALUE...], got {text!r}"
        )
    parts = tuple(p.strip() for p in values.split(",") if p.strip())
    if not parts:
        raise argparse.ArgumentTypeError(
            f"expected at least one value in {text!r}"
        )
    return name, parts


def _add_scenario_param_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario-param",
        action="append",
        type=_parse_param_flag,
        default=None,
        metavar="NAME=V1[,V2...]",
        help="sweep a scenario-family parameter axis (repeatable; values "
        "are validated against the family's declared schema — see "
        "'repro scenarios list'); NAME=initial_gap addresses the "
        "initial-gap axis",
    )


def _scenario_axes(
    family: ScenarioFamily, flags
) -> tuple:
    """Typed ``(param_axes, initial_gaps)`` from ``--scenario-param`` flags.

    Raises:
        ValueError: an axis is undeclared or a value fails validation.
    """
    param_axes = {}
    initial_gaps = None
    for name, raw_values in flags or ():
        if name == "initial_gap":
            if initial_gaps is not None:
                raise ValueError("--scenario-param initial_gap given twice")
            try:
                initial_gaps = tuple(float(v) for v in raw_values)
            except ValueError:
                raise ValueError(
                    f"initial_gap values must be numbers, got {list(raw_values)}"
                ) from None
            continue
        if name in param_axes:
            raise ValueError(f"--scenario-param {name} given twice")
        spec = family.param_spec(name)  # raises on undeclared axes
        param_axes[name] = tuple(spec.parse(v) for v in raw_values)
    return param_axes, initial_gaps


def _add_cache_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="campaign result cache directory "
        "(default: REPRO_CACHE_DIR env var, then no caching)",
    )


def _add_report_scale_flags(parser: argparse.ArgumentParser) -> None:
    """The grid-scale flags ``report`` and ``report-status`` share.

    Both commands must build the *same* artifact DAG from the same flags,
    or status would report on different campaigns than the report runs.
    """
    parser.add_argument("--reps", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--ml", action="store_true", help="include the ML baseline")
    parser.add_argument(
        "--reaction-times",
        type=_reaction_times,
        default=None,
        metavar="CSV",
        help="comma-separated Table VII sweep points in seconds "
        "(default: 1.0,1.5,2.0,2.5,3.0,3.5)",
    )
    parser.add_argument(
        "--family",
        action="append",
        default=None,
        metavar="FAMILY",
        help="append a sweep artifact for this registered scenario family "
        "(repeatable; see 'repro scenarios list')",
    )


def _report_config_from_args(args, log=None) -> ReportConfig:
    """A ReportConfig from the shared report/report-status flags.

    Raises:
        UnknownScenarioError: a ``--family`` flag names no registered
            scenario family.
    """
    kwargs = {}
    if args.reaction_times is not None:
        kwargs["reaction_times"] = args.reaction_times
    # Deduplicate while preserving order: a repeated --family would emit
    # the same artifact (and manifest id) twice.
    families = tuple(dict.fromkeys(args.family or ()))
    for family_id in families:
        get_family(family_id)  # fail before any campaign executes
    return ReportConfig(
        repetitions=args.reps,
        seed=args.seed,
        include_ml=args.ml,
        jobs=getattr(args, "jobs", None),
        executor=getattr(args, "executor", None),
        lanes=getattr(args, "lanes", None),
        cache_dir=getattr(args, "cache_dir", None),
        resume_dir=getattr(args, "resume", None),
        extra_families=families,
        backend=getattr(args, "backend", None),
        workers=getattr(args, "workers", None),
        workdir=getattr(args, "workdir", None),
        log=log,
        **kwargs,
    )


def _add_grid_persistence_flags(parser: argparse.ArgumentParser) -> None:
    """``--jobs`` / ``--resume DIR`` / ``--cache-dir`` for grid commands."""
    _add_jobs_flag(parser)
    _add_executor_flag(parser)
    _add_cache_flag(parser)
    parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume each constituent campaign from a digest-named JSONL "
        "file in DIR (files are created on first run)",
    )


def _human_size(size: float) -> str:
    """Bytes as a compact human-readable figure (``12.3 KiB``)."""
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    raise AssertionError("unreachable")  # pragma: no cover


def _human_age(seconds: float) -> str:
    """Seconds as a compact age (``45s``, ``3.2h``, ``9.1d``)."""
    if seconds < 60:
        return f"{int(seconds)}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    if seconds < 86400:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


_SHARD_NAME_RE = re.compile(r"shard-(\d+)-of-(\d+)")


def _nonneg_days(text: str) -> float:
    """``--keep-days`` parser: a finite number of days >= 0.

    Rejecting negatives at parse time (exit 2, message naming the flag)
    beats the deep :func:`repro.core.cache.gc_cache` ValueError — the
    operator sees which *flag* is wrong before any cache is opened.
    """
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--keep-days expects a number of days, got {text!r}"
        ) from None
    if not math.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(
            f"--keep-days must be a finite number >= 0, got {text} "
            "(0 deletes everything; there is no negative age)"
        )
    return value


def _run_lint(args) -> int:
    """``repro lint``: scan, apply the baseline, report, set the exit code."""
    from repro.lint import (
        apply_baseline,
        lint_paths,
        load_baseline,
        render_json,
        render_text,
        select_rules,
        write_baseline,
    )
    from repro.lint.rules import rule_catalog

    if args.list:
        if args.json:
            print(json.dumps({"rules": rule_catalog()}, indent=2))
        else:
            for entry in rule_catalog():
                role = f" [{entry['role']}]" if entry["role"] else ""
                print(
                    f"{entry['id']:<26} {entry['severity']}{role}  "
                    f"{entry['title']}"
                )
        return 0

    paths = args.paths or (
        ["src/repro"] if os.path.isdir("src/repro") else ["."]
    )
    rules = select_rules(enable=args.rule, disable=args.disable)
    report = lint_paths(paths, rules=rules)
    findings = list(report.findings)

    if args.write_baseline:
        target = args.baseline or "lint-baseline.json"
        write_baseline(target, findings)
        print(
            f"wrote baseline with {len(findings)} "
            f"finding{'s' if len(findings) != 1 else ''} -> {target}"
        )
        return 0

    grandfathered: List = []
    if args.baseline is not None:
        baseline = load_baseline(args.baseline)
        findings, grandfathered = apply_baseline(findings, baseline)

    if args.json:
        print(
            render_json(
                findings, report.files, grandfathered, rules=report.rules
            )
        )
    else:
        print(render_text(findings, report.files, grandfathered))
    return 1 if findings else 0


def _check_shard_name_order(paths) -> Optional[str]:
    """Catch default-named shard files passed out of order, incompletely,
    or from different shard counts before merging concatenates them wrongly.

    Only applies when *every* basename matches the
    ``...shard-I-of-N...`` pattern the ``campaign`` command emits;
    custom names mean the caller owns the ordering.  Returns an error
    message, or None when the set is fine / unknowable.
    """
    parsed = [_SHARD_NAME_RE.search(str(os.path.basename(p))) for p in paths]
    if not all(parsed):
        return None
    indices = [int(m.group(1)) for m in parsed]
    counts = sorted({int(m.group(2)) for m in parsed})
    if len(counts) > 1:
        return (
            f"shard files come from different shard counts {counts}; "
            "merge shards of one campaign split one way"
        )
    count = counts[0]
    if indices != sorted(indices):
        return (
            f"shard files passed in order {indices}; pass them in shard-index "
            "order (1/N first) so the merged file matches the serial run"
        )
    missing = sorted(set(range(1, count + 1)) - set(indices))
    if missing:
        return (
            f"shard set is incomplete: missing shard(s) "
            f"{'/'.join(f'{i}/{count}' for i in missing)} — merging would "
            "silently drop those episodes from every downstream aggregate"
        )
    if len(indices) != len(set(indices)):
        return f"shard files repeat indices {indices}; pass each shard once"
    return None


def _print_profile(profile: PhaseProfile) -> None:
    """Per-phase wall-clock breakdown of a profiled campaign run."""
    total = profile.total_s
    print(f"per-phase wall-clock over {profile.steps} steps:")
    for name, secs in (
        ("control", profile.control_s),
        ("dynamics", profile.dynamics_s),
        ("post-step tail", profile.post_s),
    ):
        share = 100.0 * secs / total if total > 0.0 else 0.0
        print(f"  {name:<15s}{secs:9.3f} s  ({share:5.1f}%)")
    print(f"  {'total':<15s}{total:9.3f} s")


def _persistence_kwargs(args, campaign, interventions, ml_token=None) -> dict:
    """``run_campaign`` keyword arguments from grid-command flags."""
    kwargs = {
        "jobs": args.jobs,
        "executor": getattr(args, "executor", None),
        "lanes": getattr(args, "lanes", None),
    }
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        kwargs["cache"] = CampaignCache(cache_dir)
    resume_dir = getattr(args, "resume", None)
    if resume_dir:
        digest = campaign_digest(campaign, interventions, ml_token=ml_token)
        kwargs["resume_path"] = resume_file_for(resume_dir, digest)
    return kwargs


def _add_campaign_grid_flags(parser: argparse.ArgumentParser) -> None:
    """The grid-selection flags ``campaign`` and ``dispatch`` share.

    Both commands must enumerate the *same* campaign from the same flags,
    or a dispatched grid would not byte-compare against its serial run.
    """
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="FAMILY",
        help="scenario family to sweep (repeatable; default: the paper's "
        "S1-S6 — see 'repro scenarios list')",
    )
    _add_scenario_param_flag(parser)
    parser.add_argument(
        "--fault",
        action="append",
        choices=[f.value for f in FaultType],
        default=None,
        metavar="FAULT",
        help="fault type to sweep (repeatable; default: the three attacked "
        "fault types)",
    )
    parser.add_argument("--reps", type=int, default=2, help="repetitions per cell")
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--max-steps",
        type=_positive_int,
        default=None,
        metavar="N",
        help="cap episode length in simulation steps (smoke tests / CI)",
    )
    _add_intervention_flags(parser)


def _campaign_spec_from_args(args) -> CampaignSpec:
    """A :class:`CampaignSpec` from the shared grid flags.

    Raises:
        ValueError: unknown scenario family, invalid sweep values, or an
            otherwise inconsistent grid (the messages name the flag).
    """
    fault_values = args.fault or [f.value for f in ATTACK_FAULT_TYPES]
    scenario_ids = tuple(args.scenario) if args.scenario else None
    param_axes = {}
    initial_gaps = None
    if args.scenario_param:
        if scenario_ids is None or len(scenario_ids) != 1:
            raise ValueError(
                "--scenario-param sweeps are per-family: select "
                "exactly one family with --scenario"
            )
        family = get_family(scenario_ids[0])
        param_axes, initial_gaps = _scenario_axes(family, args.scenario_param)
    elif scenario_ids is not None:
        for sid in scenario_ids:
            get_family(sid)  # fail with the named-family error
    if initial_gaps is None and scenario_ids is not None and len(scenario_ids) == 1:
        # A single selected family supplies its own gap axis — one of the
        # inputs the report's family-sweep arms are keyed on (matching
        # their digests additionally requires the arm's fault type and
        # intervention flags; see the README's family workflow).  The
        # paper default (60, 230) still applies to multi-family and
        # default-grid campaigns.
        initial_gaps = get_family(scenario_ids[0]).default_initial_gaps
    spec_kwargs = {}
    if scenario_ids is not None:
        spec_kwargs["scenario_ids"] = scenario_ids
    if initial_gaps is not None:
        spec_kwargs["initial_gaps"] = initial_gaps
    return CampaignSpec(
        fault_types=[FaultType(v) for v in fault_values],
        repetitions=args.reps,
        seed=args.seed,
        param_axes=tuple(param_axes.items()),
        **spec_kwargs,
    )


def _add_backend_flags(
    parser: argparse.ArgumentParser, default_backend: Optional[str] = None
) -> None:
    """``--backend`` / ``--workers`` / ``--workdir`` scheduler flags."""
    parser.add_argument(
        "--backend",
        default=default_backend,
        metavar="NAME",
        help="worker backend for scheduled dispatch "
        f"({', '.join(registered_backends())})"
        + ("" if default_backend is None else f"; default {default_backend}"),
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker count for the backend (fleet backends default to one "
        "shard per worker)",
    )
    parser.add_argument(
        "--workdir",
        default=None,
        metavar="DIR",
        help="work directory for shard JSONLs, spec files and worker logs "
        "(reuse it to resume a crashed dispatch; default: a private "
        "temporary directory)",
    )


def _add_dispatch_tuning_flags(parser: argparse.ArgumentParser) -> None:
    """Dispatch-only scheduler flags (``campaign``/``dispatch``).

    Kept off ``report``, which does not forward them — a silently dropped
    flag is worse than an unrecognised one.
    """
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="N",
        help="shard jobs to plan (default: one per worker)",
    )
    parser.add_argument(
        "--ssh-command",
        default=None,
        metavar="TEMPLATE",
        help="command template for --backend ssh, with a {command} "
        "placeholder (e.g. 'ssh build-host {command}'; default: the "
        "REPRO_SSH_COMMAND environment variable)",
    )


def _backend_kwargs(args) -> dict:
    """``dispatch_campaign`` backend arguments from the shared flags.

    Raises:
        ValueError: ``--ssh-command`` with a non-ssh backend.
    """
    if args.ssh_command and args.backend != "ssh":
        raise ValueError(
            f"--ssh-command only applies to '--backend ssh', got "
            f"--backend {args.backend}"
        )
    backend = args.backend
    if backend == "ssh" and args.ssh_command:
        from repro.core.scheduler import SSHBackend

        backend = SSHBackend(
            workers=args.workers,
            jobs=args.jobs,
            lanes=getattr(args, "lanes", None),
            command_template=args.ssh_command,
        )
    return {
        "backend": backend,
        "workers": args.workers,
        "shards": args.shards,
        "workdir": args.workdir,
        "jobs": args.jobs,
        "executor": getattr(args, "executor", None),
        "lanes": getattr(args, "lanes", None),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ADAS safety-intervention reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ep = sub.add_parser("episode", help="run one episode")
    ep.add_argument(
        "--scenario",
        default="S1",
        help="a registered scenario family (see 'repro scenarios list')",
    )
    ep.add_argument("--gap", type=float, default=60.0, help="initial gap [m]")
    _add_scenario_param_flag(ep)
    ep.add_argument(
        "--fault",
        choices=[f.value for f in FaultType],
        default="relative_distance",
    )
    ep.add_argument("--seed", type=int, default=2025)
    _add_intervention_flags(ep)
    _add_grid_persistence_flags(ep)

    sc = sub.add_parser(
        "scenarios", help="inspect the scenario-family registry"
    )
    sc.add_argument("action", choices=["list"], help="what to do")
    sc.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    camp = sub.add_parser(
        "campaign",
        help="run one campaign (optionally a shard of it) and write JSONL",
    )
    _add_campaign_grid_flags(camp)
    camp.add_argument(
        "--shard",
        type=_parse_shard,
        default=None,
        metavar="I/N",
        help="run only the I-th of N contiguous slices of the grid "
        "(1-based, e.g. 2/4); merge shard files with 'repro merge'",
    )
    camp.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="FILE",
        help="campaign JSONL path (default: campaign.jsonl, or "
        "campaign-shard-I-of-N.jsonl for shards)",
    )
    camp.add_argument(
        "--resume",
        action="store_true",
        help="resume into --output: skip the episodes its valid JSONL "
        "prefix already records and run only the remainder",
    )
    _add_jobs_flag(camp)
    _add_executor_flag(camp)
    camp.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase wall-clock breakdown (control / dynamics / "
        "post-step tail) after the run; serial and batch executors only "
        "(parallel steps episodes in worker processes)",
    )
    _add_cache_flag(camp)
    _add_backend_flags(camp)
    _add_dispatch_tuning_flags(camp)

    dis = sub.add_parser(
        "dispatch",
        help="plan, dispatch and collect one campaign over a worker backend",
    )
    _add_campaign_grid_flags(dis)
    dis.add_argument(
        "--output",
        "-o",
        default="dispatch.jsonl",
        metavar="FILE",
        help="merged campaign JSONL path (default: dispatch.jsonl)",
    )
    _add_jobs_flag(dis)
    _add_executor_flag(dis)
    _add_cache_flag(dis)
    _add_backend_flags(dis, default_backend="subprocess")
    _add_dispatch_tuning_flags(dis)

    wk = sub.add_parser(
        "worker",
        help="execute one shard-spec file (the fleet worker entry point)",
    )
    wk.add_argument(
        "--spec",
        required=True,
        metavar="FILE",
        help="shard-spec JSON written by the scheduler "
        "(repro.core.scheduler.write_job_spec)",
    )
    _add_jobs_flag(wk)
    _add_executor_flag(wk)

    ca = sub.add_parser(
        "cache",
        help="campaign-cache maintenance (read-only except 'gc')",
    )
    ca.add_argument(
        "action",
        choices=["list", "verify", "gc"],
        help="list entries, strict-verify every entry, or delete old ones",
    )
    _add_cache_flag(ca)
    ca.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    ca.add_argument(
        "--keep-days",
        type=_nonneg_days,
        default=None,
        metavar="N",
        help="gc only: delete entries last written more than N days ago "
        "(0 deletes everything; N must be >= 0)",
    )

    mg = sub.add_parser(
        "merge",
        help="validate shard JSONL files and concatenate them into one campaign",
    )
    mg.add_argument(
        "shards",
        nargs="+",
        metavar="SHARD",
        help="shard files in shard-index order (1/N .. N/N)",
    )
    mg.add_argument("--output", "-o", required=True, metavar="FILE")

    for name in ("table4", "table6", "table7", "table8"):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--reps", type=int, default=2, help="repetitions per cell")
        p.add_argument("--seed", type=int, default=2025)
        _add_grid_persistence_flags(p)

    for name in ("fig5", "fig6"):
        p = sub.add_parser(name, help=f"trace {name}")
        p.add_argument("--seed", type=int, default=2025)
        p.add_argument("--csv", default=None, help="write the trace CSV here")

    rep = sub.add_parser("report", help="full markdown report")
    _add_report_scale_flags(rep)
    rep.add_argument("--output", default="report.md")
    rep.add_argument(
        "--incremental",
        action="store_true",
        help="render only artifacts whose campaign inputs are already "
        "complete (cache/resume) and emit placeholders for the rest, "
        "instead of blocking on every campaign",
    )
    _add_grid_persistence_flags(rep)
    _add_backend_flags(rep)

    st = sub.add_parser(
        "report-status",
        help="per-artifact report staleness (no episodes are executed)",
    )
    _add_report_scale_flags(st)
    st.add_argument(
        "--output",
        default="report.md",
        help="report path whose manifest sidecar is consulted "
        "(default: report.md)",
    )
    st.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    _add_cache_flag(st)
    st.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume directory of digest-named campaign JSONL files",
    )

    ml = sub.add_parser("train-ml", help="train and cache the LSTM baseline")
    ml.add_argument("--epochs", type=int, default=4)

    li = sub.add_parser(
        "lint",
        help="determinism/digest-safety static analysis (see repro.lint)",
    )
    li.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files/directories to scan "
        "(default: src/repro when present, else .)",
    )
    li.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    li.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="grandfather the findings recorded in FILE; only new "
        "findings fail the run",
    )
    li.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings into the baseline file "
        "(the --baseline path, default lint-baseline.json) and exit 0",
    )
    li.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE",
        help="run only this rule (repeatable; see --list)",
    )
    li.add_argument(
        "--disable",
        action="append",
        default=None,
        metavar="RULE",
        help="skip this rule (repeatable)",
    )
    li.add_argument(
        "--list",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    # Campaign commands fall back to REPRO_JOBS when --jobs is omitted;
    # surface a malformed env var as a clean CLI error, not a traceback.
    # (Commands without a --jobs flag never read the env var.)
    if "jobs" in vars(args) and args.jobs is None:
        from repro.core.executor import default_jobs

        try:
            default_jobs()
        except ValueError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2

    # Same surfacing for REPRO_BATCH_LANES when --lanes is omitted on a
    # command that could route through the batch executor.
    if "lanes" in vars(args) and args.lanes is None:
        from repro.core.executor import default_batch_lanes

        try:
            default_batch_lanes()
        except ValueError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2

    # Umbrella for configuration errors every command can hit (a malformed
    # REPRO_CACHE_DIR consulted deep inside run_campaign, an unwritable
    # output directory): fail fast with the message, never a traceback.
    # BrokenPipeError must keep propagating — __main__ turns it into the
    # conventional 141 for `repro ... | head`.
    try:
        return _run(args)
    except BrokenPipeError:
        raise
    except (ValueError, OSError, SchedulerError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


def _run(args) -> int:
    if args.command == "lint":
        return _run_lint(args)

    if args.command == "episode":
        try:
            family = get_family(args.scenario)
            overrides = {}
            for name, values in args.scenario_param or ():
                if len(values) != 1:
                    raise ValueError(
                        f"episode takes a single value per parameter, got "
                        f"{name}={','.join(values)} (sweeps are for "
                        "'repro campaign')"
                    )
                if name == "initial_gap":
                    raise ValueError(
                        "use --gap to set the episode's initial gap"
                    )
                overrides[name] = family.param_spec(name).parse(values[0])
            spec = EpisodeSpec(
                scenario_id=args.scenario,
                initial_gap=args.gap,
                fault_type=FaultType(args.fault),
                repetition=0,
                seed=args.seed,
                params=family.resolve_params(overrides),
            )
        except ValueError as exc:  # includes UnknownScenarioError
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        # Route the single episode through the campaign engine so --jobs,
        # --resume and --cache-dir are honoured uniformly (with one episode
        # execution degenerates to serial).
        cfg = _interventions_from_args(args)
        campaign = run_campaign([spec], cfg, **_persistence_kwargs(args, [spec], cfg))
        result = campaign.results[0]
        outcome = result.accident.value if result.accident else "no accident"
        min_ttc = f"{result.min_ttc:.2f} s" if math.isfinite(result.min_ttc) else "-"
        print(f"outcome:    {outcome}")
        print(f"duration:   {result.duration:.2f} s ({result.steps} steps)")
        print(f"min TTC:    {min_ttc}")
        print(f"hard brake: {100 * result.hardest_brake_fraction:.1f} %")
        print(f"prevented:  {result.prevented}")
        return 0

    if args.command == "scenarios":
        # args.action is constrained to "list" by argparse.
        catalog = family_catalog()
        if args.json:
            print(json.dumps({"format": 1, "families": catalog}, indent=2))
            return 0
        for entry in catalog:
            gaps = ", ".join(f"{g:g}" for g in entry["default_initial_gaps"])
            print(f"{entry['id']}")
            print(f"    {entry['title']}")
            print(f"    default initial gaps [m]: {gaps}")
            if not entry["params"]:
                print("    parameters: (none)")
            for param in entry["params"]:
                bounds = ""
                if "choices" in param:
                    bounds = " one of " + "/".join(str(c) for c in param["choices"])
                elif "minimum" in param or "maximum" in param:
                    bounds = (
                        f" in [{param.get('minimum', '-inf')}"
                        f"..{param.get('maximum', 'inf')}]"
                    )
                line = (
                    f"    --scenario-param {param['name']}=... "
                    f"({param['kind']}, default {param['default']}{bounds})"
                )
                if param.get("help"):
                    line += f" — {param['help']}"
                print(line)
        return 0

    if args.command in ("campaign", "dispatch"):
        scheduled = args.command == "dispatch" or args.backend is not None
        if args.command == "campaign" and scheduled:
            if args.shard is not None:
                raise ValueError(
                    "--backend plans its own shards; --shard selects one "
                    "slice by hand — use one or the other"
                )
            if args.resume:
                raise ValueError(
                    "--backend resumes shards from --workdir automatically; "
                    "drop --resume (or dispatch without --backend)"
                )
        if getattr(args, "profile", False) and scheduled:
            raise ValueError(
                "--profile times the step loop in-process; --backend "
                "dispatches episodes to worker processes — drop one of them"
            )
        # ValueError (including UnknownScenarioError) propagates to main()'s
        # umbrella handler: one "repro: error" formatter, one exit code.
        spec = _campaign_spec_from_args(args)
        cfg = _interventions_from_args(args)
        shard = getattr(args, "shard", None)
        episodes = enumerate_campaign(spec, shard=shard)
        output = args.output
        if output is None:
            output = (
                f"campaign-shard-{shard.index}-of-{shard.count}.jsonl"
                if shard
                else "campaign.jsonl"
            )
        platform_kwargs = {}
        if args.max_steps is not None:
            platform_kwargs["max_steps"] = args.max_steps
        cache = CampaignCache(args.cache_dir) if args.cache_dir else None

        def progress(done, total):
            print(f"\r  {done}/{total} episodes", end="", file=sys.stderr)
            if done == total:
                print(file=sys.stderr)

        if scheduled:
            backend_kwargs = _backend_kwargs(args)
            print(
                f"dispatching {len(episodes)} episodes under {cfg.label()} "
                f"via backend {args.backend!r} ...",
                file=sys.stderr,
            )
            campaign = dispatch_campaign(
                episodes,
                cfg,
                cache=cache,
                progress=progress if episodes else None,
                log=lambda line: print(f"  {line}", file=sys.stderr),
                **backend_kwargs,
                **platform_kwargs,
            )
            campaign.save(output)
            write_digest_sidecar(
                output, campaign_digest(episodes, cfg, **platform_kwargs)
            )
            print(f"wrote {len(campaign.results)} episodes -> {output}")
            return 0

        shard_note = f" (shard {shard})" if shard else ""
        print(
            f"running {len(episodes)} episodes under {cfg.label()}{shard_note} ...",
            file=sys.stderr,
        )
        profile = None
        executor = args.executor
        if getattr(args, "profile", False):
            # Resolve to a concrete in-process backend now so a parallel
            # selection fails before any episode runs.
            profile = PhaseProfile()
            executor = resolve_executor(
                args.executor, jobs=args.jobs, lanes=args.lanes, profile=profile
            )
        campaign = run_campaign(
            episodes,
            cfg,
            jobs=args.jobs,
            executor=executor,
            lanes=args.lanes,
            cache=cache,
            resume_path=output if args.resume else None,
            progress=progress if episodes else None,
            **platform_kwargs,
        )
        if not args.resume:
            campaign.save(output)
            # Record the content digest next to the file so a later
            # --resume with different inputs (e.g. another --max-steps) is
            # refused instead of absorbing mismatched episodes.
            write_digest_sidecar(
                output, campaign_digest(episodes, cfg, **platform_kwargs)
            )
        print(f"wrote {len(campaign.results)} episodes -> {output}")
        if profile is not None:
            _print_profile(profile)
        return 0

    if args.command == "worker":
        # The fleet worker entry point: reconstruct the shard from its
        # spec file (digest-verified), resume into the shard JSONL, and
        # report the resumed/executed split so schedulers (and the crash-
        # recovery tests) can prove completed episodes never re-execute.
        from repro.core.metrics import count_records

        job = load_job_spec(args.spec)
        ml_factory = None
        if job.ml_pickle is not None:
            import pickle

            with open(job.ml_pickle, "rb") as handle:
                ml_factory = pickle.load(handle)
        prior = count_records(job.output)
        total = len(job.episodes)
        print(
            f"worker: shard {job.shard}: {prior} episodes already recorded; "
            f"executing {max(0, total - prior)} of {total}",
            file=sys.stderr,
        )
        campaign = run_campaign(
            job.episodes,
            job.interventions,
            ml_factory=ml_factory,
            jobs=args.jobs,
            executor=args.executor,
            lanes=args.lanes,
            resume_path=job.output,
            # Cache policy belongs to the scheduler, which resolved it (env
            # included) at dispatch time: a null cache_dir means caching is
            # off for this plan, so the worker must not fall back to its
            # own REPRO_CACHE_DIR environment.
            cache=CampaignCache(job.cache_dir) if job.cache_dir else False,
            **job.platform_kwargs,
        )
        print(
            f"worker: shard {job.shard}: wrote {len(campaign.results)} "
            f"episodes -> {job.output}",
            file=sys.stderr,
        )
        return 0

    if args.command == "cache":
        cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
        if not cache_dir:
            raise ValueError(
                "no cache directory: pass --cache-dir or set REPRO_CACHE_DIR"
            )
        # Maintenance must never materialise the directory ('list' and
        # 'verify' are documented read-only); a missing directory is just
        # an empty cache.
        cache = CampaignCache(cache_dir, create=False)
        if args.action == "list":
            entries = cache_entries(cache)
            if args.json:
                print(
                    json.dumps(
                        {
                            "format": 1,
                            "root": cache.root,
                            "entries": [
                                {
                                    "digest": e.key,
                                    "episodes": e.episodes,
                                    "size_bytes": e.size_bytes,
                                    "age_seconds": round(e.age_seconds, 3),
                                }
                                for e in entries
                            ],
                        },
                        indent=2,
                    )
                )
                return 0
            print(f"{'digest':<16} {'episodes':>8} {'size':>10} {'age':>8}")
            for e in entries:
                print(
                    f"{e.key[:16]:<16} {e.episodes:>8} "
                    f"{_human_size(e.size_bytes):>10} {_human_age(e.age_seconds):>8}"
                )
            total_bytes = sum(e.size_bytes for e in entries)
            print(
                f"{len(entries)} entries, {_human_size(total_bytes)} in "
                f"{cache.root}"
            )
            return 0
        if args.action == "verify":
            report = verify_cache(cache)
            corrupt = {k: err for k, err in report.items() if err is not None}
            for key in sorted(report):
                state = "ok" if report[key] is None else f"CORRUPT: {report[key]}"
                print(f"{key[:16]}  {state}")
            print(
                f"verified {len(report)} entries: {len(report) - len(corrupt)} "
                f"ok, {len(corrupt)} corrupt"
            )
            return 1 if corrupt else 0
        # gc
        if args.keep_days is None:
            raise ValueError("cache gc requires --keep-days N")
        removed, reclaimed = gc_cache(cache, keep_days=args.keep_days)
        for key in removed:
            print(f"removed {key[:16]}")
        print(
            f"gc: removed {len(removed)} entries, reclaimed "
            f"{_human_size(reclaimed)}"
        )
        return 0

    if args.command == "merge":
        order_error = _check_shard_name_order(args.shards)
        if order_error is not None:
            print(f"repro: error: {order_error}", file=sys.stderr)
            return 2
        try:
            merged = merge_shards(args.shards, output=args.output)
        except (ValueError, OSError) as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        print(
            f"merged {len(args.shards)} shards "
            f"({len(merged.results)} episodes, intervention "
            f"{merged.intervention!r}) -> {args.output}"
        )
        return 0

    if args.command == "table4":
        spec4 = CampaignSpec(
            fault_types=[FaultType.NONE], repetitions=args.reps, seed=args.seed
        )
        cfg4 = InterventionConfig()
        campaign = run_campaign(spec4, cfg4, **_persistence_kwargs(args, spec4, cfg4))
        print(render_table4(table4_driving_performance(campaign)))
        print()
        print(render_table5(table5_lane_distance(campaign)))
        return 0

    if args.command == "table6":
        from repro.analysis.report import TABLE6_CONFIGS
        from repro.analysis.tables import render_table6, table6_rows

        spec = CampaignSpec(repetitions=args.reps, seed=args.seed)
        pairs = []
        for cfg in TABLE6_CONFIGS:
            print(f"running {cfg.label()} ...", file=sys.stderr)
            pairs.append(
                (
                    cfg.label(),
                    run_campaign(spec, cfg, **_persistence_kwargs(args, spec, cfg)),
                )
            )
        print(render_table6(table6_rows(pairs)))
        return 0

    if args.command == "table7":
        spec = CampaignSpec(repetitions=args.reps, seed=args.seed)
        sweeps = {}
        for rt in (1.0, 1.5, 2.0, 2.5, 3.0, 3.5):
            print(f"reaction time {rt} s ...", file=sys.stderr)
            cfg7 = InterventionConfig(driver=True, driver_reaction_time=rt)
            sweeps[rt] = run_campaign(spec, cfg7, **_persistence_kwargs(args, spec, cfg7))
        print(render_table7(table7_reaction_sweep(sweeps)))
        return 0

    if args.command == "table8":
        cfg = InterventionConfig(
            driver=True, safety_check=True, aeb=AebsConfig.COMPROMISED
        )
        sweeps = {}
        for label, condition in FRICTION_CONDITIONS.items():
            print(f"friction {label} ...", file=sys.stderr)
            spec8 = CampaignSpec(
                fault_types=[
                    FaultType.RELATIVE_DISTANCE,
                    FaultType.DESIRED_CURVATURE,
                ],
                repetitions=args.reps,
                seed=args.seed,
                friction=condition,
            )
            sweeps[label] = run_campaign(
                spec8, cfg, **_persistence_kwargs(args, spec8, cfg)
            )
        print(render_table8(table8_friction_sweep(sweeps)))
        return 0

    if args.command == "fig5":
        series = fig5_series(seed=args.seed)
        s1 = series["S1"]
        print(ascii_plot(s1.trace.time, s1.trace.ego_speed, label="S1 ego speed [m/s]"))
        if args.csv:
            with open(args.csv, "w") as handle:
                handle.write(s1.to_csv())
            print(f"wrote {args.csv}")
        return 0

    if args.command == "fig6":
        series = fig6_series(seed=args.seed)
        print(ascii_plot(series.trace.time, series.trace.ego_speed, label="ego speed [m/s]"))
        print(ascii_plot(series.trace.time, series.trace.true_gap, label="true RD [m]"))
        if args.csv:
            with open(args.csv, "w") as handle:
                handle.write(series.to_csv())
            print(f"wrote {args.csv}")
        return 0

    if args.command == "report":
        try:
            config = _report_config_from_args(args, log=print)
        except UnknownScenarioError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        manifest = manifest_path_for(args.output)
        # Fail on an unwritable destination *before* potentially hours of
        # campaign execution, not at the final write.
        output_dir = os.path.dirname(args.output) or "."
        if not os.path.isdir(output_dir):
            print(
                f"repro: error: output directory {output_dir!r} does not "
                "exist",
                file=sys.stderr,
            )
            return 2
        try:
            engine = IncrementalReportEngine(config, manifest_path=manifest)
            outcome = engine.run(incremental=args.incremental)
            with open(args.output, "w") as handle:
                handle.write(outcome.text)
        except (ReportError, ValueError, OSError) as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        done = len(outcome.rendered_ids) + len(outcome.reused_ids)
        incomplete = outcome.pending_ids + outcome.failed_ids
        if incomplete:
            print(
                f"wrote {args.output} ({done}/{len(outcome.artifacts)} "
                f"artifacts; awaiting: {', '.join(incomplete)} — see "
                f"'repro report-status')"
            )
        else:
            print(f"wrote {args.output}")
        return 0

    if args.command == "report-status":
        try:
            config = _report_config_from_args(args)
        except UnknownScenarioError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        manifest = manifest_path_for(args.output)
        try:
            engine = IncrementalReportEngine(config, manifest_path=manifest)
            statuses = engine.status()
        except (ValueError, OSError) as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(status_document(statuses, manifest), indent=2))
            return 0
        for status in statuses:
            complete_arms = sum(1 for a in status.arms if a.complete)
            note = ""
            if status.arms:
                note = f"  ({complete_arms}/{len(status.arms)} arms complete)"
            if status.stale:
                note += "  [manifest stale]"
            print(f"{status.artifact_id:<8} {status.state:<8}{note}")
            for arm in status.arms:
                print(
                    f"    {arm.name:<28} {arm.state:<19} "
                    f"{arm.done}/{arm.total} episodes"
                )
        return 0

    if args.command == "train-ml":
        from repro.ml import TrainerConfig, load_or_train_cached

        baseline = load_or_train_cached(TrainerConfig(epochs=args.epochs), log=print)
        print(f"final loss: {baseline.final_loss:.5f}")
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
