"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``episode``   — run one episode and print its measurements.
* ``table4``    — fault-free driving-performance campaign (Tables IV + V).
* ``table6``    — the full intervention-comparison campaign.
* ``table7``    — driver reaction-time sweep.
* ``table8``    — road-friction sweep.
* ``fig5`` / ``fig6`` — trace an episode and print ASCII plots (optionally
  export CSV).
* ``report``    — run everything and write a markdown report.
* ``train-ml``  — train (and cache) the LSTM baseline.

Parallel execution
------------------

Every campaign command (``episode``, ``table4``, ``table6``, ``table7``,
``table8``, ``report``) accepts ``--jobs N`` to fan episodes out over ``N``
worker processes (see :mod:`repro.core.executor`).  Results are bit-identical
to a serial run — episode seeds are order-independent and results are
reassembled in enumeration order — so ``--jobs`` only changes wall-clock
time.  When the flag is omitted the ``REPRO_JOBS`` environment variable
supplies the default (then 1).

Environment variables:

* ``REPRO_JOBS`` — default worker process count for campaigns.
* ``REPRO_REPS`` / ``REPRO_FULL`` — repetitions per grid cell for the
  benchmark suite (see :mod:`benchmarks._bench_utils`).
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

from repro.analysis.figures import fig5_series, fig6_series
from repro.analysis.render import ascii_plot
from repro.analysis.report import ReportConfig, generate_report
from repro.analysis.tables import (
    render_table4,
    render_table5,
    render_table7,
    render_table8,
    table4_driving_performance,
    table5_lane_distance,
    table7_reaction_sweep,
    table8_friction_sweep,
)
from repro.attacks.campaign import CampaignSpec, EpisodeSpec
from repro.attacks.fi import FaultType
from repro.core.experiment import run_campaign
from repro.safety.aebs import AebsConfig
from repro.safety.arbitration import InterventionConfig
from repro.sim.weather import FRICTION_CONDITIONS


def _interventions_from_args(args) -> InterventionConfig:
    return InterventionConfig(
        driver=args.driver,
        safety_check=args.check,
        aeb=AebsConfig(args.aeb),
        driver_reaction_time=args.reaction_time,
    )


def _add_intervention_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--driver", action="store_true", help="enable the driver model")
    parser.add_argument("--check", action="store_true", help="enable firmware checks")
    parser.add_argument(
        "--aeb",
        choices=[c.value for c in AebsConfig],
        default="disabled",
        help="AEBS configuration",
    )
    parser.add_argument(
        "--reaction-time", type=float, default=None, help="driver reaction time [s]"
    )


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes for campaign execution "
        "(default: REPRO_JOBS env var, then serial)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ADAS safety-intervention reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ep = sub.add_parser("episode", help="run one episode")
    ep.add_argument("--scenario", default="S1", help="S1..S6")
    ep.add_argument("--gap", type=float, default=60.0, help="initial gap [m]")
    ep.add_argument(
        "--fault",
        choices=[f.value for f in FaultType],
        default="relative_distance",
    )
    ep.add_argument("--seed", type=int, default=2025)
    _add_intervention_flags(ep)
    _add_jobs_flag(ep)

    for name in ("table4", "table6", "table7", "table8"):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--reps", type=int, default=2, help="repetitions per cell")
        p.add_argument("--seed", type=int, default=2025)
        _add_jobs_flag(p)

    for name in ("fig5", "fig6"):
        p = sub.add_parser(name, help=f"trace {name}")
        p.add_argument("--seed", type=int, default=2025)
        p.add_argument("--csv", default=None, help="write the trace CSV here")

    rep = sub.add_parser("report", help="full markdown report")
    rep.add_argument("--reps", type=int, default=2)
    rep.add_argument("--seed", type=int, default=2025)
    rep.add_argument("--ml", action="store_true", help="include the ML baseline")
    rep.add_argument("--output", default="report.md")
    _add_jobs_flag(rep)

    ml = sub.add_parser("train-ml", help="train and cache the LSTM baseline")
    ml.add_argument("--epochs", type=int, default=4)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    # Campaign commands fall back to REPRO_JOBS when --jobs is omitted;
    # surface a malformed env var as a clean CLI error, not a traceback.
    # (Commands without a --jobs flag never read the env var.)
    if "jobs" in vars(args) and args.jobs is None:
        from repro.core.executor import default_jobs

        try:
            default_jobs()
        except ValueError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2

    if args.command == "episode":
        spec = EpisodeSpec(
            scenario_id=args.scenario,
            initial_gap=args.gap,
            fault_type=FaultType(args.fault),
            repetition=0,
            seed=args.seed,
        )
        # Route the single episode through the campaign engine so --jobs is
        # honoured uniformly (with one episode it degenerates to serial).
        campaign = run_campaign([spec], _interventions_from_args(args), jobs=args.jobs)
        result = campaign.results[0]
        outcome = result.accident.value if result.accident else "no accident"
        min_ttc = f"{result.min_ttc:.2f} s" if math.isfinite(result.min_ttc) else "-"
        print(f"outcome:    {outcome}")
        print(f"duration:   {result.duration:.2f} s ({result.steps} steps)")
        print(f"min TTC:    {min_ttc}")
        print(f"hard brake: {100 * result.hardest_brake_fraction:.1f} %")
        print(f"prevented:  {result.prevented}")
        return 0

    if args.command == "table4":
        campaign = run_campaign(
            CampaignSpec(
                fault_types=[FaultType.NONE], repetitions=args.reps, seed=args.seed
            ),
            InterventionConfig(),
            jobs=args.jobs,
        )
        print(render_table4(table4_driving_performance(campaign)))
        print()
        print(render_table5(table5_lane_distance(campaign)))
        return 0

    if args.command == "table6":
        from repro.analysis.report import TABLE6_CONFIGS
        from repro.analysis.tables import render_table6, table6_row
        from repro.core.metrics import group_by

        spec = CampaignSpec(repetitions=args.reps, seed=args.seed)
        rows = []
        for cfg in TABLE6_CONFIGS:
            print(f"running {cfg.label()} ...", file=sys.stderr)
            campaign = run_campaign(spec, cfg, jobs=args.jobs)
            for fault, results in sorted(
                group_by(campaign.results, "fault_type").items()
            ):
                rows.append(table6_row(results, cfg.label()))
        rows.sort(key=lambda r: (r.fault_type, r.intervention))
        print(render_table6(rows))
        return 0

    if args.command == "table7":
        spec = CampaignSpec(repetitions=args.reps, seed=args.seed)
        sweeps = {}
        for rt in (1.0, 1.5, 2.0, 2.5, 3.0, 3.5):
            print(f"reaction time {rt} s ...", file=sys.stderr)
            sweeps[rt] = run_campaign(
                spec,
                InterventionConfig(driver=True, driver_reaction_time=rt),
                jobs=args.jobs,
            )
        print(render_table7(table7_reaction_sweep(sweeps)))
        return 0

    if args.command == "table8":
        cfg = InterventionConfig(
            driver=True, safety_check=True, aeb=AebsConfig.COMPROMISED
        )
        sweeps = {}
        for label, condition in FRICTION_CONDITIONS.items():
            print(f"friction {label} ...", file=sys.stderr)
            sweeps[label] = run_campaign(
                CampaignSpec(
                    fault_types=[
                        FaultType.RELATIVE_DISTANCE,
                        FaultType.DESIRED_CURVATURE,
                    ],
                    repetitions=args.reps,
                    seed=args.seed,
                    friction=condition,
                ),
                cfg,
                jobs=args.jobs,
            )
        print(render_table8(table8_friction_sweep(sweeps)))
        return 0

    if args.command == "fig5":
        series = fig5_series(seed=args.seed)
        s1 = series["S1"]
        print(ascii_plot(s1.trace.time, s1.trace.ego_speed, label="S1 ego speed [m/s]"))
        if args.csv:
            with open(args.csv, "w") as handle:
                handle.write(s1.to_csv())
            print(f"wrote {args.csv}")
        return 0

    if args.command == "fig6":
        series = fig6_series(seed=args.seed)
        print(ascii_plot(series.trace.time, series.trace.ego_speed, label="ego speed [m/s]"))
        print(ascii_plot(series.trace.time, series.trace.true_gap, label="true RD [m]"))
        if args.csv:
            with open(args.csv, "w") as handle:
                handle.write(series.to_csv())
            print(f"wrote {args.csv}")
        return 0

    if args.command == "report":
        config = ReportConfig(
            repetitions=args.reps,
            seed=args.seed,
            include_ml=args.ml,
            jobs=args.jobs,
            log=print,
        )
        text = generate_report(config)
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
        return 0

    if args.command == "train-ml":
        from repro.ml import TrainerConfig, load_or_train_cached

        baseline = load_or_train_cached(TrainerConfig(epochs=args.epochs), log=print)
        print(f"final loss: {baseline.final_loss:.5f}")
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
