"""Small math helpers used throughout the hot simulation loop.

These are deliberately plain functions over floats (no NumPy): the
closed-loop platform steps at 100 Hz over small scalar states, where NumPy
call overhead dominates actual arithmetic.
"""

from __future__ import annotations

import math
from typing import Sequence


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval ``[lo, hi]``.

    Raises:
        ValueError: if ``lo > hi``.
    """
    if lo > hi:
        raise ValueError(f"empty clamp interval: [{lo}, {hi}]")
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


def sign(value: float) -> float:
    """Return -1.0, 0.0 or +1.0 matching the sign of ``value``."""
    if value > 0.0:
        return 1.0
    if value < 0.0:
        return -1.0
    return 0.0


def wrap_angle(angle: float) -> float:
    """Wrap an angle in radians into ``(-pi, pi]``."""
    wrapped = math.fmod(angle + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


def rate_limit(current: float, target: float, max_delta: float) -> float:
    """Move ``current`` toward ``target`` by at most ``max_delta``.

    Models actuators (steering racks, brake pressure) that cannot jump to a
    commanded value instantaneously.

    Raises:
        ValueError: if ``max_delta`` is negative.
    """
    if max_delta < 0.0:
        raise ValueError(f"max_delta must be non-negative, got {max_delta}")
    delta = target - current
    if delta > max_delta:
        return current + max_delta
    if delta < -max_delta:
        return current - max_delta
    return target


def interp1d(x: float, xs: Sequence[float], ys: Sequence[float]) -> float:
    """Piecewise-linear interpolation of ``x`` over knots ``(xs, ys)``.

    ``xs`` must be strictly increasing.  Values outside the knot range are
    clamped to the boundary values (no extrapolation), matching how lookup
    tables behave in production controllers.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if not xs:
        raise ValueError("empty knot table")
    if x <= xs[0]:
        return ys[0]
    if x >= xs[-1]:
        return ys[-1]
    # Binary search would be overkill for the 3-5 knot tables used here.
    for i in range(1, len(xs)):
        if x <= xs[i]:
            x0, x1 = xs[i - 1], xs[i]
            y0, y1 = ys[i - 1], ys[i]
            t = (x - x0) / (x1 - x0)
            return y0 + t * (y1 - y0)
    return ys[-1]


def smoothstep(edge0: float, edge1: float, x: float) -> float:
    """Hermite smoothstep between ``edge0`` and ``edge1``.

    Used for soft activations (e.g. lateral moves of cut-in agents).
    """
    if edge0 == edge1:
        return 0.0 if x < edge0 else 1.0
    t = clamp((x - edge0) / (edge1 - edge0), 0.0, 1.0)
    return t * t * (3.0 - 2.0 * t)
