"""The shared canonical scalar formatter for identity-bearing text.

Every place a parameter value becomes *identity text* — seed-derivation
paths (:func:`repro.utils.rng.derive_seed` inputs), episode labels,
``param_token`` — must format it the same way, at full precision: two
distinct float values that render to one token would share seeds, labels
or cache keys.  ``repro lint`` (the ``canonical-float-format`` rule)
flags ad-hoc precision-limited formatting in canonical modules and
points here.

The canonical form is ``str`` semantics, which for Python 3 floats is
``repr``-exact: the shortest string that round-trips through ``float``.
This is deliberately byte-identical to what the pre-formatter code
produced via f-string interpolation, so introducing the shared helper
changed no digest, seed or label.
"""

from __future__ import annotations

import math


def canonical_scalar(value: object) -> str:
    """Full-precision canonical text of one identity-bearing scalar.

    ``str`` semantics — ``repr``-exact for floats, so the mapping from
    value to text is injective over finite floats (and round-trips:
    ``float(canonical_scalar(x)) == x``).

    Raises:
        ValueError: a non-finite float — NaN/inf must never silently
            become part of a campaign identity (NaN additionally breaks
            the injectivity contract: ``float("nan") != float("nan")``).
    """
    if isinstance(value, float) and not math.isfinite(value):
        raise ValueError(
            f"non-finite value {value!r} cannot join a canonical identity"
        )
    return str(value)
