"""Unit conversions and physical constants.

The library uses SI units internally everywhere: metres, seconds, m/s,
radians, and 1/m (curvature).  The paper quotes speeds in mph (NHTSA
scenarios) and angles in degrees, so conversion helpers live here.
"""

from __future__ import annotations

import math

#: Gravitational acceleration [m/s^2].  The paper's full-braking TTC
#: threshold is ``t_fb = V / 9.8`` (Eq. 4), i.e. full braking is assumed to
#: decelerate at exactly one ``g`` on dry asphalt, so we keep 9.8 here.
G = 9.8

#: Multiplicative factor converting miles-per-hour to metres-per-second.
MPH_TO_MS = 0.44704

#: Multiplicative factor converting km/h to m/s.
KMH_TO_MS = 1.0 / 3.6


def mph_to_ms(mph: float) -> float:
    """Convert a speed in miles per hour to metres per second."""
    return mph * MPH_TO_MS


def ms_to_mph(ms: float) -> float:
    """Convert a speed in metres per second to miles per hour."""
    return ms / MPH_TO_MS


def kmh_to_ms(kmh: float) -> float:
    """Convert a speed in kilometres per hour to metres per second."""
    return kmh * KMH_TO_MS


def ms_to_kmh(ms: float) -> float:
    """Convert a speed in metres per second to kilometres per hour."""
    return ms * 3.6


def deg_to_rad(deg: float) -> float:
    """Convert degrees to radians."""
    return deg * math.pi / 180.0


def rad_to_deg(rad: float) -> float:
    """Convert radians to degrees."""
    return rad * 180.0 / math.pi
