"""Fixed-size history buffers.

The ML baseline consumes 20-control-cycle windows of state and actuation
history (the paper's Algorithm 1, lines 4-5); the driver model debounces
trigger conditions over short windows.  Both use :class:`RingBuffer`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional


class RingBuffer:
    """A fixed-capacity FIFO over floats with O(1) append.

    Unlike ``collections.deque`` this exposes ``latest(n)`` returning the
    most recent ``n`` items oldest-first, which is the exact windowing the
    LSTM input pipeline needs, and ``filled`` to gate consumers until enough
    history exists.
    """

    def __init__(self, capacity: int, fill: Optional[float] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._data: List[float] = []
        self._head = 0  # index of the oldest element once wrapped
        if fill is not None:
            for _ in range(capacity):
                self.append(fill)

    def append(self, value: float) -> None:
        """Append ``value``, evicting the oldest element when full."""
        if len(self._data) < self.capacity:
            self._data.append(value)
        else:
            self._data[self._head] = value
            self._head = (self._head + 1) % self.capacity

    @property
    def filled(self) -> bool:
        """True once ``capacity`` values have been appended."""
        return len(self._data) == self.capacity

    def __len__(self) -> int:
        return len(self._data)

    def latest(self, n: Optional[int] = None) -> List[float]:
        """Return the latest ``n`` values (default: all), oldest first."""
        if n is None:
            n = len(self._data)
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        n = min(n, len(self._data))
        ordered = self._ordered()
        return ordered[len(ordered) - n :]

    def last(self) -> float:
        """Return the most recently appended value.

        Raises:
            IndexError: if the buffer is empty.
        """
        if not self._data:
            raise IndexError("last() on empty RingBuffer")
        if len(self._data) < self.capacity:
            return self._data[-1]
        return self._data[(self._head - 1) % self.capacity]

    def clear(self) -> None:
        """Drop all stored values."""
        self._data = []
        self._head = 0

    def _ordered(self) -> List[float]:
        if len(self._data) < self.capacity:
            return list(self._data)
        return self._data[self._head :] + self._data[: self._head]

    def __iter__(self) -> Iterator[float]:
        return iter(self._ordered())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingBuffer(capacity={self.capacity}, len={len(self)})"
