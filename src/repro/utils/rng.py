"""Deterministic random-number streams.

Every stochastic component of the platform (sensor noise, driver reaction
jitter, scenario perturbations across repetitions) draws from a *named*
stream derived from the episode seed.  Adding a new consumer therefore never
perturbs the draws seen by existing consumers, which keeps campaign results
reproducible across code changes — the property fault-injection studies rely
on when comparing intervention configurations on *identical* episodes.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(base_seed: int, *names: object) -> int:
    """Derive a child seed from ``base_seed`` and a path of names.

    Uses SHA-256 over the textual path so the mapping is stable across
    Python versions and processes (``hash()`` is salted per-process and
    unusable here).
    """
    text = f"{base_seed}/" + "/".join(str(n) for n in names)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """A lazily-populated registry of named ``numpy.random.Generator``s.

    Example:
        >>> streams = RngStreams(seed=42)
        >>> noise = streams.get("perception").normal(0.0, 0.1)
        >>> jitter = streams.get("driver").uniform(-0.2, 0.2)

    Two :class:`RngStreams` built from the same seed always produce the same
    sequence per name, independent of the order in which names are first
    requested.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = np.random.default_rng(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def child(self, *names: object) -> "RngStreams":
        """Return a new registry whose seed is derived from this one."""
        return RngStreams(derive_seed(self.seed, *names))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
