"""Shared utilities: units, math helpers, RNG streams, history buffers.

These modules are dependency-free (standard library + ``math`` only) so that
every other subpackage can import them without cycles.
"""

from repro.utils.units import (
    G,
    KMH_TO_MS,
    MPH_TO_MS,
    kmh_to_ms,
    mph_to_ms,
    ms_to_kmh,
    ms_to_mph,
)
from repro.utils.canonical import canonical_scalar
from repro.utils.mathx import clamp, interp1d, rate_limit, sign, wrap_angle
from repro.utils.rng import RngStreams, derive_seed
from repro.utils.buffers import RingBuffer

__all__ = [
    "G",
    "KMH_TO_MS",
    "MPH_TO_MS",
    "kmh_to_ms",
    "mph_to_ms",
    "ms_to_kmh",
    "ms_to_mph",
    "clamp",
    "interp1d",
    "rate_limit",
    "sign",
    "wrap_angle",
    "canonical_scalar",
    "RngStreams",
    "derive_seed",
    "RingBuffer",
]
