"""NumPy twins of the scalar :mod:`repro.utils.mathx` helpers.

The batch engine (:mod:`repro.sim.batch_state`,
:mod:`repro.sim.batch_control`) vectorizes the per-step float math across
episode lanes while guaranteeing **bit-identical** results to the scalar
path.  That guarantee rests on replicating the scalar *branch semantics*
exactly — including operand order and signed-zero behaviour — not just the
mathematical value:

* ``clamp`` returns the untouched input inside the interval (so ``-0.0``
  passes through), the bound otherwise;
* Python's ``max(a, b)``/``min(a, b)`` return the *first* argument on
  ties, which matters for ``±0.0`` — :func:`np_max_pair`/:func:`np_min_pair`
  preserve that;
* guarded square roots and divisions replicate ``if``-protected scalar
  expressions without letting the unselected branch poison the result.

Only IEEE-754 elementwise operations (``+ - * / sqrt copysign abs`` and
comparisons) appear here; transcendentals are not bit-pinned across libm
implementations and must stay per-lane ``math`` calls at the call sites.
"""

from __future__ import annotations

import numpy as np


def np_clamp(value, lo, hi):
    """Vectorized ``mathx.clamp`` (identical branch semantics)."""
    return np.where(value < lo, lo, np.where(value > hi, hi, value))


def np_rate_limit(current, target, max_delta):
    """Vectorized ``mathx.rate_limit`` (identical branch semantics)."""
    delta = target - current
    return np.where(
        delta > max_delta,
        current + max_delta,
        np.where(delta < -max_delta, current - max_delta, target),
    )


def np_sqrt_pos(value):
    """Vectorized ``math.sqrt(v) if v > 0.0 else 0.0``."""
    return np.sqrt(np.where(value > 0.0, value, 0.0))


def np_max_pair(first, second):
    """Vectorized Python ``max(first, second)``.

    ``max(a, b)`` returns ``b`` only when ``b > a`` — on ties (including
    ``+0.0`` vs ``-0.0``) the *first* argument wins, which ``np.maximum``
    does not guarantee for signed zeros.
    """
    return np.where(second > first, second, first)


def np_min_pair(first, second):
    """Vectorized Python ``min(first, second)`` (first argument on ties)."""
    return np.where(second < first, second, first)
