"""Rule ``env-read-in-canonical``: environment reads in canonical modules.

A digest or canonical form that consults ``os.environ`` changes meaning
with the caller's shell: the same campaign hashes differently on two
hosts (cache misses that look like corruption), or worse, two different
configurations collide under one digest because the distinguishing knob
lived in the environment instead of the canonical form.  Canonical
modules must take every input as an explicit parameter.

The rule runs only on files holding the ``canonical`` role (see
:data:`repro.lint.rules.DEFAULT_ROLE_SUFFIXES` and the
``# repro-lint: role=canonical`` pragma).  Worker/CLI modules resolving
defaults (``REPRO_JOBS``, ``REPRO_BATCH_LANES``) are out of scope by
construction — they hold the ``worker`` role.

Legitimate environment reads inside a canonical module (a *location*
default like the cache directory, which never reaches a digest) take a
line pragma with a justification.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, LintRule, register_rule

#: Dotted call names that read the process environment.  Bare forms
#: cover ``from os import getenv`` / ``from os import environ``.
_ENV_CALLS = {
    "os.getenv",
    "os.environ.get",
    "getenv",
    "environ.get",
}

#: Dotted names whose subscripts (``os.environ["X"]``) are env access.
_ENV_MAPPINGS = {
    "os.environ",
    "environ",
}


class EnvReadRule(LintRule):
    rule_id = "env-read-in-canonical"
    title = "environment read inside a digest/canonical module"
    required_role = "canonical"

    def check(self, context: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                dotted = context.dotted_name(node.func)
                if dotted in _ENV_CALLS:
                    findings.append(self._flag(context, node, dotted))
            elif isinstance(node, ast.Subscript):
                dotted = context.dotted_name(node.value)
                if dotted in _ENV_MAPPINGS:
                    findings.append(self._flag(context, node, dotted))
        return findings

    def _flag(self, context: FileContext, node: ast.AST, dotted: str) -> Finding:
        return self.finding(
            context,
            node,
            f"{dotted} in a canonical/digest module: an environment "
            "variable makes canonical forms differ between hosts; take "
            "the value as an explicit parameter, or pragma with a "
            "justification if it provably never reaches a digest",
        )


register_rule(EnvReadRule())
