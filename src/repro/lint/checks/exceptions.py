"""Rule ``swallowed-exception``: bare/blanket handlers that hide failures.

Two shapes are flagged:

* ``except:`` (bare) — anywhere.  It catches ``KeyboardInterrupt`` and
  ``SystemExit``, so a worker hangs instead of dying and a fleet's crash
  recovery never fires.
* ``except Exception`` / ``except BaseException`` whose body does
  *nothing* (``pass``/``continue``/``...``) — on files holding the
  ``worker`` role.  In worker/collect paths a silently swallowed failure
  turns a dead shard into a truncated campaign that every downstream
  aggregate happily consumes; the scheduler's merge invariants exist
  precisely because that must never happen quietly.

Narrow no-op handlers (``except OSError: pass`` around a best-effort
``os.remove``) are deliberate and not flagged; blanket handlers that
*act* — re-raise, return, warn, log, retry — are fine too.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, LintRule, register_rule

#: Exception names considered blanket catches.
_BLANKET_TYPES = {"Exception", "BaseException"}


def _is_blanket(node: ast.ExceptHandler) -> bool:
    """Whether the handler catches Exception/BaseException (or a tuple
    containing one)."""
    if node.type is None:
        return True
    types = (
        node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
    )
    for entry in types:
        if isinstance(entry, ast.Name) and entry.id in _BLANKET_TYPES:
            return True
    return False


def _is_noop_body(body: List[ast.stmt]) -> bool:
    """A handler body that neither acts on nor records the exception."""
    for statement in body:
        if isinstance(statement, (ast.Pass, ast.Continue)):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring or ``...``
        return False
    return True


class SwallowedExceptionRule(LintRule):
    rule_id = "swallowed-exception"
    title = "bare except, or no-op blanket handler in a worker/collect path"

    def check(self, context: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        worker_path = "worker" in context.roles
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self.finding(
                        context,
                        node,
                        "bare 'except:' catches KeyboardInterrupt/SystemExit "
                        "— a worker hangs instead of dying and crash "
                        "recovery never fires; name the exception types "
                        "(at most 'except Exception')",
                    )
                )
            elif worker_path and _is_blanket(node) and _is_noop_body(node.body):
                findings.append(
                    self.finding(
                        context,
                        node,
                        "blanket handler silently swallows failures in a "
                        "worker/collect path — a dead shard becomes a "
                        "truncated campaign; re-raise, log, or narrow the "
                        "exception type",
                    )
                )
        return findings


register_rule(SwallowedExceptionRule())
