"""The built-in rule set: importing this package registers every rule.

One module per rule family, mirroring how :mod:`repro.sim.scenarios` and
:mod:`repro.sim.workloads` register scenario families on import.  Import
order is the registration order shown by ``repro lint --list``.
"""

from __future__ import annotations

import repro.lint.checks.rng  # noqa: F401
import repro.lint.checks.wallclock  # noqa: F401
import repro.lint.checks.env_read  # noqa: F401
import repro.lint.checks.fs_order  # noqa: F401
import repro.lint.checks.set_order  # noqa: F401
import repro.lint.checks.pickle_safety  # noqa: F401
import repro.lint.checks.float_format  # noqa: F401
import repro.lint.checks.exceptions  # noqa: F401
