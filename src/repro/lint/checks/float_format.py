"""Rule ``canonical-float-format``: lossy float text in canonical modules.

Digest payloads and canonical identity strings must map distinct values
to distinct text.  A precision-limited format (``f"{gap:.1f}"``,
``format(mu, '.3g')``) collapses neighbouring sweep values into one
token — two different campaigns then share a seed path, a label or a
cache key, which is the worst failure mode a content-addressed cache
has: *plausible* wrong results.

The rule runs only on files holding the ``canonical`` role and flags
f-string interpolations and ``format(...)`` calls whose literal format
spec uses a float presentation type (``e``/``f``/``g``/``%``) or an
explicit precision.  Sanctioned alternative:
:func:`repro.utils.canonical.canonical_scalar`, the shared full-precision
formatter (``str`` semantics: ``repr``-exact for floats in Python 3).

Historical identity is the one legitimate exception: formats that are
already baked into shipped seed derivations or labels cannot change
without invalidating every cache and golden digest — those sites carry a
line pragma saying exactly that.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, LintRule, register_rule

#: Format-spec mini-language: ``[[fill]align][sign][#][0][width][,][.prec][type]``.
#: Lossy iff the presentation type is a float one, or a precision is
#: given (``.3`` without a type still truncates via ``format``).
_LOSSY_SPEC_RE = re.compile(
    r"""
    ^[^{}]*?                # fill/align/sign/width/grouping (no nesting)
    (?:
        \.\d+[eEfFgG%]?$    # explicit precision, any or no float type
      | [eEfFgG%]$          # float presentation type without precision
    )
    """,
    re.VERBOSE,
)


def _literal_spec(node: Optional[ast.AST]) -> Optional[str]:
    """The literal text of an f-string format spec, or None.

    A spec is itself a JoinedStr; only fully-literal specs are analysed —
    a dynamic spec (``f"{x:{width}}"``) cannot be judged statically.
    """
    if node is None:
        return None
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                return None
        return "".join(parts)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return str(node.value)
    return None


class CanonicalFloatFormatRule(LintRule):
    rule_id = "canonical-float-format"
    title = "precision-losing float format inside a canonical/digest module"
    required_role = "canonical"

    def _message(self, spec: str) -> str:
        return (
            f"format spec {spec!r} loses float precision in a "
            "canonical/digest module — two distinct values can collapse "
            "to one token; use repro.utils.canonical.canonical_scalar "
            "(full precision), or pragma with a justification when the "
            "format is part of a shipped historical identity"
        )

    def check(self, context: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.FormattedValue):
                spec = _literal_spec(node.format_spec)
                if spec is not None and _LOSSY_SPEC_RE.match(spec):
                    findings.append(
                        self.finding(context, node, self._message(spec))
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "format"
                and len(node.args) == 2
            ):
                spec = _literal_spec(node.args[1])
                if spec is not None and _LOSSY_SPEC_RE.match(spec):
                    findings.append(
                        self.finding(context, node, self._message(spec))
                    )
        return findings


register_rule(CanonicalFloatFormatRule())
