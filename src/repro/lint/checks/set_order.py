"""Rule ``set-ordering``: set iteration order leaking into output.

Iterating a ``set``/``frozenset`` yields elements in hash order, which
for strings depends on ``PYTHONHASHSEED`` — a different order every
process unless the seed is pinned.  A set iterated into a list, a joined
string, a loop that appends to serialized output, or ``set.pop()``
"pick the element" therefore produces machine-dependent bytes: the
failure class that corrupts canonical forms while passing every
single-process test.

Order-insensitive consumption (``len``, ``sorted``, ``min``/``max``,
``sum``, ``any``/``all``, membership) is fine and not flagged.  The rule
tracks simple local assignments, so naming the set first does not hide
the hazard::

    labels = {r.intervention for r in results}
    for label in labels:            # flagged
        ...
    for label in sorted(labels):    # fine
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, LintRule, register_rule

#: Builtins that materialise their argument's iteration order.
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate", "iter", "map", "next"}

_MESSAGE = (
    "iterating a set yields hash order (PYTHONHASHSEED-dependent for "
    "strings); wrap in sorted(...) before the order can reach output"
)


def _is_set_literalish(node: ast.AST) -> bool:
    """A syntactically evident set: literal, comprehension, constructor."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class SetOrderingRule(LintRule):
    rule_id = "set-ordering"
    title = "set/frozenset iteration order reaching iteration or output"

    def _set_typed_names(
        self, context: FileContext
    ) -> Dict[Tuple[Optional[ast.AST], str], bool]:
        """``(scope, name) -> True`` for names only ever assigned sets.

        Single-assignment tracking per function scope: a name assigned a
        set expression is set-typed unless *any* other assignment in the
        same scope gives it a different shape (then it is dropped — a
        linter false negative beats a false positive here).
        """
        typed: Dict[Tuple[Optional[ast.AST], str], bool] = {}
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            scope = context.enclosing_function(node)
            key = (scope, target.id)
            is_set = _is_set_literalish(node.value)
            if key in typed:
                typed[key] = typed[key] and is_set
            else:
                typed[key] = is_set
        return typed

    def check(self, context: FileContext) -> List[Finding]:
        typed = self._set_typed_names(context)

        def is_setish(node: ast.AST) -> bool:
            if _is_set_literalish(node):
                return True
            if isinstance(node, ast.Name):
                return typed.get(
                    (context.enclosing_function(node), node.id), False
                )
            return False

        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            flagged: Optional[ast.AST] = None
            if isinstance(node, (ast.For, ast.AsyncFor)) and is_setish(node.iter):
                flagged = node.iter
            elif isinstance(node, ast.comprehension) and is_setish(node.iter):
                flagged = node.iter
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_WRAPPERS
                    and any(is_setish(arg) for arg in node.args)
                ):
                    flagged = node
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and any(is_setish(arg) for arg in node.args)
                ):
                    flagged = node
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and not node.args
                    and is_setish(node.func.value)
                ):
                    # ``set.pop()`` removes an *arbitrary* element — hash
                    # order again, just one element at a time.
                    flagged = node
            if flagged is not None:
                findings.append(self.finding(context, flagged, _MESSAGE))
        return findings


register_rule(SetOrderingRule())
