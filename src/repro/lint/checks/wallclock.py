"""Rule ``wall-clock-digest``: wall-clock reads in canonical modules.

A digest or canonical form that (however indirectly) folds in
``time.time()``, ``datetime.now()`` or a performance counter is different
on every run — which converts the content-addressed cache from "repeats
execute zero episodes" into "repeats silently never hit", or worse, lets
two *different* campaigns collide once the clock component is truncated.

The rule runs only on files holding the ``canonical`` role (the
digest/canonical-form modules listed in
:data:`repro.lint.rules.DEFAULT_ROLE_SUFFIXES`, plus anything declaring
``# repro-lint: role=canonical``).  Benchmarks are out of scope by
construction — they hold the ``benchmark`` role, not ``canonical``.

Legitimate wall-clock uses inside a canonical module (cache-entry age
for ``gc``, for example) take a line pragma with a justification; the
injectable ``now=None`` parameter pattern keeps them testable.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, LintRule, register_rule

#: Dotted call names that read the clock.  ``time.sleep`` is absent on
#: purpose: waiting is not *reading*, and poll loops are legitimate in
#: scheduler code.
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.date.today",
    "date.today",
}


class WallClockRule(LintRule):
    rule_id = "wall-clock-digest"
    title = "wall-clock read inside a digest/canonical module"
    required_role = "canonical"

    def check(self, context: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = context.dotted_name(node.func)
            if dotted in _CLOCK_CALLS:
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"{dotted}() in a canonical/digest module: a clock "
                        "component makes canonical forms differ between "
                        "runs; take the timestamp as an injectable "
                        "parameter, or pragma with a justification if the "
                        "value provably never reaches a digest",
                    )
                )
        return findings


register_rule(WallClockRule())
