"""Rule ``unpicklable-submission``: lambdas/closures handed to executors.

Campaign payloads cross process boundaries: the parallel executor pickles
:class:`~repro.core.executor.EpisodeTask` chunks, and fleet backends ship
``ml_factory`` to ``repro worker`` processes by pickle.  Lambdas and
functions nested inside other functions do not pickle, so a payload
carrying one either fails mid-campaign or (the executor's deliberate
fallback) silently degrades a fleet dispatch to serial in-process
execution — correctness survives, the distribution story does not.

The rule flags lambda and nested-function arguments to the submission
APIs (``pool.submit``/``map``, :func:`repro.core.experiment.run_campaign`,
:func:`repro.core.scheduler.dispatch_campaign`,
``EpisodeTask.make``).  Keyword arguments that never cross a process
boundary (``progress``, ``log``, ``key``) are exempt: progress callbacks
run in the dispatching process by design.

Sanctioned alternative: a module-level function or a picklable factory
class such as :class:`repro.ml.mitigation.MitigationFactory`.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, LintRule, register_rule

#: Call names (bare or attribute) treated as process-crossing submission
#: APIs.
_SUBMISSION_NAMES = {
    "submit",
    "run_campaign",
    "dispatch_campaign",
    "execute_shard",
}

#: ``<receiver>.<method>`` attribute calls also treated as submissions.
_SUBMISSION_METHODS = {"submit", "map"}

#: Keyword arguments that stay in the dispatching process.
_LOCAL_ONLY_KEYWORDS = {"progress", "log", "key"}


class UnpicklableSubmissionRule(LintRule):
    rule_id = "unpicklable-submission"
    title = "lambda/nested function passed to an executor submission API"

    def _nested_function_names(self, context: FileContext) -> Set[Tuple[ast.AST, str]]:
        """``(enclosing function, name)`` for every nested function def."""
        nested: Set[Tuple[ast.AST, str]] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                enclosing = context.enclosing_function(node)
                if enclosing is not None:
                    nested.add((enclosing, node.name))
        return nested

    def _is_submission(self, context: FileContext, node: ast.Call) -> bool:
        if isinstance(node.func, ast.Name):
            return node.func.id in _SUBMISSION_NAMES
        if isinstance(node.func, ast.Attribute):
            return (
                node.func.attr in _SUBMISSION_NAMES
                or node.func.attr in _SUBMISSION_METHODS
            )
        return False

    def check(self, context: FileContext) -> List[Finding]:
        nested = self._nested_function_names(context)
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call) or not self._is_submission(
                context, node
            ):
                continue
            scope = context.enclosing_function(node)
            candidates = [(arg, None) for arg in node.args] + [
                (kw.value, kw.arg) for kw in node.keywords
            ]
            for value, keyword in candidates:
                if keyword in _LOCAL_ONLY_KEYWORDS:
                    continue
                if isinstance(value, ast.Lambda):
                    findings.append(
                        self.finding(
                            context,
                            value,
                            "lambda passed to a submission API does not "
                            "pickle across the process boundary; use a "
                            "module-level function or a picklable factory "
                            "(e.g. repro.ml.MitigationFactory)",
                        )
                    )
                elif (
                    isinstance(value, ast.Name)
                    and scope is not None
                    and (scope, value.id) in nested
                ):
                    findings.append(
                        self.finding(
                            context,
                            value,
                            f"nested function {value.id!r} passed to a "
                            "submission API does not pickle across the "
                            "process boundary; hoist it to module level",
                        )
                    )
        return findings


register_rule(UnpicklableSubmissionRule())
