"""Rule ``unsorted-fs-iteration``: filesystem listings used unsorted.

``os.listdir``, ``os.scandir``, ``os.walk``, ``glob.glob`` and
``Path.iterdir``/``glob``/``rglob`` return entries in filesystem order —
which differs between ext4, tmpfs, NFS and object-store gateways.  Any
consumer that folds such a listing into output (cache keys, merge order,
report arms) reproduces differently on different machines: exactly the
shard-merge and cache-maintenance paths this repo guarantees are
byte-identical.

The fix is mechanical — wrap the call in ``sorted(...)`` at the call
site.  The rule accepts exactly that shape (plus order-insensitive
``len(...)`` consumption); assigning the raw listing to a variable and
sorting *later* still flags, because every path between the call and the
sort is a place an unsorted copy can leak.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, LintRule, register_rule

#: Module-level listing calls, by dotted name.
_LISTING_CALLS = {
    "os.listdir",
    "os.scandir",
    "os.walk",
    "glob.glob",
    "glob.iglob",
}

#: Method names that produce listings on path-like objects.
_LISTING_METHODS = {"iterdir", "glob", "rglob"}

#: Wrappers that consume a listing order-insensitively.
_ORDER_INSENSITIVE_WRAPPERS = {"sorted", "len", "set", "frozenset", "sum"}


class UnsortedFsIterationRule(LintRule):
    rule_id = "unsorted-fs-iteration"
    title = "filesystem listing not wrapped in sorted()"

    def _listing_name(self, context: FileContext, node: ast.Call) -> Optional[str]:
        dotted = context.dotted_name(node.func)
        if dotted in _LISTING_CALLS:
            return dotted
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _LISTING_METHODS
            # ``glob.glob(...)`` already matched above; any *other*
            # receiver ending in a listing method is treated as path-like.
            and dotted not in _LISTING_CALLS
        ):
            return f"<path>.{node.func.attr}"
        return None

    def check(self, context: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._listing_name(context, node)
            if name is None:
                continue
            parent = context.parent(node)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_INSENSITIVE_WRAPPERS
                and node in parent.args
            ):
                continue
            findings.append(
                self.finding(
                    context,
                    node,
                    f"{name}() returns entries in filesystem order, which "
                    "differs across filesystems and machines; wrap the "
                    "call in sorted(...) at the call site",
                )
            )
        return findings


register_rule(UnsortedFsIterationRule())
