"""Rule ``unseeded-rng``: global/legacy RNG calls with process-wide state.

``random.*`` module functions and the legacy ``numpy.random.*`` module
API draw from *process-global* generators.  Any such draw inside the
reproduction pipeline makes results depend on import order, executor
scheduling and whatever other code touched the generator first — the
exact nondeterminism the named-stream discipline of
:mod:`repro.utils.rng` exists to rule out.  Seeding the global generator
(``random.seed`` / ``numpy.random.seed``) is flagged too: it trades
nondeterminism for spooky action between unrelated components.

Sanctioned alternative: derive a seed with
:func:`repro.utils.rng.derive_seed` and draw from a local
``numpy.random.default_rng(seed)`` / ``RngStreams`` generator.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, LintRule, register_rule

#: ``numpy.random`` attributes that do *not* touch the global generator:
#: constructing explicitly-seeded generators and bit generators is the
#: sanctioned replacement, not the hazard.
_SEEDED_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "BitGenerator",
}

#: Module prefixes whose bare-attribute calls are global-state RNG.
_GLOBAL_RNG_PREFIXES = ("random.", "numpy.random.", "np.random.")


class UnseededRngRule(LintRule):
    rule_id = "unseeded-rng"
    title = "global random.* / legacy numpy.random.* call (process-wide state)"

    def check(self, context: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = context.dotted_name(node.func)
            if dotted is None:
                continue
            for prefix in _GLOBAL_RNG_PREFIXES:
                if not dotted.startswith(prefix):
                    continue
                attr = dotted[len(prefix):]
                if "." in attr or attr in _SEEDED_CONSTRUCTORS:
                    continue
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"{dotted}() draws from the process-global RNG; "
                        "derive a seed (repro.utils.rng.derive_seed) and "
                        "use a local numpy.random.default_rng(seed) / "
                        "RngStreams stream instead",
                    )
                )
                break
        return findings


register_rule(UnseededRngRule())
