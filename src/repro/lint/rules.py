"""Rule base class, per-file analysis context, and the rule registry.

The registry follows the scenario-family / worker-backend idiom
(:mod:`repro.sim.families`, :mod:`repro.core.scheduler`):
``register_rule`` / ``get_rule`` / ``registered_rules``, with
:class:`UnknownRuleError` naming everything that *is* registered so a
mistyped ``--rule`` flag reads as documentation, not a traceback.

Module roles
------------

Some hazards are only hazards in particular modules: a wall-clock read is
fine in a progress bar but poison inside a digest computation.  Rules
therefore declare ``required_role`` and the engine only runs them on
files holding that role.  Roles come from two sources:

* the built-in suffix map :data:`DEFAULT_ROLE_SUFFIXES` (this repo's
  canonical/digest and worker/collect modules), and
* an explicit ``# repro-lint: role=<name>[,<name>...]`` pragma in the
  file itself — which is how rule fixtures (and third-party trees) opt
  into scoped rules.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding

#: Role names understood by the shipped rules.
ROLES = ("canonical", "worker", "benchmark")

#: Path suffixes (forward-slash form) mapped to the roles they hold.
#: ``canonical`` marks digest/canonical-form modules where wall-clock and
#: lossy float formatting silently corrupt campaign identity; ``worker``
#: marks fleet/collect paths where a swallowed exception turns a dead
#: shard into a silent truncation.
DEFAULT_ROLE_SUFFIXES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("repro/core/cache.py", ("canonical",)),
    ("repro/attacks/campaign.py", ("canonical",)),
    ("repro/core/scheduler.py", ("canonical", "worker")),
    ("repro/sim/families.py", ("canonical",)),
    ("repro/core/executor.py", ("worker",)),
    ("repro/cli.py", ("worker",)),
)


def roles_for_path(path: str) -> Set[str]:
    """The built-in roles a file holds, by path suffix."""
    normalised = path.replace("\\", "/")
    roles: Set[str] = set()
    for suffix, held in DEFAULT_ROLE_SUFFIXES:
        if normalised.endswith(suffix):
            roles.update(held)
    if "/benchmarks/" in normalised or normalised.startswith("benchmarks/"):
        roles.add("benchmark")
    return roles


class FileContext:
    """Everything a rule needs to analyse one parsed file.

    Attributes:
        path: the file path as reported in findings (forward slashes).
        source: full file text.
        lines: source split into lines (index 0 = line 1).
        tree: the parsed :mod:`ast` module node, with parent links
            attached (see :meth:`parent`).
        roles: the module roles in effect (built-in suffix map plus any
            ``role=`` pragma collected by the engine).
    """

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        extra_roles: Sequence[str] = (),
    ) -> None:
        self.path = path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.roles = roles_for_path(self.path) | set(extra_roles)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node``, or None for the module."""
        return self._parents.get(node)

    def snippet(self, line: int) -> str:
        """The stripped source text of 1-based ``line`` (may be empty)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """``a.b.c`` for a Name/Attribute chain, else None.

        Purely syntactic — no import resolution — which is the right
        trade for a determinism linter: ``random.random()`` is a hazard
        whether ``random`` is the stdlib module or something shadowing
        it, and a false positive is one pragma away.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The nearest enclosing function/async-function def, or None."""
        current = self.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parent(current)
        return None


class LintRule:
    """Base class for registered lint rules.

    Subclasses provide:

    * :attr:`rule_id` — unique registry key (doubles as the CLI
      ``--rule`` / ``--disable`` and pragma name);
    * :attr:`title` — one-line description for ``repro lint --list``;
    * :attr:`required_role` — run only on files holding the role
      (None = every scanned file);
    * :meth:`check` — return the findings for one :class:`FileContext`.
    """

    rule_id: str = ""
    title: str = ""
    severity: str = "error"
    required_role: Optional[str] = None

    def applies_to(self, context: FileContext) -> bool:
        """Whether the rule runs on this file at all (role scoping)."""
        if self.required_role is None:
            return True
        return self.required_role in context.roles

    def check(self, context: FileContext) -> List[Finding]:
        """Findings for one file.  Must be deterministic in the source."""
        raise NotImplementedError

    def finding(
        self, context: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored to ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=context.path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            snippet=context.snippet(line),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LintRule({self.rule_id!r})"


class UnknownRuleError(ValueError):
    """A rule id that no registered rule claims.

    The message names every registered rule so ``--rule``/``--disable``
    typos (and stale pragmas) read as documentation.
    """

    def __init__(self, rule_id: object, registered: Sequence[str]) -> None:
        self.rule_id = rule_id
        self.registered = tuple(registered)
        names = ", ".join(self.registered) if self.registered else "(none)"
        super().__init__(
            f"unknown lint rule {rule_id!r}; registered rules: {names} "
            "(see 'repro lint --list')"
        )


_REGISTRY: Dict[str, LintRule] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the modules that register the built-in rules.

    Mirrors :func:`repro.sim.families._ensure_builtins`: normally
    :mod:`repro.lint.checks` has already registered everything, but the
    lazy fallback keeps direct ``rules`` users working under any import
    order.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.lint.checks  # noqa: F401  (registers the built-in rules)


def register_rule(rule: LintRule, replace: bool = False) -> LintRule:
    """Register ``rule`` under its id; returns it (decorator-friendly).

    Raises:
        ValueError: a malformed id, or the id is already registered
            (unless ``replace``).
    """
    rid = rule.rule_id
    if not rid or rid != rid.strip() or any(c.isspace() for c in rid):
        raise ValueError(
            f"rule_id must be a non-empty token without whitespace, got {rid!r}"
        )
    if not replace and rid in _REGISTRY:
        raise ValueError(
            f"lint rule {rid!r} is already registered; pass replace=True "
            "to override it"
        )
    _REGISTRY[rid] = rule
    return rule


def unregister_rule(rule_id: str) -> None:
    """Remove a rule from the registry (test harness use)."""
    _REGISTRY.pop(rule_id, None)


def get_rule(rule_id: str) -> LintRule:
    """The registered rule for ``rule_id``.

    Raises:
        UnknownRuleError: no registered rule claims the id; the message
            lists every registered rule.
    """
    rule = _REGISTRY.get(rule_id)
    if rule is None:
        _ensure_builtins()
        rule = _REGISTRY.get(rule_id)
    if rule is None:
        raise UnknownRuleError(rule_id, registered_rules())
    return rule


def registered_rules() -> Tuple[str, ...]:
    """Every registered rule id, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def rule_catalog() -> List[Dict[str, object]]:
    """JSON-safe description of every registered rule (``lint --list``)."""
    return [
        {
            "id": rid,
            "title": _REGISTRY[rid].title,
            "severity": _REGISTRY[rid].severity,
            "role": _REGISTRY[rid].required_role,
        }
        for rid in registered_rules()
    ]
