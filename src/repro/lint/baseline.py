"""Baseline files: grandfather pre-existing findings, gate new ones.

Adopting a linter on a grown tree is all-or-nothing without a baseline:
either every historical finding blocks CI on day one, or the gate ships
disabled.  The baseline records the *current* findings as fingerprints;
``repro lint --baseline FILE`` subtracts them and fails only on findings
the file does not cover.  Fixing a grandfathered finding then shrinks the
baseline via ``--write-baseline`` — the ratchet only tightens.

Fingerprints are deliberately line-number-free: ``(path, rule, snippet)``
hashed with SHA-256 (the same stable-across-processes choice as
:func:`repro.core.cache.campaign_digest` — ``hash()`` is salted and
unusable).  Unrelated edits that shift a grandfathered finding up or down
the file do not invalidate the baseline; duplicating the offending line
does, because matching is multiset-aware (N fingerprints absorb at most N
identical findings).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.core.metrics import PathLike
from repro.lint.findings import Finding

#: Bump when the fingerprint recipe changes so a stale baseline can never
#: silently absorb findings it was not written for.
BASELINE_FORMAT = 1


def finding_fingerprint(finding: Finding) -> str:
    """Line-number-free stable identity of one finding.

    ``path`` + ``rule`` + ``snippet``: enough to survive line drift from
    unrelated edits, specific enough that a *new* occurrence of the same
    hazard on a different source line (different snippet text) is not
    absorbed.
    """
    text = f"{finding.path}\t{finding.rule_id}\t{finding.snippet}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def write_baseline(path: PathLike, findings: Sequence[Finding]) -> str:
    """Write the baseline document for ``findings``; returns the path.

    Entries are sorted and carry the human-readable location they were
    recorded at, so baseline diffs review like code.
    """
    entries = sorted(
        (
            {
                "fingerprint": finding_fingerprint(f),
                "rule": f.rule_id,
                "path": f.path,
                "line": f.line,
                "snippet": f.snippet,
            }
            for f in findings
        ),
        key=lambda e: (e["path"], e["line"], e["rule"], e["fingerprint"]),
    )
    document = {"format": BASELINE_FORMAT, "findings": entries}
    target = os.fspath(path)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def load_baseline(path: PathLike) -> Counter:
    """Load a baseline into a fingerprint multiset.

    Raises:
        ValueError: the file is not a baseline document of the current
            format (a stale-format baseline must fail loudly, not absorb
            findings under a recipe it was not written for).
        OSError: the file cannot be read.
    """
    target = os.fspath(path)
    with open(target, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{target}: not a baseline file ({exc})") from None
    if not isinstance(document, dict) or "findings" not in document:
        raise ValueError(f"{target}: not a baseline file (no findings key)")
    if document.get("format") != BASELINE_FORMAT:
        raise ValueError(
            f"{target}: baseline format {document.get('format')!r} does not "
            f"match the supported format {BASELINE_FORMAT}; regenerate it "
            "with 'repro lint --write-baseline'"
        )
    fingerprints: Counter = Counter()
    for entry in document["findings"]:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(f"{target}: malformed baseline entry {entry!r}")
        fingerprints[str(entry["fingerprint"])] += 1
    return fingerprints


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(new, grandfathered)`` against a baseline.

    Multiset semantics: each baseline fingerprint absorbs at most as many
    findings as it was recorded times, in location order — so adding a
    *second* copy of a grandfathered hazard is a new finding even though
    its fingerprint matches.
    """
    remaining = Counter(baseline)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in sorted(findings, key=Finding.sort_key):
        fingerprint = finding_fingerprint(finding)
        if remaining[fingerprint] > 0:
            remaining[fingerprint] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered


def baseline_summary(baseline: Counter) -> Dict[str, int]:
    """Counts for reporting: total entries and distinct fingerprints."""
    return {
        "entries": sum(baseline.values()),
        "distinct": len(baseline),
    }
