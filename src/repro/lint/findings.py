"""The :class:`Finding` model shared by every rule, reporter and gate.

A finding is one located hazard: file, 1-based line, 0-based column, the
rule that raised it, a severity, a human-readable message and the source
snippet it anchors to.  Findings are immutable and ordered by location so
every reporter (text, JSON, baseline) emits them deterministically —
the lint tool must hold itself to the invariants it enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Admissible severities, weakest last.  ``error`` findings gate CI;
#: ``warning`` findings are advisory (none of the shipped rules emit
#: warnings today, but the model carries the distinction so a rule can be
#: soft-launched before it starts failing builds).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One hazard located by a lint rule.

    Attributes:
        path: the scanned file, normalised to forward slashes (relative
            when the scan was given a relative path).
        line: 1-based line number of the offending node.
        col: 0-based column offset of the offending node.
        rule_id: id of the rule that raised the finding (registry key).
        severity: one of :data:`SEVERITIES`.
        message: one-line human-readable description of the hazard.
        snippet: the stripped source line the finding anchors to.
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    snippet: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )
        if self.line < 1:
            raise ValueError(f"line numbers are 1-based, got {self.line}")
        if self.col < 0:
            raise ValueError(f"column offsets are 0-based, got {self.col}")

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Deterministic ordering: by file, then location, then rule."""
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (the ``--json`` reporter and the baseline)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "snippet": self.snippet,
        }

    def location(self) -> str:
        """The clickable ``path:line:col`` prefix of the text reporter."""
        return f"{self.path}:{self.line}:{self.col}"
