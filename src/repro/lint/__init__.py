"""Determinism and digest-safety static analysis (``repro lint``).

Every subsystem above the simulator rests on one invariant: canonical
forms and campaign digests are bit-identical across serial, parallel and
distributed execution.  The golden-digest suites enforce that *after the
fact*; this package enforces it at review time by scanning source files
for the fault classes that silently corrupt reproduction fidelity:

* unseeded global RNG (:mod:`repro.lint.checks.rng`),
* wall-clock reads in digest/canonical modules
  (:mod:`repro.lint.checks.wallclock`),
* unsorted filesystem iteration (:mod:`repro.lint.checks.fs_order`),
* set-ordering leaks into iteration or serialized output
  (:mod:`repro.lint.checks.set_order`),
* unpicklable payloads handed to executor/scheduler submission APIs
  (:mod:`repro.lint.checks.pickle_safety`),
* precision-losing float formatting in canonical modules
  (:mod:`repro.lint.checks.float_format`),
* bare/swallowed exceptions in worker and collect paths
  (:mod:`repro.lint.checks.exceptions`).

Rules live in a registry (:mod:`repro.lint.rules`) mirroring the
scenario-family and worker-backend registries: ``register_rule`` /
``get_rule`` / ``registered_rules``, with :class:`UnknownRuleError`
naming what *is* registered.  The engine (:mod:`repro.lint.engine`)
walks files deterministically, honours ``# repro-lint:`` suppression
pragmas, and the baseline layer (:mod:`repro.lint.baseline`) grandfathers
pre-existing findings so the CI gate only fails on *new* hazards.
"""

from __future__ import annotations

from repro.lint.baseline import (
    apply_baseline,
    finding_fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    LintReport,
    iter_python_files,
    lint_file,
    lint_paths,
    select_rules,
)
from repro.lint.findings import SEVERITIES, Finding
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import (
    FileContext,
    LintRule,
    UnknownRuleError,
    get_rule,
    register_rule,
    registered_rules,
)

__all__ = [
    "Finding",
    "SEVERITIES",
    "FileContext",
    "LintRule",
    "UnknownRuleError",
    "get_rule",
    "register_rule",
    "registered_rules",
    "LintReport",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "select_rules",
    "apply_baseline",
    "finding_fingerprint",
    "load_baseline",
    "write_baseline",
    "render_json",
    "render_text",
]
