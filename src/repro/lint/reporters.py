"""Finding reporters: human-readable text and machine-readable JSON.

Both forms are deterministic in the finding list (which the engine sorts
by location), so CI logs and ``--json`` output diff cleanly between runs
— the same property every other ``--json`` surface in the toolkit keeps.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence

from repro.lint.findings import Finding

#: Format tag of the JSON document, matching the toolkit's other
#: machine-readable surfaces (``scenarios list --json``, ``cache list
#: --json``).  Bump on shape changes.
JSON_FORMAT = 1


def render_text(
    findings: Sequence[Finding],
    files: Sequence[str],
    grandfathered: Sequence[Finding] = (),
) -> str:
    """The default reporter: one ``path:line:col`` block per finding.

    The location prefix matches compiler convention so editors and CI
    annotators pick the findings up without configuration.
    """
    lines = []
    for finding in findings:
        lines.append(
            f"{finding.location()}: {finding.rule_id} "
            f"{finding.severity}: {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    summary = (
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
        f"in {len(files)} file{'s' if len(files) != 1 else ''}"
    )
    if grandfathered:
        summary += f" ({len(grandfathered)} grandfathered by the baseline)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    files: Sequence[str],
    grandfathered: Sequence[Finding] = (),
    rules: Optional[Sequence[str]] = None,
) -> str:
    """The ``--json`` reporter: one self-describing document."""
    document: Dict[str, object] = {
        "format": JSON_FORMAT,
        "files": list(files),
        "rules": list(rules) if rules is not None else None,
        "findings": [f.to_dict() for f in findings],
        "grandfathered": [f.to_dict() for f in grandfathered],
    }
    return json.dumps(document, indent=2, sort_keys=True)
