"""The lint engine: file discovery, pragma handling, rule execution.

Determinism is load-bearing here too: files are discovered in sorted
order and findings are sorted by location, so two runs over the same tree
always produce byte-identical reports — the property the CI gate and the
committed baseline depend on.

Suppression pragmas
-------------------

* ``# repro-lint: disable=<rule>[,<rule>...]`` on a line suppresses the
  named rules (or ``all``) for findings anchored to that line.  For a
  statement spanning several lines the pragma goes on the line where the
  flagged expression *starts* (the AST anchor).
* ``# repro-lint: disable-file=<rule>[,<rule>...]`` anywhere in the file
  suppresses the named rules (or ``all``) for the whole file.
* ``# repro-lint: role=<name>[,<name>...]`` declares module roles (see
  :data:`repro.lint.rules.DEFAULT_ROLE_SUFFIXES`) so files outside the
  built-in suffix map — rule fixtures, third-party trees — opt into
  scoped rules.

Every pragma should carry a justification comment; the pragma disables
the rule, the justification keeps the next reader from deleting it.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.metrics import PathLike
from repro.lint.findings import Finding
from repro.lint.rules import (
    FileContext,
    LintRule,
    get_rule,
    registered_rules,
)

#: Pragma grammar: ``# repro-lint: <directive>=<value>[,<value>...]``.
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<directive>disable-file|disable|role)\s*="
    r"\s*(?P<values>[A-Za-z0-9_,\- ]+)"
)

#: Directories never descended into during discovery.
_SKIP_DIRS = {".git", "__pycache__", ".hypothesis", ".pytest_cache"}


@dataclass(frozen=True)
class _Pragmas:
    """Suppressions and roles collected from one file's comments."""

    line_disables: Dict[int, Set[str]] = field(default_factory=dict)
    file_disables: Set[str] = field(default_factory=set)
    roles: Set[str] = field(default_factory=set)

    def suppresses(self, finding: Finding) -> bool:
        """Whether a pragma suppresses ``finding``."""
        if "all" in self.file_disables or finding.rule_id in self.file_disables:
            return True
        on_line = self.line_disables.get(finding.line, ())
        return "all" in on_line or finding.rule_id in on_line


def _collect_pragmas(source: str) -> _Pragmas:
    """Parse every ``# repro-lint:`` pragma out of ``source``.

    Purely line-based: pragmas live in comments, which the AST does not
    retain.  A pragma inside a string literal would be honoured too —
    acceptable for a linter (the fixture tests embed hazards in plain
    source, not strings).
    """
    line_disables: Dict[int, Set[str]] = {}
    file_disables: Set[str] = set()
    roles: Set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        values = {
            value.strip()
            for value in match.group("values").split(",")
            if value.strip()
        }
        if not values:
            continue
        directive = match.group("directive")
        if directive == "disable":
            line_disables.setdefault(lineno, set()).update(values)
        elif directive == "disable-file":
            file_disables.update(values)
        else:  # role
            roles.update(values)
    return _Pragmas(
        line_disables=line_disables, file_disables=file_disables, roles=roles
    )


def select_rules(
    enable: Optional[Sequence[str]] = None,
    disable: Optional[Sequence[str]] = None,
) -> List[LintRule]:
    """Resolve ``--rule`` / ``--disable`` flags against the registry.

    Args:
        enable: run only these rules (default: every registered rule).
        disable: drop these rules from the selection.

    Raises:
        UnknownRuleError: a name in either list is not registered —
            a silently ignored selector would report "clean" while not
            checking what the caller asked for.
        ValueError: the selection is empty.
    """
    for rule_id in tuple(enable or ()) + tuple(disable or ()):
        get_rule(rule_id)  # raises UnknownRuleError with the catalog
    selected = list(enable) if enable else list(registered_rules())
    dropped = set(disable or ())
    rules = [get_rule(rid) for rid in dict.fromkeys(selected) if rid not in dropped]
    if not rules:
        raise ValueError(
            "rule selection is empty: every selected rule was disabled"
        )
    return rules


def iter_python_files(paths: Sequence[PathLike]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directories are walked recursively in sorted order (the engine must
    not inherit filesystem iteration order — the exact hazard one of its
    own rules flags); explicit file arguments are kept whether or not
    they end in ``.py``, so fixtures with any suffix can be scanned.

    Raises:
        OSError: a path does not exist.
    """
    discovered: List[str] = []
    for raw in paths:
        path = os.fspath(raw)
        if os.path.isdir(path):
            # Discovery must not inherit filesystem order; both name lists
            # are sorted explicitly below, which the walk rule cannot see.
            walker = os.walk(path)  # repro-lint: disable=unsorted-fs-iteration
            for dirpath, dirnames, filenames in walker:
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        discovered.append(os.path.join(dirpath, name))
        elif os.path.exists(path):
            discovered.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
    # De-duplicate while preserving nothing but the sorted order (a file
    # reachable through two arguments must be reported once).
    return sorted(dict.fromkeys(f.replace("\\", "/") for f in discovered))


def lint_file(
    path: PathLike,
    rules: Optional[Sequence[LintRule]] = None,
    source: Optional[str] = None,
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over one file.

    A file that does not parse yields a single ``syntax-error`` finding
    instead of raising: one broken file must not hide findings in the
    rest of a tree-wide scan (and a syntactically broken file in a
    reproduction pipeline is itself a finding).

    Returns:
        Pragma-filtered findings sorted by location.
    """
    path = os.fspath(path).replace("\\", "/")
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    if rules is None:
        rules = select_rules()
    pragmas = _collect_pragmas(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=max(0, (exc.offset or 1) - 1),
                rule_id="syntax-error",
                severity="error",
                message=f"file does not parse: {exc.msg}",
                snippet=(exc.text or "").strip(),
            )
        ]
    context = FileContext(path, source, tree, extra_roles=sorted(pragmas.roles))
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(context):
            continue
        findings.extend(rule.check(context))
    kept = [f for f in findings if not pragmas.suppresses(f)]
    return sorted(kept, key=Finding.sort_key)


@dataclass(frozen=True)
class LintReport:
    """The outcome of one engine run.

    Attributes:
        findings: every kept (non-suppressed, non-baselined) finding,
            sorted by location.
        files: the scanned files, sorted.
        rules: ids of the rules that ran.
        grandfathered: findings absorbed by the baseline (informational).
    """

    findings: Tuple[Finding, ...]
    files: Tuple[str, ...]
    rules: Tuple[str, ...]
    grandfathered: Tuple[Finding, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings


def lint_paths(
    paths: Sequence[PathLike],
    rules: Optional[Sequence[LintRule]] = None,
) -> LintReport:
    """Run the engine over files and directories.

    Args:
        paths: files and/or directories; directories are walked for
            ``.py`` files in sorted order.
        rules: rule instances to run (default: every registered rule).

    Returns:
        A :class:`LintReport` with location-sorted findings.
    """
    if rules is None:
        rules = select_rules()
    files = iter_python_files(paths)
    findings: List[Finding] = []
    for path in files:
        findings.extend(lint_file(path, rules=rules))
    return LintReport(
        findings=tuple(sorted(findings, key=Finding.sort_key)),
        files=tuple(files),
        rules=tuple(rule.rule_id for rule in rules),
    )
