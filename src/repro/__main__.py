"""Module entry point: ``python -m repro``."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream consumer (``| head``, a closed watch loop) went away
        # mid-print: exit quietly like a well-behaved filter, but close
        # stdout's descriptor first so the interpreter does not raise the
        # same error again while flushing at shutdown.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 141  # 128 + SIGPIPE, the conventional shell status
    raise SystemExit(code)
