"""AEBS + FCW: time-to-collision phase-controlled emergency braking.

Implements the paper's Section III-C design exactly:

* ``ttc = RD / RS``                                      (Eq. 1)
* ``T_stop = V_ego / a_driver``                          (Eq. 2)
* ``t_fcw = T_react + T_stop``                           (Eq. 3)
* phase thresholds ``t_pb1 = V/3.8``, ``t_pb2 = V/5.8``,
  ``t_fb = V/9.8``                                       (Eq. 4)

with the action table (the paper's Table I):

    ==================  =================
    TTC interval        action
    ==================  =================
    [t_fcw, t_pb1)      FCW alert
    [t_pb1, t_pb2)      90 % brake
    [t_pb2, t_fb)       95 % brake
    [t_fb, 0)           100 % brake
    ==================  =================

Three configurations (Section III-C, "three distinct configurations"):

* :attr:`AebsConfig.DISABLED` — AEBS absent (FCW is still computed, from
  perceived data, because Table IV reports ``min t_fcw`` even in
  no-intervention runs and the driver model consumes FCW alerts).
* :attr:`AebsConfig.COMPROMISED` — AEBS consumes the *perceived* (post
  fault-injection) lead state, modelling cars whose AEB shares the ADAS
  camera pipeline.
* :attr:`AebsConfig.INDEPENDENT` — AEBS consumes ground truth from an
  independent, secure sensor.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.utils.units import G


class AebsConfig(enum.Enum):
    """AEBS input-source configuration (paper Section III-C)."""

    DISABLED = "disabled"
    COMPROMISED = "compromised"
    INDEPENDENT = "independent"


@dataclass(frozen=True)
class AebsParams:
    """Constants of the AEBS design.

    Attributes:
        driver_decel: assumed human braking deceleration ``a_driver`` in
            Eq. 2 [m/s^2].  4.9 (half g) reproduces the paper's reported
            ``min t_fcw`` values (e.g. S1: 2.5 + 9.6/4.9 = 4.46 s).
        reaction_time: assumed human reaction time ``T_react`` [s].
        pb1_divisor, pb2_divisor, fb_divisor: Eq. 4 speed divisors.
        brake_fractions: brake level per phase (fraction of full braking).
        min_speed: AEBS is inhibited below this ego speed [m/s].
        min_closing: minimum closing speed to consider a threat [m/s].
        release_margin: a latched phase releases once the TTC has
            recovered above ``release_margin x t_pb1`` (UN R152 allows the
            manoeuvre to abort when the collision risk clears), *except*
            within ``hold_gap`` of the obstacle.
        release_sustain: the recovery must persist this long before the
            manoeuvre aborts [s] (momentary TTC blips — e.g. a compromised
            ACC re-accelerating between braking phases — do not release).
        standstill_hold: seconds the brakes are held after an emergency
            stop completes before handing control back.
        hold_gap: inside this distance the manoeuvre never aborts and a
            standstill is held while the obstacle remains [m] — an AEBS
            does not hand control back while bumper-to-bumper.
    """

    driver_decel: float = 4.9
    reaction_time: float = 2.5
    pb1_divisor: float = 3.8
    pb2_divisor: float = 5.8
    fb_divisor: float = 9.8
    brake_fractions: tuple = (0.90, 0.95, 1.00)
    min_speed: float = 0.5
    min_closing: float = 0.3
    release_margin: float = 1.3
    release_sustain: float = 1.0
    standstill_hold: float = 1.5
    hold_gap: float = 4.0


@dataclass(frozen=True)
class AebsState:
    """Output of one AEBS evaluation step.

    Attributes:
        fcw: True while the forward-collision warning is active.
        phase: 0 (inactive), 1 (90 %), 2 (95 %), 3 (full braking).
        brake_accel: braking command [m/s^2] (negative; 0 when inactive).
        ttc: the TTC used for the decision [s] (``inf`` when no threat).
    """

    fcw: bool
    phase: int
    brake_accel: float
    ttc: float


class Aebs:
    """Stateful AEBS evaluated once per control step.

    A latched phase escalates while TTC keeps collapsing and releases when
    the risk clears (TTC recovered with hysteresis, threat gone) — unless
    the ego is within ``hold_gap`` of the obstacle, where braking continues
    to (and holds at) standstill.  The close-range hold is what lets an
    independent-sensor AEBS prevent 100 % of RD-attack collisions: the
    still-compromised ACC keeps trying to creep into the lead after every
    release, and the final approach always ends inside ``hold_gap``.
    """

    def __init__(self, config: AebsConfig, params: AebsParams | None = None) -> None:
        self.config = config
        self.params = params or AebsParams()
        self._phase = 0
        self._hold_until: float | None = None
        self._recovered_since: float | None = None
        self._time = 0.0

    def reset(self) -> None:
        """Release any latched braking phase (start of an episode)."""
        self._phase = 0
        self._hold_until = None
        self._recovered_since = None
        self._time = 0.0

    def thresholds(self, ego_speed: float) -> tuple:
        """``(t_fcw, t_pb1, t_pb2, t_fb)`` at ``ego_speed`` (Eqs. 2-4)."""
        p = self.params
        t_stop = ego_speed / p.driver_decel
        t_fcw = p.reaction_time + t_stop
        return (
            t_fcw,
            ego_speed / p.pb1_divisor,
            ego_speed / p.pb2_divisor,
            ego_speed / p.fb_divisor,
        )

    def update(
        self,
        ego_speed: float,
        lead_valid: bool,
        rd: float,
        rs: float,
        dt: float = 0.01,
    ) -> AebsState:
        """Evaluate the AEBS for one step.

        Args:
            ego_speed: ego vehicle speed ``V_ego`` [m/s].
            lead_valid: whether the configured input source sees a lead.
            rd: relative distance from the configured source [m].
            rs: relative (closing) speed from the configured source [m/s].
            dt: control period [s].
        """
        p = self.params
        self._time += dt
        threat = lead_valid and rs >= p.min_closing and rd > 0.0
        ttc = rd / rs if threat else math.inf
        t_fcw, t_pb1, t_pb2, t_fb = self.thresholds(ego_speed)
        fcw = ttc < t_fcw

        if self.config is AebsConfig.DISABLED:
            # FCW stays available (it is a warning, not an actuator).
            return AebsState(fcw=fcw, phase=0, brake_accel=0.0, ttc=ttc)

        # --- Latched manoeuvre --------------------------------------------
        if self._phase > 0:
            obstacle_close = lead_valid and 0.0 <= rd < p.hold_gap
            if ego_speed < 0.1:
                if obstacle_close:
                    # Never hand control back while bumper-to-bumper with
                    # a (stopped) obstacle: keep holding.
                    self._hold_until = None
                elif self._hold_until is None:
                    self._hold_until = self._time + p.standstill_hold
                elif self._time >= self._hold_until:
                    self._phase = 0
                    self._hold_until = None
                    return AebsState(fcw=fcw, phase=0, brake_accel=0.0, ttc=ttc)
            elif not obstacle_close and ttc > t_pb1 * p.release_margin:
                # Risk cleared: abort only after a sustained recovery
                # (UN R152 permits the manoeuvre to abort).
                if self._recovered_since is None:
                    self._recovered_since = self._time
                elif self._time - self._recovered_since >= p.release_sustain:
                    self._phase = 0
                    self._recovered_since = None
                    return AebsState(fcw=fcw, phase=0, brake_accel=0.0, ttc=ttc)
            else:
                self._recovered_since = None
            # Escalate while the threat keeps growing.
            self._phase = max(self._phase, _phase_for(ttc, t_pb1, t_pb2, t_fb))
            fraction = p.brake_fractions[self._phase - 1]
            return AebsState(
                fcw=fcw, phase=self._phase, brake_accel=-fraction * G, ttc=ttc
            )

        # --- Engagement ----------------------------------------------------
        if ego_speed < p.min_speed or not threat:
            return AebsState(fcw=fcw, phase=0, brake_accel=0.0, ttc=ttc)
        self._phase = _phase_for(ttc, t_pb1, t_pb2, t_fb)
        if self._phase == 0:
            return AebsState(fcw=fcw, phase=0, brake_accel=0.0, ttc=ttc)
        fraction = p.brake_fractions[self._phase - 1]
        return AebsState(
            fcw=fcw, phase=self._phase, brake_accel=-fraction * G, ttc=ttc
        )


def _phase_for(ttc: float, t_pb1: float, t_pb2: float, t_fb: float) -> int:
    """Map a TTC onto the Table I braking phase (0 = no braking)."""
    if ttc < t_fb:
        return 3
    if ttc < t_pb2:
        return 2
    if ttc < t_pb1:
        return 1
    return 0


def aebs_step_arrays(
    phase: np.ndarray,
    hold_until: np.ndarray,
    recovered_since: np.ndarray,
    time: np.ndarray,
    ego_speed: np.ndarray,
    lead_valid: np.ndarray,
    rd: np.ndarray,
    rs: np.ndarray,
    dt: float,
    disabled: np.ndarray,
    driver_decel: np.ndarray,
    reaction_time: np.ndarray,
    pb1_divisor: np.ndarray,
    pb2_divisor: np.ndarray,
    fb_divisor: np.ndarray,
    brake_fractions: np.ndarray,
    min_speed: np.ndarray,
    min_closing: np.ndarray,
    release_margin: np.ndarray,
    release_sustain: np.ndarray,
    standstill_hold: np.ndarray,
    hold_gap: np.ndarray,
) -> tuple[
    np.ndarray, np.ndarray, np.ndarray, np.ndarray,
    np.ndarray, np.ndarray, np.ndarray, np.ndarray,
]:
    """Vectorized :meth:`Aebs.update`, bit-exact per lane.

    The two ``Optional[float]`` timers (``_hold_until``,
    ``_recovered_since``) are NaN-encoded; ``brake_fractions`` is an
    ``(n, 3)`` per-lane table.  ``disabled`` lanes advance the clock but
    never change phase/timers (the scalar early return).

    Returns the output record plus the new state:
    ``(fcw, out_phase, brake_accel, ttc, phase, hold_until,
    recovered_since, time)``.
    """
    time = time + dt
    threat = lead_valid & (rs >= min_closing) & (rd > 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        ttc = np.where(threat, rd / rs, math.inf)
    t_stop = ego_speed / driver_decel
    t_fcw = reaction_time + t_stop
    t_pb1 = ego_speed / pb1_divisor
    t_pb2 = ego_speed / pb2_divisor
    t_fb = ego_speed / fb_divisor
    fcw = ttc < t_fcw

    live = ~disabled
    latched = live & (phase > 0)
    obstacle_close = lead_valid & (0.0 <= rd) & (rd < hold_gap)

    # Standstill hold bookkeeping (latched, ego stopped).
    standstill = latched & (ego_speed < 0.1)
    hold_nan = np.isnan(hold_until)
    m_hold_keep = standstill & obstacle_close                  # hold = None
    m_hold_arm = standstill & ~obstacle_close & hold_nan       # start timer
    m_hold_rel = (                                             # timer expired
        standstill & ~obstacle_close & ~hold_nan & (time >= hold_until)
    )

    # Sustained-recovery release bookkeeping (latched, ego moving).
    moving = latched & ~standstill
    recovered = moving & ~obstacle_close & (ttc > t_pb1 * release_margin)
    rec_nan = np.isnan(recovered_since)
    m_rec_arm = recovered & rec_nan
    m_rec_rel = recovered & ~rec_nan & (time - recovered_since >= release_sustain)
    m_rec_clear = moving & ~recovered

    released = m_hold_rel | m_rec_rel
    hold_until = np.where(
        m_hold_keep | m_hold_rel,
        np.nan,
        np.where(m_hold_arm, time + standstill_hold, hold_until),
    )
    recovered_since = np.where(
        m_rec_clear | m_rec_rel,
        np.nan,
        np.where(m_rec_arm, time, recovered_since),
    )

    ttc_phase = np.where(
        ttc < t_fb, 3, np.where(ttc < t_pb2, 2, np.where(ttc < t_pb1, 1, 0))
    )
    escalated = np.maximum(phase, ttc_phase)

    engaging = live & ~latched & (ego_speed >= min_speed) & threat
    new_phase = np.where(
        latched & ~released,
        escalated,
        np.where(engaging, ttc_phase, np.where(live, 0, phase)),
    )
    braking = live & (new_phase > 0)
    frac_idx = np.where(braking, new_phase, 1) - 1
    fraction = brake_fractions[np.arange(len(frac_idx)), frac_idx]
    brake_accel = np.where(braking, -fraction * G, 0.0)
    out_phase = np.where(braking, new_phase, 0)
    return fcw, out_phase, brake_accel, ttc, new_phase, hold_until, recovered_since, time
