"""Layered safety interventions — the paper's study object.

Three intervention levels (Section III-C), plus the arbitration logic that
resolves conflicts between them:

* :mod:`repro.safety.aebs` — basic level: time-to-collision phase-controlled
  AEBS with FCW (Eqs. 1-4, Table I), in the paper's three configurations
  (disabled / compromised input / independent sensor).
* :mod:`repro.safety.panda` — application level: PANDA-style firmware range
  checking of control commands (ISO 22179 acceleration envelope).
* :mod:`repro.safety.driver` — human level: rule-based driver reaction
  simulator (Table II) with configurable reaction time.
* :mod:`repro.safety.ldw` — lane-departure warning feeding the driver model.
* :mod:`repro.safety.arbitration` — fixed-priority conflict resolution
  (AEB highest, safety checking lowest), including the AEB-overrides-driver
  behaviour behind the paper's Observation 4.
"""

from repro.safety.aebs import Aebs, AebsConfig, AebsParams, AebsState
from repro.safety.panda import SafetyChecker, SafetyCheckerParams
from repro.safety.driver import DriverAction, DriverModel, DriverParams
from repro.safety.ldw import LaneDepartureWarning, LdwParams
from repro.safety.arbitration import Arbitrator, FinalCommand, InterventionConfig

__all__ = [
    "Aebs",
    "AebsConfig",
    "AebsParams",
    "AebsState",
    "SafetyChecker",
    "SafetyCheckerParams",
    "DriverAction",
    "DriverModel",
    "DriverParams",
    "LaneDepartureWarning",
    "LdwParams",
    "Arbitrator",
    "FinalCommand",
    "InterventionConfig",
]
