"""PANDA-style firmware safety checking of control commands.

OpenPilot ships its firmware safety model in the PANDA CAN interface, which
is unavailable in simulation; like the paper, we "replicate the logic from
PANDA and design a software-based safety constraint checker that detects if
command values are within a predefined safe range, thereby blocking unsafe
control commands".

The longitudinal envelope is the paper's (and PANDA's, per ISO 22179):
acceleration within **[-3.5, +2.0] m/s^2**.  Steering is bounded in angle
and slew rate, mirroring PANDA's torque/rate checks.

The checker only guards the *ADAS/ML command path*: AEBS actuation and the
human driver's pedals/wheel are physically separate authorities that do not
flow through the CAN safety firmware (which is also why the checker is the
lowest-priority mechanism in the paper's hierarchy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adas.controlsd import AdasCommand
from repro.utils.mathx import clamp, rate_limit
from repro.utils.npmath import np_clamp, np_rate_limit


@dataclass(frozen=True)
class SafetyCheckerParams:
    """The safe command envelope.

    Attributes:
        max_accel: maximum commanded acceleration [m/s^2] (ISO 22179: +2).
        min_accel: minimum commanded acceleration [m/s^2] (ISO 22179: -3.5).
        max_steer: maximum road-wheel steering angle [rad].
        max_steer_rate: maximum steering slew [rad/s].
    """

    max_accel: float = 2.0
    min_accel: float = -3.5
    max_steer: float = 0.45
    max_steer_rate: float = 0.35


class SafetyChecker:
    """Clamps ADAS/ML commands into the firmware-safe envelope."""

    def __init__(self, params: SafetyCheckerParams | None = None) -> None:
        self.params = params or SafetyCheckerParams()
        self._last_steer = 0.0
        self.blocked_accel_count = 0
        self.blocked_steer_count = 0

    def reset(self) -> None:
        """Clear rate-limit state and counters (start of an episode)."""
        self._last_steer = 0.0
        self.blocked_accel_count = 0
        self.blocked_steer_count = 0

    def check(self, command: AdasCommand, dt: float) -> AdasCommand:
        """Return ``command`` clamped into the safe envelope.

        Args:
            command: the raw ADAS or ML command.
            dt: control period [s] (for the steering rate limit).
        """
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        p = self.params
        accel = clamp(command.accel, p.min_accel, p.max_accel)
        if accel != command.accel:
            self.blocked_accel_count += 1
        steer = clamp(command.steer, -p.max_steer, p.max_steer)
        steer = rate_limit(self._last_steer, steer, p.max_steer_rate * dt)
        if steer != command.steer:
            self.blocked_steer_count += 1
        self._last_steer = steer
        return AdasCommand(accel=accel, steer=steer)


def checker_arrays(
    accel_cmd: np.ndarray,
    steer_cmd: np.ndarray,
    last_steer: np.ndarray,
    dt: float,
    max_accel: np.ndarray,
    min_accel: np.ndarray,
    max_steer: np.ndarray,
    max_steer_rate: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :meth:`SafetyChecker.check`, bit-exact per lane.

    ``last_steer`` is the rate-limit state entering the step; the checked
    steer output is also the new ``last_steer``.  Returns
    ``(accel, steer, accel_blocked, steer_blocked)`` with the blocked
    flags as booleans (the caller accumulates the counters).
    """
    accel = np_clamp(accel_cmd, min_accel, max_accel)
    accel_blocked = accel != accel_cmd
    steer = np_clamp(steer_cmd, -max_steer, max_steer)
    steer = np_rate_limit(last_steer, steer, max_steer_rate * dt)
    steer_blocked = steer != steer_cmd
    return accel, steer, accel_blocked, steer_blocked
