"""Priority-based arbitration of safety interventions.

The paper (Section IV): "To address conflicts among safety interventions,
we assign different priorities to the various safety mechanisms in our
simulations, with AEB having the highest priority and safety checking the
lowest."  The resulting authority order, highest first:

1. **AEBS** — latched emergency braking; while braking it *overrides human
   inputs*, so driver steering corrections are blocked (the root cause of
   the mixed-attack conflict in the paper's Observation 4).
2. **Driver** — emergency braking (steering frozen at its braking-onset
   angle, Table II: "no changes in the steering angle") or corrective
   steering.
3. **ML mitigation** — replaces the ADAS command while in recovery mode.
4. **ADAS** — the nominal OpenPilot command.
5. **Safety checker** — not an actuator: it clamps whatever flows through
   the ADAS/ML command path (AEBS and the driver's pedals are physically
   separate authorities).

``aeb_overrides_driver`` exists as an explicit knob so the ablation bench
can evaluate the alternative hierarchy the paper calls for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.adas.controlsd import AdasCommand
from repro.safety.aebs import AebsConfig, AebsState
from repro.safety.driver import DriverAction
from repro.safety.panda import SafetyChecker


@dataclass(frozen=True)
class InterventionConfig:
    """Which safety interventions are enabled (one Table VI row).

    Attributes:
        driver: human-driver reactions enabled.
        safety_check: PANDA-style firmware range checking enabled.
        aeb: AEBS configuration (disabled / compromised / independent).
        ml: ML-based mitigation (Algorithm 1) enabled.
        driver_reaction_time: override of the driver's mean reaction time
            [s] (None keeps the model default of 2.5 s).
        aeb_overrides_driver: hierarchy knob (paper default True).
        name: display label for reports.
    """

    driver: bool = False
    safety_check: bool = False
    aeb: AebsConfig = AebsConfig.DISABLED
    ml: bool = False
    driver_reaction_time: Optional[float] = None
    aeb_overrides_driver: bool = True
    name: str = ""

    def label(self) -> str:
        """Short label like ``driver+check+aeb_indep``."""
        if self.name:
            return self.name
        parts = []
        if self.driver:
            parts.append("driver")
        if self.safety_check:
            parts.append("check")
        if self.aeb is not AebsConfig.DISABLED:
            parts.append(f"aeb_{self.aeb.value}")
        if self.ml:
            parts.append("ml")
        return "+".join(parts) if parts else "none"


@dataclass(frozen=True)
class FinalCommand:
    """The arbitrated actuator command.

    Attributes:
        accel: longitudinal acceleration command [m/s^2].
        steer: road-wheel steering command [rad].
        driver_steering: True when the (faster) human steering rate applies.
        long_authority: who owns the longitudinal channel
            (``adas``/``ml``/``driver``/``aeb``).
        lat_authority: who owns the lateral channel
            (``adas``/``ml``/``driver``/``frozen``).
    """

    accel: float
    steer: float
    driver_steering: bool
    long_authority: str
    lat_authority: str


@dataclass
class ArbitrationStats:
    """Conflict bookkeeping for analysis."""

    aeb_blocked_driver_steps: int = 0
    driver_brake_frozen_steer_steps: int = 0


class Arbitrator:
    """Resolves one step's commands according to the fixed hierarchy."""

    def __init__(self, config: InterventionConfig) -> None:
        self.config = config
        self.checker = SafetyChecker() if config.safety_check else None
        self.stats = ArbitrationStats()
        self._frozen_steer: Optional[float] = None

    def reset(self) -> None:
        """Clear per-episode state."""
        if self.checker is not None:
            self.checker.reset()
        self.stats = ArbitrationStats()
        self._frozen_steer = None

    def resolve(
        self,
        adas_cmd: AdasCommand,
        ml_cmd: Optional[AdasCommand],
        ml_recovery: bool,
        aebs_state: Optional[AebsState],
        driver_action: Optional[DriverAction],
        current_steer: float,
        dt: float,
    ) -> FinalCommand:
        """Arbitrate one control step.

        Args:
            adas_cmd: the nominal ADAS command.
            ml_cmd: the ML baseline's command (if the ML layer ran).
            ml_recovery: True while Algorithm 1 is in recovery mode.
            aebs_state: AEBS output (None when AEBS is not instantiated).
            driver_action: driver output (None when no driver is modelled).
            current_steer: the vehicle's current road-wheel angle [rad]
                (used to freeze steering at driver-brake onset).
            dt: control period [s].
        """
        # --- Base path: ADAS or ML, through the firmware checker ---------
        if ml_recovery and ml_cmd is not None:
            base = ml_cmd
            long_auth = lat_auth = "ml"
        else:
            base = adas_cmd
            long_auth = lat_auth = "adas"
        if self.checker is not None:
            base = self.checker.check(base, dt)

        accel, steer = base.accel, base.steer
        driver_steering = False

        aeb_braking = aebs_state is not None and aebs_state.phase > 0
        driver_braking = driver_action is not None and driver_action.brake_active
        driver_steering_wanted = (
            driver_action is not None and driver_action.steer_active
        )

        # --- Driver-brake steering freeze bookkeeping --------------------
        if driver_braking:
            if self._frozen_steer is None:
                self._frozen_steer = current_steer
        else:
            self._frozen_steer = None

        # --- Longitudinal channel ----------------------------------------
        if aeb_braking:
            accel = aebs_state.brake_accel
            long_auth = "aeb"
        elif driver_braking:
            accel = driver_action.brake_accel
            long_auth = "driver"

        # --- Lateral channel ----------------------------------------------
        if aeb_braking and self.config.aeb_overrides_driver:
            # AEB owns the vehicle: human steering inputs are rejected.
            if driver_steering_wanted or driver_braking:
                self.stats.aeb_blocked_driver_steps += 1
            # steering stays with the (possibly attacked) base path
        elif driver_braking:
            # Table II: emergency braking with no change in steering angle.
            steer = self._frozen_steer if self._frozen_steer is not None else steer
            lat_auth = "frozen"
            self.stats.driver_brake_frozen_steer_steps += 1
        elif driver_steering_wanted:
            steer = driver_action.steer_angle
            driver_steering = True
            lat_auth = "driver"

        return FinalCommand(
            accel=accel,
            steer=steer,
            driver_steering=driver_steering,
            long_authority=long_auth,
            lat_authority=lat_auth,
        )
