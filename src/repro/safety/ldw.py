"""Lane-departure warning.

Warns when the ego body is close to a lane line or will cross one within a
short prediction horizon (distance over lateral speed), the standard
time-to-line-crossing LDW design.  The warning feeds the driver model's
lateral-reaction trigger (the paper's Table II, "Lane Departure Warning"
row).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.npmath import np_min_pair


@dataclass(frozen=True)
class LdwParams:
    """LDW design constants.

    Attributes:
        distance_threshold: warn when a body side is within this distance
            of a lane line [m].
        time_to_crossing: warn when the predicted time to line crossing
            drops below this horizon [s].
        min_speed: inhibit below this speed [m/s] (parking manoeuvres).
    """

    distance_threshold: float = 0.45
    time_to_crossing: float = 1.6
    min_speed: float = 3.0


class LaneDepartureWarning:
    """Stateless LDW evaluation."""

    def __init__(self, params: LdwParams | None = None) -> None:
        self.params = params or LdwParams()

    def update(
        self,
        dist_right: float,
        dist_left: float,
        lateral_speed: float,
        ego_speed: float,
    ) -> bool:
        """Return True while the warning is active.

        Args:
            dist_right: body-side distance to the right lane line [m].
            dist_left: body-side distance to the left lane line [m].
            lateral_speed: ego lateral velocity [m/s], positive left.
            ego_speed: ego forward speed [m/s].
        """
        p = self.params
        if ego_speed < p.min_speed:
            return False
        if min(dist_right, dist_left) < p.distance_threshold:
            return True
        if lateral_speed > 0.05:  # drifting left
            if dist_left / lateral_speed < p.time_to_crossing:
                return True
        elif lateral_speed < -0.05:  # drifting right
            if dist_right / -lateral_speed < p.time_to_crossing:
                return True
        return False


def ldw_arrays(
    dist_right: np.ndarray,
    dist_left: np.ndarray,
    lateral_speed: np.ndarray,
    ego_speed: np.ndarray,
    distance_threshold: np.ndarray,
    time_to_crossing: np.ndarray,
    min_speed: np.ndarray,
) -> np.ndarray:
    """Vectorized :meth:`LaneDepartureWarning.update`, bit-exact per lane."""
    near = np_min_pair(dist_right, dist_left) < distance_threshold
    with np.errstate(divide="ignore", invalid="ignore"):
        # Time-to-crossing divisions are guarded by the |lateral_speed|
        # deadband in the scalar path; unselected rows are masked below.
        left_t = dist_left / lateral_speed
        right_t = dist_right / -lateral_speed
    drift_left = (lateral_speed > 0.05) & (left_t < time_to_crossing)
    drift_right = (lateral_speed < -0.05) & (right_t < time_to_crossing)
    return (ego_speed >= min_speed) & (near | drift_left | drift_right)
