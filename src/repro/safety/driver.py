"""Human-driver reaction simulator (the paper's Table II).

The driver monitors the *physical* world (not the perception outputs — a
human looks out of the windshield) plus the FCW/LDW alarms, and intervenes
after a reaction time:

=============================  =====================================
activation condition            reaction (after the reaction time)
=============================  =====================================
FCW alert                       emergency brake, zero throttle,
unsafe cruise speed             **no change in steering angle**
unexpected acceleration
unsafe following distance
other vehicle cutting in
-----------------------------  -------------------------------------
lane-departure warning          steer back to the lane centre
unsafe distance to lane lines
=============================  =====================================

Defaults follow the paper: 2.5 s mean reaction time (government guidance),
emergency braking per the driver brake-response study it cites (a fast ramp
to a hard, sustained deceleration), 0.5 m lane-line distance threshold, 10 %
speed-limit margin, one-vehicle-length following-distance alarm.

Per-episode reaction-time jitter is drawn from the episode RNG so that
repetitions vary realistically; Table VII's sweep sets ``reaction_time``
explicitly (1.0-3.5 s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.utils.mathx import clamp
from repro.utils.rng import RngStreams


@dataclass(frozen=True)
class DriverView:
    """Everything the driver can observe in one step.

    Attributes:
        time: simulation time [s].
        ego_speed: ego speed [m/s].
        ego_accel: achieved ego acceleration [m/s^2].
        gap: true bumper gap to the in-lane lead [m], or None.
        closing: true closing speed [m/s] (positive when approaching).
        cut_in: an adjacent-lane vehicle is merging into the ego lane.
        dist_right: body-side distance to the right lane line [m].
        dist_left: body-side distance to the left lane line [m].
        lateral_offset: ego centre offset from the lane centre [m].
        rel_heading: ego heading relative to the road tangent [rad].
        fcw: forward-collision warning currently active.
        ldw: lane-departure warning currently active.
        aeb_active: the AEBS is currently braking.  A human driver defers
            to an automated emergency manoeuvre in progress ("the car is
            handling it") — and the AEB overrides their inputs anyway
            (the paper's priority hierarchy) — so no new reactions are
            initiated while this is set.
    """

    time: float
    ego_speed: float
    ego_accel: float
    gap: Optional[float]
    closing: float
    cut_in: bool
    dist_right: float
    dist_left: float
    lateral_offset: float
    rel_heading: float
    fcw: bool
    ldw: bool
    aeb_active: bool = False


@dataclass(frozen=True)
class DriverParams:
    """Driver-model constants (Table II plus brake-profile literature).

    Attributes:
        reaction_time: mean reaction time [s] (paper default 2.5 s).
        reaction_jitter: uniform per-episode jitter half-width [s].
        speed_limit: posted limit [m/s]; unsafe above ``1.1 x`` this.
        unsafe_gap: following distance alarm threshold [m]
            (one vehicle length).
        unexpected_accel: acceleration felt as "unexpected" while close
            behind a lead [m/s^2].
        unexpected_accel_gap: gap below which acceleration is unexpected [m].
        visual_ttc: the driver's own looming-threat horizon [s]: a human
            watching the road brakes when the *visible* time-to-collision
            drops below this, independent of (possibly compromised)
            electronic warnings.
        lane_distance_threshold: steer-back trigger distance to a lane
            line [m] (paper: 0.5 m).
        brake_peak: emergency-brake peak deceleration [m/s^2].
        brake_jerk: brake ramp rate [m/s^3].
        steer_offset_gain: corrective curvature per metre of offset.
        steer_heading_gain: corrective curvature per radian of heading.
        wheelbase: for curvature-to-angle conversion [m].
        cancel_window: pending reactions are cancelled if the trigger has
            been clear for this long [s].
        release_hold: hazard must stay clear this long to end an active
            intervention [s].
        alerted_factor: once the driver has executed one emergency
            reaction they stay alert, and subsequent reactions use
            ``alerted_factor x`` the reaction time (brake-response studies
            report markedly faster reactions for alerted drivers).
        alerted_floor: lower bound of the alerted reaction time [s].
        steer_hold_min: minimum duration of a steering takeover [s] — a
            driver who grabbed the wheel does not hand control back the
            instant the car is centred while it may still be pulling.
        steer_release_hold: the car must stay centred and trigger-free
            this long before the takeover ends [s].
    """

    reaction_time: float = 2.5
    reaction_jitter: float = 0.25
    speed_limit: float = 22.352  # 50 mph
    unsafe_gap: float = 4.7
    unexpected_accel: float = 1.2
    unexpected_accel_gap: float = 18.0
    visual_ttc: float = 4.0
    lane_distance_threshold: float = 0.5
    brake_peak: float = 6.5
    brake_jerk: float = 8.0
    steer_offset_gain: float = 0.004
    steer_heading_gain: float = 0.18
    wheelbase: float = 2.7
    cancel_window: float = 0.6
    release_hold: float = 1.0
    alerted_factor: float = 0.6
    alerted_floor: float = 1.0
    steer_hold_min: float = 4.0
    steer_release_hold: float = 1.5


@dataclass(frozen=True)
class DriverAction:
    """The driver's actuation for one step.

    Attributes:
        brake_active: emergency braking in progress.
        brake_accel: braking command [m/s^2] (negative; 0 when inactive).
        steer_active: corrective steering in progress.
        steer_angle: road-wheel steering command [rad] (valid when
            ``steer_active``).
        brake_reason: trigger that scheduled the brake (for metrics).
        steer_reason: trigger that scheduled the steering correction.
    """

    brake_active: bool
    brake_accel: float
    steer_active: bool
    steer_angle: float
    brake_reason: Optional[str] = None
    steer_reason: Optional[str] = None


class DriverModel:
    """Stateful reaction simulator ticked once per control step."""

    def __init__(
        self,
        params: DriverParams | None = None,
        streams: RngStreams | None = None,
    ) -> None:
        self.params = params or DriverParams()
        if streams is not None:
            jitter = float(
                streams.get("driver").uniform(
                    -self.params.reaction_jitter, self.params.reaction_jitter
                )
            )
        else:
            jitter = 0.0
        self.effective_reaction_time = max(0.1, self.params.reaction_time + jitter)
        self.reset()

    def reset(self) -> None:
        """Clear all pending/active interventions."""
        self._pending_brake_at: Optional[float] = None
        self._pending_brake_reason: Optional[str] = None
        self._brake_active = False
        self._brake_reason: Optional[str] = None
        self._brake_decel = 0.0
        self._brake_clear_since: Optional[float] = None
        self._brake_trigger_last_seen: Optional[float] = None

        self._pending_steer_at: Optional[float] = None
        self._pending_steer_reason: Optional[str] = None
        self._steer_active = False
        self._steer_reason: Optional[str] = None
        self._steer_clear_since: Optional[float] = None
        self._steer_trigger_last_seen: Optional[float] = None
        self._steer_started_at: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Trigger evaluation (Table II activation conditions)
    # ------------------------------------------------------------------ #

    def _brake_trigger(self, view: DriverView) -> Optional[str]:
        p = self.params
        if view.fcw:
            return "fcw"
        if (
            view.gap is not None
            and view.closing > 0.3
            and view.gap / view.closing < p.visual_ttc
        ):
            return "visual_ttc"
        if view.ego_speed > 1.1 * p.speed_limit:
            return "overspeed"
        if view.gap is not None and view.gap < p.unsafe_gap and view.closing > -0.5:
            return "unsafe_distance"
        if (
            view.gap is not None
            and view.gap < p.unexpected_accel_gap
            and view.closing > 0.0
            and view.ego_accel > p.unexpected_accel
        ):
            return "unexpected_accel"
        if view.cut_in:
            return "cut_in"
        return None

    def _steer_trigger(self, view: DriverView) -> Optional[str]:
        p = self.params
        if view.ldw:
            return "ldw"
        if min(view.dist_right, view.dist_left) < p.lane_distance_threshold:
            return "lane_distance"
        return None

    # ------------------------------------------------------------------ #
    # Main tick
    # ------------------------------------------------------------------ #

    def update(self, view: DriverView) -> DriverAction:
        """Advance the driver one step and return the actuation."""
        self._update_brake(view)
        self._update_steer(view)
        steer_angle = self._steer_command(view) if self._steer_active else 0.0
        return DriverAction(
            brake_active=self._brake_active,
            brake_accel=-self._brake_decel if self._brake_active else 0.0,
            steer_active=self._steer_active,
            steer_angle=steer_angle,
            brake_reason=self._brake_reason,
            steer_reason=self._steer_reason,
        )

    # ------------------------------------------------------------------ #
    # Braking state machine
    # ------------------------------------------------------------------ #

    def _update_brake(self, view: DriverView) -> None:
        p = self.params
        trigger = self._brake_trigger(view)
        now = view.time
        if trigger is not None:
            self._brake_trigger_last_seen = now

        if self._brake_active:
            dt_step = 0.01
            self._brake_decel = min(
                p.brake_peak, self._brake_decel + p.brake_jerk * dt_step
            )
            # A driver who slammed the brakes over a forward threat keeps
            # braking until the situation is *visibly* safe: no active
            # trigger, no FCW, and the true gap ahead comfortably open.
            # (Releasing just because the — possibly compromised — ADAS
            # stopped warning would not be human behaviour.)
            gap_safe = view.gap is None or view.gap > max(
                15.0, 1.0 * view.ego_speed
            )
            hazard_clear = trigger is None and not view.fcw and gap_safe
            if hazard_clear:
                if self._brake_clear_since is None:
                    self._brake_clear_since = now
                elif now - self._brake_clear_since > p.release_hold:
                    self._brake_active = False
                    self._brake_decel = 0.0
                    self._brake_clear_since = None
            else:
                self._brake_clear_since = None
            return

        if self._pending_brake_at is None:
            if trigger is not None and not view.aeb_active:
                self._pending_brake_at = now + self.effective_reaction_time
                self._pending_brake_reason = trigger
            return

        # A reaction is pending: cancel it if the hazard evaporated well
        # before the driver's foot reached the pedal.
        last_seen = self._brake_trigger_last_seen
        if last_seen is not None and now - last_seen > p.cancel_window:
            self._pending_brake_at = None
            self._pending_brake_reason = None
            return
        if now >= self._pending_brake_at and not view.aeb_active:
            self._brake_active = True
            self._brake_reason = self._pending_brake_reason
            self._brake_decel = 0.0
            self._pending_brake_at = None
            self._brake_clear_since = None
            self._become_alert()

    # ------------------------------------------------------------------ #
    # Steering state machine
    # ------------------------------------------------------------------ #

    def _update_steer(self, view: DriverView) -> None:
        p = self.params
        trigger = self._steer_trigger(view)
        now = view.time
        if trigger is not None:
            self._steer_trigger_last_seen = now

        if self._steer_active:
            centred = abs(view.lateral_offset) < 0.15 and abs(view.rel_heading) < 0.03
            held_long_enough = (
                self._steer_started_at is not None
                and now - self._steer_started_at >= p.steer_hold_min
            )
            if centred and trigger is None and held_long_enough:
                if self._steer_clear_since is None:
                    self._steer_clear_since = now
                elif now - self._steer_clear_since > p.steer_release_hold:
                    self._steer_active = False
                    self._steer_clear_since = None
                    self._steer_started_at = None
            else:
                self._steer_clear_since = None
            return

        if self._pending_steer_at is None:
            if trigger is not None and not view.aeb_active:
                self._pending_steer_at = now + self.effective_reaction_time
                self._pending_steer_reason = trigger
            return

        last_seen = self._steer_trigger_last_seen
        if last_seen is not None and now - last_seen > p.cancel_window:
            self._pending_steer_at = None
            self._pending_steer_reason = None
            return
        if now >= self._pending_steer_at and not view.aeb_active:
            self._steer_active = True
            self._steer_reason = self._pending_steer_reason
            self._steer_clear_since = None
            self._steer_started_at = now
            self._become_alert()

    def _become_alert(self) -> None:
        """First emergency reaction executed: the driver stays alert.

        Subsequent reactions are faster (``alerted_factor``), bounded below
        by ``alerted_floor``.
        """
        p = self.params
        self.effective_reaction_time = max(
            p.alerted_floor, self.effective_reaction_time * p.alerted_factor
        )

    def _steer_command(self, view: DriverView) -> float:
        """Corrective steering toward the lane centre (P on offset+heading)."""
        p = self.params
        curvature = (
            -p.steer_offset_gain * view.lateral_offset
            - p.steer_heading_gain * view.rel_heading
        )
        return clamp(math.atan(p.wheelbase * curvature), -0.5, 0.5)
